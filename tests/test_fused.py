"""Batched-kernel conformance: ``matrix_many`` vs per-job ``matrix``.

The fused cross-job path (and every backend's batched entry point,
fallback loop included) must be bit-identical to calling ``matrix``
per job — regardless of how jobs are banded, padded, chunked, or
whether their packed planes came from a cache.  These tests pin that
contract on randomized mixed-shape job sets including every edge case
the solo conformance matrix covers (all-pruned, empty/partial valid
masks, huge-q float64 fallback, aggressive margins), plus the
pack-once cache's reuse/invalidation semantics.
"""

import numpy as np
import pytest

from repro.hw import backends
from repro.hw.backends import (KernelJob, PlaneGroupCache,
                               matrix_many_loop, run_many)
from repro.hw.backends.packed_common import (fused_matrix_many,
                                             numpy_batched_gemm,
                                             pack_planes, plane_spec)

KNOWN_BACKENDS = ("numpy-ref", "numpy-packed", "numba", "torch")

BACKENDS = [
    pytest.param(name, marks=() if name in backends.list_backends()
                 else pytest.mark.skip(reason=f"{name} not registered "
                                              "(optional dependency "
                                              "missing)"))
    for name in KNOWN_BACKENDS
]


def assert_job_matches(actual, expected, context=""):
    for ours, theirs, name in zip(actual, expected,
                                  ("cycles", "pruned", "scores")):
        np.testing.assert_array_equal(ours, theirs,
                                      err_msg=f"{name} {context}")


def mixed_jobs(rng, count=24, dim_choices=(8, 16, 64)):
    """A serving-step-shaped job mix: mixed shapes/dims/bit-widths,
    causal and empty valid masks, unreachable and -inf thresholds,
    aggressive margins, and huge-q float64-fallback tiles."""
    jobs = []
    for index in range(count):
        dim = int(rng.choice(dim_choices))
        s_q = int(rng.integers(1, 7))
        s_k = int(rng.integers(1, 40))
        magnitude_bits = int(rng.choice((5, 11)))
        group = int(rng.choice((1, 2, 4)))
        limit = (1 << magnitude_bits) - 1
        if index % 7 == 6:          # huge queries: float64 fallback
            q = rng.integers(-(1 << 22), 1 << 22, (s_q, dim))
        else:
            q = rng.integers(-limit, limit + 1, (s_q, dim))
        k = rng.integers(-limit, limit + 1, (s_k, dim))
        threshold = {0: float(rng.integers(-40_000, 40_000)),
                     1: 1e12,       # everything pruned
                     2: -np.inf,    # nothing pruned
                     }[index % 3]
        valid = None
        if index % 4 == 1:
            valid = rng.random((s_q, s_k)) < 0.6
        elif index % 4 == 3:
            valid = np.zeros((s_q, s_k), dtype=bool)
        margin_scale = 0.5 if index % 5 == 4 else 1.0
        jobs.append(KernelJob(
            q=q, k=k, threshold=threshold,
            magnitude_bits=magnitude_bits, group=group, valid=valid,
            margin_scale=margin_scale))
    # degenerate shapes ride along in every mix
    empty = np.zeros((0, 8), dtype=np.int64)
    some = rng.integers(-15, 16, (3, 8))
    jobs.append(KernelJob(q=empty, k=some, threshold=0.0,
                          magnitude_bits=5, group=2))
    jobs.append(KernelJob(q=some, k=empty, threshold=0.0,
                          magnitude_bits=5, group=2))
    return jobs


# ---------------------------------------------------------------------------
# matrix_many == per-job matrix, for every registered backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_matrix_many_matches_per_job_loop(backend):
    """The batched entry point is bit-identical to the per-job
    ``matrix`` loop on randomized mixed-shape job sets."""
    resolved = backends.get_backend(backend)
    for seed in (0, 1, 2):
        jobs = mixed_jobs(np.random.default_rng(seed))
        fused = run_many(resolved, jobs)
        loop = matrix_many_loop(resolved, jobs)
        assert len(fused) == len(loop) == len(jobs)
        for i, (ours, theirs) in enumerate(zip(fused, loop)):
            assert_job_matches(ours, theirs,
                               f"(backend={backend}, seed={seed}, "
                               f"job={i})")


@pytest.mark.parametrize("backend", BACKENDS)
def test_matrix_many_matches_reference_backend(backend):
    """Cross-backend: every backend's batched results equal the
    numpy-ref per-job loop (transitively pins the fused GEMM to the
    scalar trace the solo matrix conformance already covers)."""
    jobs = mixed_jobs(np.random.default_rng(7), count=16)
    reference = matrix_many_loop(backends.get_backend("numpy-ref"), jobs)
    fused = run_many(backends.get_backend(backend), jobs)
    for i, (ours, theirs) in enumerate(zip(fused, reference)):
        assert_job_matches(ours, theirs,
                           f"(backend={backend}, job={i})")


def test_run_many_empty_and_fallback():
    """run_many on no jobs is a no-op list; backends without a fused
    tier silently fall back to the per-job loop."""
    assert run_many(backends.get_backend("numpy-ref"), []) == []

    class LoopOnly:
        name = "loop-only"
        description = "no matrix_many attribute"

        @staticmethod
        def matrix(q, k, threshold, magnitude_bits, group, valid=None,
                   margin_scale=1.0):
            return backends.get_backend("numpy-ref").matrix(
                q, k, threshold, magnitude_bits, group, valid=valid,
                margin_scale=margin_scale)

    jobs = mixed_jobs(np.random.default_rng(3), count=6)
    fused = run_many(LoopOnly(), jobs)
    reference = matrix_many_loop(backends.get_backend("numpy-ref"), jobs)
    for ours, theirs in zip(fused, reference):
        assert_job_matches(ours, theirs, "(loop fallback)")


def test_fused_cached_matches_uncached():
    """The same job set through a warm pack cache is bit-identical to
    the cacheless fused path and to the per-job loop."""
    rng = np.random.default_rng(11)
    jobs = [KernelJob(q=rng.integers(-2047, 2048, (2, 32)),
                      k=rng.integers(-2047, 2048, (s_k, 32)),
                      threshold=float(rng.integers(-5000, 5000)),
                      magnitude_bits=11, group=2,
                      pack_key=("stream", i))
            for i, s_k in enumerate((12, 20, 12, 33, 20, 7))]
    cache = PlaneGroupCache()
    cold = fused_matrix_many(jobs, numpy_batched_gemm, cache=cache)
    warm = fused_matrix_many(jobs, numpy_batched_gemm, cache=cache)
    bare = fused_matrix_many(jobs, numpy_batched_gemm)
    loop = matrix_many_loop(backends.get_backend("numpy-ref"), jobs)
    for i in range(len(jobs)):
        assert_job_matches(cold[i], loop[i], f"(cold, job={i})")
        assert_job_matches(warm[i], loop[i], f"(warm, job={i})")
        assert_job_matches(bare[i], loop[i], f"(bare, job={i})")
    assert cache.stats()["hits"] > 0


# ---------------------------------------------------------------------------
# pack-once plane-group cache semantics
# ---------------------------------------------------------------------------

def test_cache_hit_extend_invalidate():
    """Exact-match keys hit; suffix-grown K extends (packs only the
    new rows); any other content change is a miss that repacks."""
    rng = np.random.default_rng(19)
    spec = plane_spec(11, 2)
    cache = PlaneGroupCache()
    k = rng.integers(-2047, 2048, (10, 16))

    first = cache.planes_for("s0", k, spec)
    np.testing.assert_array_equal(first, pack_planes(k, spec))
    assert cache.stats() == {"hits": 0, "extended": 0, "misses": 1,
                             "entries": 1}

    again = cache.planes_for("s0", k, spec)
    np.testing.assert_array_equal(again, first)
    assert cache.stats()["hits"] == 1

    # decode step: two new key rows appended — extend, not repack
    grown = np.concatenate([k, rng.integers(-2047, 2048, (2, 16))])
    extended = cache.planes_for("s0", grown, spec)
    np.testing.assert_array_equal(extended, pack_planes(grown, spec))
    assert cache.stats()["extended"] == 1

    # same shape, different content (e.g. requant after a new peak):
    # stale reuse must be impossible — exact validation forces a miss
    changed = grown.copy()
    changed[0, 0] += 1
    repacked = cache.planes_for("s0", changed, spec)
    np.testing.assert_array_equal(repacked, pack_planes(changed, spec))
    assert cache.stats()["misses"] == 2

    # a shrunk K (prefix no longer matches row count) also repacks
    shrunk = cache.planes_for("s0", k[:4], spec)
    np.testing.assert_array_equal(shrunk, pack_planes(k[:4], spec))
    assert cache.stats()["misses"] == 3


def test_cache_distinguishes_spec_and_key():
    """One stream key at two bit-widths packs twice; distinct keys
    never share entries."""
    rng = np.random.default_rng(23)
    cache = PlaneGroupCache()
    k = rng.integers(-31, 32, (6, 8))
    a = cache.planes_for(("s", 0), k, plane_spec(5, 2))
    b = cache.planes_for(("s", 0), k, plane_spec(5, 1))
    c = cache.planes_for(("s", 1), k, plane_spec(5, 2))
    assert cache.stats()["misses"] == 3
    np.testing.assert_array_equal(a, pack_planes(k, plane_spec(5, 2)))
    np.testing.assert_array_equal(b, pack_planes(k, plane_spec(5, 1)))
    np.testing.assert_array_equal(c, a)


def test_cache_lru_eviction_bounds_memory():
    rng = np.random.default_rng(29)
    cache = PlaneGroupCache(max_entries=4)
    spec = plane_spec(5, 2)
    keys = [f"k{i}" for i in range(6)]
    for key in keys:
        cache.planes_for(key, rng.integers(-31, 32, (4, 8)), spec)
    assert len(cache) == 4
    cache.clear()
    assert len(cache) == 0 and cache.stats()["misses"] == 0


def test_decode_shaped_reuse_hits_cache():
    """A growing-K decode loop over several streams mostly extends
    instead of repacking, and stays bit-identical to cacheless runs."""
    rng = np.random.default_rng(31)
    cache = PlaneGroupCache()
    backend = backends.get_backend("numpy-packed")
    streams = {s: rng.integers(-2047, 2048, (8, 32)) for s in range(4)}
    for step in range(6):
        jobs = []
        for s, k in streams.items():
            q = rng.integers(-2047, 2048, (1, 32))
            jobs.append(KernelJob(q=q, k=k, threshold=500.0,
                                  magnitude_bits=11, group=2,
                                  pack_key=("stream", s)))
        cached = run_many(backend, jobs, cache=cache)
        plain = matrix_many_loop(backend, jobs)
        for i in range(len(jobs)):
            assert_job_matches(cached[i], plain[i],
                               f"(step={step}, job={i})")
        streams = {s: np.concatenate(
            [k, rng.integers(-2047, 2048, (1, 32))])
            for s, k in streams.items()}
    stats = cache.stats()
    assert stats["extended"] >= 4 * 5       # every post-first step
    assert stats["misses"] == 4             # one cold pack per stream


# ---------------------------------------------------------------------------
# simulator / estimator integration
# ---------------------------------------------------------------------------

def _recorded_jobs(seed=0):
    from repro.hw.workload import job_from_arrays

    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(5):
        s = int(rng.integers(2, 7))
        job = job_from_arrays(rng.standard_normal((s, 16)),
                              rng.standard_normal((s + 3, 16)),
                              threshold=-0.5, layer_index=i % 2, head=i)
        job.metadata["pack_key"] = ("g", i % 2, i)
        jobs.append(job)
    return jobs


def test_tile_simulator_shared_cache_is_bit_identical():
    """TileSimulator results do not depend on whether a pack cache is
    fresh, shared, or pre-warmed by earlier runs."""
    from repro.hw import AE_LEOPARD, TileSimulator

    jobs = _recorded_jobs()
    solo = TileSimulator(AE_LEOPARD, backend="numpy-packed").run(jobs)
    shared_cache = PlaneGroupCache()
    shared = TileSimulator(AE_LEOPARD, backend="numpy-packed",
                           pack_cache=shared_cache)
    first = shared.run(jobs)
    warm = shared.run(jobs)         # second run: all planes cached
    assert shared_cache.stats()["hits"] > 0
    for result in (first, warm):
        assert result.total_cycles == solo.total_cycles
        assert vars(result.counters) == vars(solo.counters)


def test_estimate_many_pack_groups_are_bit_identical():
    """estimate_many with a persistent cache and stable pack groups
    returns the same estimates as solo estimate_from_records calls."""
    import repro.serve.__main__ as serve_main
    from repro.hw import AE_LEOPARD

    engine = serve_main.build_classifier_engine()
    groups = []
    for seed in (0, 1):
        rng = np.random.default_rng(seed)
        inputs = rng.integers(0, 64, (1, 6))
        mask = np.ones((1, 6), dtype=bool)
        _, records = engine.run_recorded(
            lambda: engine.logits_for(inputs, mask))
        groups.append(records)
    from dataclasses import replace
    config = replace(AE_LEOPARD, kernel_backend="numpy-packed")
    cache = PlaneGroupCache()
    batched = engine.estimate_many(groups, config, pack_cache=cache,
                                   pack_groups=["a", "b"])
    # repeat with the warm cache: decode-style reuse, same numbers
    warm = engine.estimate_many(groups, config, pack_cache=cache,
                                pack_groups=["a", "b"])
    solos = [engine.estimate_from_records(records, config)
             for records in groups]
    assert cache.stats()["hits"] > 0
    for estimate, again, solo in zip(batched, warm, solos):
        assert estimate == solo
        assert again == solo
