"""KV-cache incremental decode vs full recompute.

The cached decode path (one query row against the stored history) must
reproduce the full-recompute logits step for step, for both cache
protocols: the append protocol used by ``TransformerLM.generate`` and
the scatter protocol used by coalesced serving."""

import numpy as np
import pytest

from repro.models import LMConfig, TransformerLM
from repro.tensor import no_grad

VOCAB = 30


def make_lm(seed=0, mode="hard"):
    model = TransformerLM(LMConfig(
        vocab_size=VOCAB, max_seq_len=32, dim=32, num_heads=2,
        num_layers=2, seed=seed))
    controller = model.make_controller()
    controller.set_threshold_values(np.zeros(2))
    getattr(controller, mode)()
    model.eval()
    return model


def full_recompute_generate(model, prompt, max_new_tokens):
    """Reference decode: re-run the whole sequence every step."""
    tokens = np.asarray(prompt, dtype=np.int64)
    step_logits = []
    with no_grad():
        for _ in range(max_new_tokens):
            last = model.logits(tokens).data[:, -1]
            step_logits.append(last.copy())
            tokens = np.concatenate(
                [tokens, last.argmax(axis=-1)[:, None]], axis=1)
            if tokens.shape[1] >= model.config.max_seq_len:
                break
    return tokens, step_logits


@pytest.mark.parametrize("mode", ["off", "hard"])
@pytest.mark.parametrize("prompt_len", [1, 3, 7, 12])
def test_generate_matches_full_recompute(mode, prompt_len):
    model = make_lm(seed=prompt_len, mode=mode)
    rng = np.random.default_rng(prompt_len)
    prompt = rng.integers(1, VOCAB, size=(2, prompt_len))
    cached = model.generate(prompt, max_new_tokens=8)
    expected, _ = full_recompute_generate(model, prompt, 8)
    np.testing.assert_array_equal(cached, expected)


@pytest.mark.parametrize("prompt_len", [1, 4, 9])
def test_scatter_decode_logits_match_full_recompute(prompt_len):
    """prefill + decode_step (the serving path) against recompute,
    checking the logits at every step, not just the argmax."""
    model = make_lm(seed=prompt_len)
    rng = np.random.default_rng(100 + prompt_len)
    prompt = rng.integers(1, VOCAB, size=(1, prompt_len))
    capacity = model.config.max_seq_len

    padded = np.zeros((1, capacity), dtype=np.int64)
    padded[0, :prompt_len] = prompt[0]
    logits, prefill_caches = model.prefill(
        padded, np.array([prompt_len]))
    heads = model.config.num_heads
    head_dim = model.config.dim // heads
    caches = []
    for cache in prefill_caches:
        buf_k = np.zeros((1, heads, capacity, head_dim))
        buf_v = np.zeros_like(buf_k)
        buf_k[0, :, :prompt_len] = cache["k"].data[0, :, :prompt_len]
        buf_v[0, :, :prompt_len] = cache["v"].data[0, :, :prompt_len]
        caches.append({"k": buf_k, "v": buf_v,
                       "lengths": np.array([prompt_len])})

    tokens = prompt.copy()
    _, reference = full_recompute_generate(model, prompt, 8)
    for step, expected in enumerate(reference):
        np.testing.assert_allclose(logits, expected[0:1],
                                   rtol=1e-9, atol=1e-9,
                                   err_msg=f"step {step}")
        next_token = logits.argmax(axis=-1)
        assert next_token[0] == expected[0].argmax()
        tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
        if step + 1 == len(reference):
            break
        logits = model.decode_step(next_token, caches)


def test_scatter_protocol_matches_append_protocol():
    """Both cache protocols decode the same stream identically."""
    model = make_lm(seed=5)
    rng = np.random.default_rng(5)
    prompt = rng.integers(1, VOCAB, size=(1, 6))
    via_append = model.generate(prompt, max_new_tokens=10)

    capacity = model.config.max_seq_len
    padded = np.zeros((1, capacity), dtype=np.int64)
    padded[0, :6] = prompt[0]
    logits, prefill_caches = model.prefill(padded, np.array([6]))
    heads = model.config.num_heads
    head_dim = model.config.dim // heads
    caches = []
    for cache in prefill_caches:
        buf_k = np.zeros((1, heads, capacity, head_dim))
        buf_v = np.zeros_like(buf_k)
        buf_k[0, :, :6] = cache["k"].data[0, :, :6]
        buf_v[0, :, :6] = cache["v"].data[0, :, :6]
        caches.append({"k": buf_k, "v": buf_v, "lengths": np.array([6])})
    tokens = [int(t) for t in prompt[0]]
    for _ in range(10):
        next_token = int(logits[0].argmax())
        tokens.append(next_token)
        if len(tokens) >= via_append.shape[1]:
            break
        logits = model.decode_step(np.array([next_token]), caches)
    np.testing.assert_array_equal(np.array(tokens), via_append[0])


def test_scatter_capacity_exhaustion_raises():
    model = make_lm(seed=0)
    heads = model.config.num_heads
    head_dim = model.config.dim // heads
    caches = [{"k": np.zeros((1, heads, 4, head_dim)),
               "v": np.zeros((1, heads, 4, head_dim)),
               "lengths": np.array([4])}
              for _ in model.blocks]
    with pytest.raises(ValueError, match="capacity"):
        model.decode_step(np.array([1]), caches)
