"""Property-style serving queue tests: the wait-bound flush (no
starvation), FIFO pops, KV-cache eviction on completion/finish, and
schedule-independent results — all driven by a virtual clock."""

import asyncio

import numpy as np

from repro.serve import AsyncServingEngine, BatchPolicy, ServingEngine
from tests.test_serving import make_classifier_engine, make_lm_engine


def make_clocked(engine, max_batch_size, max_wait):
    clock = [0.0]
    serving = ServingEngine(
        engine, BatchPolicy(max_batch_size=max_batch_size,
                            max_wait=max_wait),
        clock=lambda: clock[0])
    return serving, clock


def test_no_starvation_lone_request_flushes_at_deadline():
    serving, clock = make_clocked(make_classifier_engine(0),
                                  max_batch_size=8, max_wait=1.0)
    rng = np.random.default_rng(0)
    request_id = serving.submit(rng.integers(0, 50, size=5))
    assert serving.step() == []            # t=0: not full, not due
    clock[0] = 0.99
    assert serving.step() == []            # still inside max_wait
    clock[0] = 1.0
    assert serving.step() == [request_id]  # deadline flush, batch of 1
    assert serving.finish(request_id).batch_sizes == [1]


def test_no_starvation_under_continuous_arrivals():
    """New arrivals never push the oldest request past its deadline:
    pops are FIFO, so the oldest request leaves in the next flush."""
    serving, clock = make_clocked(make_classifier_engine(0),
                                  max_batch_size=4, max_wait=0.5)
    rng = np.random.default_rng(1)
    oldest = serving.submit(rng.integers(0, 50, size=6))
    served_at = None
    for tick in range(1, 20):
        clock[0] = tick * 0.1
        serving.submit(rng.integers(0, 50, size=6))
        done = serving.step()
        if oldest in done:
            served_at = clock[0]
            break
    assert served_at is not None and served_at <= 0.5 + 0.1
    result = serving.finish(oldest)
    assert result.prediction is not None


def test_full_batch_flushes_immediately_and_fifo_order():
    serving, clock = make_clocked(make_classifier_engine(0),
                                  max_batch_size=4, max_wait=100.0)
    rng = np.random.default_rng(2)
    ids = [serving.submit(rng.integers(0, 50, size=4)) for _ in range(10)]
    done = serving.step()                  # two full batches, no wait
    assert done == ids[:8]
    assert serving.finish(ids[0]).batch_sizes == [4]
    assert serving.step() == []            # remaining 2 wait for deadline
    clock[0] = 100.0
    assert serving.step() == ids[8:]
    assert serving.finish(ids[9]).batch_sizes == [2]


def test_stream_caches_evicted_on_completion():
    serving, _ = make_clocked(make_lm_engine(0), 4, 0.0)
    rng = np.random.default_rng(3)
    ids = [serving.open_stream(rng.integers(1, 40, size=3),
                               max_new_tokens=4) for _ in range(3)]
    serving.step()                         # prefill + first decode round
    live = [serving._streams[i] for i in ids]
    assert all(s.caches is not None for s in live)
    serving.drain()
    assert all(s.caches is None for s in live)   # evicted at completion
    for stream_id in ids:
        assert len(serving.finish(stream_id).tokens) == 3 + 4
    assert serving._streams == {}          # finish released all state


def test_finish_stops_stream_early_and_evicts():
    serving, _ = make_clocked(make_lm_engine(0), 4, 0.0)
    rng = np.random.default_rng(4)
    stream_id = serving.open_stream(rng.integers(1, 40, size=4),
                                    max_new_tokens=20)
    serving.step()                         # prefill (+1) and decode (+1)
    state = serving._streams[stream_id]
    assert state.caches is not None
    result = serving.finish(stream_id)     # client hangs up early
    assert state.caches is None
    assert len(result.tokens) == 4 + 2
    assert serving._streams == {}
    assert not serving.has_pending()


def test_results_deterministic_across_arrival_interleavings():
    """The same request set yields bit-identical per-request results
    whatever the arrival order, gaps, and batch compositions."""
    rng = np.random.default_rng(5)
    requests = [rng.integers(0, 50, size=int(n))
                for n in rng.integers(2, 25, size=9)]
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(1, 8, size=4)]

    def run_schedule(order, gap):
        serving, clock = make_clocked(make_classifier_engine(0), 4, 0.05)
        lm, _ = make_clocked(make_lm_engine(0), 3, 0.0)
        ids = {}
        for step, index in enumerate(order):
            clock[0] = step * gap
            ids[index] = serving.submit(requests[index])
            serving.step()
        clock[0] += 1.0
        serving.step()
        stream_ids = {i: lm.open_stream(p, 5)
                      for i, p in enumerate(prompts)}
        lm.drain()
        return ({i: serving.finish(r) for i, r in ids.items()},
                {i: lm.finish(r) for i, r in stream_ids.items()})

    base_cls, base_lm = run_schedule(list(range(9)), 0.0)
    shuffled = [4, 0, 8, 2, 6, 1, 7, 3, 5]
    for order, gap in [(list(range(9)), 0.03), (shuffled, 0.0),
                       (shuffled, 0.06)]:
        got_cls, got_lm = run_schedule(order, gap)
        for i in range(9):
            np.testing.assert_array_equal(got_cls[i].logits,
                                          base_cls[i].logits)
        for i in range(4):
            np.testing.assert_array_equal(got_lm[i].tokens,
                                          base_lm[i].tokens)


def test_oversized_request_rejected_at_submit():
    """A bad request must fail at submit, never poison the batch it
    would have been coalesced into."""
    import pytest
    serving, clock = make_clocked(make_classifier_engine(0), 4, 0.0)
    rng = np.random.default_rng(7)
    good = serving.submit(rng.integers(0, 50, size=5))
    with pytest.raises(ValueError, match="request length 40"):
        serving.submit(rng.integers(0, 50, size=40))
    with pytest.raises(ValueError, match="request length 0"):
        serving.submit(np.zeros(0, dtype=np.int64))
    assert serving.step() == [good]        # neighbour still served


def test_pad_to_beyond_model_capacity_rejected():
    import pytest
    from repro.serve import BatchPolicy, ServingEngine
    with pytest.raises(ValueError, match="pad_to=40 exceeds"):
        ServingEngine(make_classifier_engine(0),
                      BatchPolicy(pad_to=40))


def test_async_serve_error_fails_clients_not_runner():
    """A serve-time error must propagate to the awaiting clients; the
    runner keeps serving later traffic."""

    from types import SimpleNamespace

    class ExplodingEngine:
        def __init__(self):
            self.model = SimpleNamespace(
                config=SimpleNamespace(max_seq_len=8))
            self.calls = 0

        def predict_many(self, inputs, mask, collect_records=False):
            self.calls += 1
            if self.calls == 1:
                raise RuntimeError("model exploded")
            logits = np.zeros((inputs.shape[0], 2))
            return logits.argmax(-1), logits, None

    engine = ExplodingEngine()
    serving = ServingEngine(engine, BatchPolicy(max_batch_size=2,
                                                max_wait=0.005))

    async def main():
        async with AsyncServingEngine(serving) as front:
            first = await asyncio.gather(
                front.submit(np.arange(3)), front.submit(np.arange(4)),
                return_exceptions=True)
            retry = await front.submit(np.arange(3))
            return first, retry

    first, retry = asyncio.run(main())
    assert all(isinstance(r, RuntimeError) for r in first)
    assert retry.prediction == 0           # runner survived the error


def test_batch_policy_from_observed_auto_tunes_buckets():
    """The tuned ladder serves the observed traffic in no more
    batch-slots than any hand-picked ladder of the allowed size,
    always covers the longest request, and a handful of observed
    lengths yields full batches instead of one bucket per length."""
    from itertools import combinations

    import pytest

    from repro.serve import BatchPolicy

    rng = np.random.default_rng(0)
    # bimodal traffic: many short requests, a long tail
    lengths = np.concatenate([rng.integers(3, 9, size=80),
                              rng.integers(40, 65, size=20)]).tolist()

    policy = BatchPolicy.from_observed(lengths, max_buckets=3)
    assert policy.buckets is not None
    assert policy.buckets[-1] == max(lengths)

    size = BatchPolicy.max_batch_size   # the default the tuner assumed

    def served_slots(buckets):
        slots, lower = 0, 0
        for width in buckets:
            count = sum(1 for n in lengths if lower < n <= width)
            slots += -(-count // size) * size * width
            lower = width
        return slots

    best = served_slots(policy.buckets)
    tail = [u for u in sorted(set(lengths)) if u != max(lengths)]
    exhaustive = min(
        served_slots(tuple(sorted(c)) + (max(lengths),))
        for k in range(3) for c in combinations(tail, k))
    assert best <= exhaustive            # the DP is exact
    # bimodal traffic must beat single full-width padding outright
    assert best < served_slots((max(lengths),))

    # 3 observed requests at B=8: one near-full batch at width 9
    # (72 slots) beats a per-length ladder (2 batches, 104 slots)
    few = BatchPolicy.from_observed([4, 4, 9], max_buckets=8)
    assert few.buckets == (9,)
    options = BatchPolicy.ladder_options([4, 4, 9], max_buckets=8)
    assert [o.buckets for o in options] == [(9,), (4, 9)]
    assert options[0].served_slots == 72
    assert options[1].served_slots == 104
    assert options[1].padded_tokens < options[0].padded_tokens
    assert options[0].fullness > options[1].fullness

    with pytest.raises(ValueError, match="positive lengths"):
        BatchPolicy.from_observed([])
    tuned = BatchPolicy.from_observed(lengths, max_buckets=2,
                                      max_batch_size=16)
    assert tuned.max_batch_size == 16    # kwargs shape the slot costs too


def test_batch_policy_from_observed_matches_brute_force():
    """Property test: on randomized small length sets the tuner's DP
    is exact — for every allowed bucket count its ladder serves the
    traffic in exactly the minimum ``served_slots`` over *all* ladders
    (brute-force enumeration of every subset of observed lengths with
    the maximum always included)."""
    from itertools import combinations

    from repro.serve import BatchPolicy

    def served_slots(buckets, lengths, size):
        slots, lower = 0, 0
        for width in buckets:
            count = sum(1 for n in lengths if lower < n <= width)
            slots += -(-count // size) * size * width
            lower = width
        return slots

    for seed in range(8):
        rng = np.random.default_rng(seed)
        lengths = rng.integers(1, 21,
                               size=int(rng.integers(1, 13))).tolist()
        max_buckets = int(rng.integers(1, 5))
        size = int(rng.choice([2, 4, 8]))
        top = max(lengths)
        tail = [u for u in sorted(set(lengths)) if u != top]

        best_by_count = {}          # bucket count -> brute-force optimum
        for k in range(min(max_buckets, len(tail) + 1)):
            best_by_count[k + 1] = min(
                served_slots(tuple(sorted(c)) + (top,), lengths, size)
                for c in combinations(tail, k))

        tuned = BatchPolicy.from_observed(lengths, max_buckets=max_buckets,
                                          max_batch_size=size)
        assert served_slots(tuned.buckets, lengths, size) \
            == min(best_by_count.values()), (seed, lengths, tuned.buckets)
        assert tuned.buckets[-1] == top

        options = BatchPolicy.ladder_options(lengths,
                                             max_buckets=max_buckets,
                                             max_batch_size=size)
        for option in options:
            assert option.served_slots \
                == served_slots(option.buckets, lengths, size)
            assert option.served_slots == best_by_count[len(option.buckets)]


def test_stream_queue_fifo_and_discard():
    """The batcher's stream admission queue pops FIFO by enqueue time
    (planner-driven), and discards waiting streams on early finish."""
    from repro.serve import BatchPolicy, DynamicBatcher
    from repro.serve.streams import StreamState

    batcher = DynamicBatcher(BatchPolicy(), pad_to=8)
    streams = [StreamState(stream_id=i, tokens=np.array([1]),
                           max_new_tokens=1, arrival=float(i))
               for i in range(5)]
    for stream in streams:
        batcher.add_stream(stream)
    assert batcher.stream_count() == 5
    first = batcher.pop_streams(2)
    assert [s.stream_id for s in first] == [0, 1]
    # a preempted stream re-enters at the back, behind earlier waiters
    batcher.add_stream(first[0])
    assert [s.stream_id for s in batcher.pop_streams(None)] \
        == [2, 3, 4, 0]
    batcher.add_stream(streams[1])
    assert batcher.discard_stream(1) and not batcher.discard_stream(9)
    assert batcher.stream_count() == 0


def test_async_concurrent_clients_coalesce():
    engine = make_classifier_engine(0)
    rng = np.random.default_rng(6)
    requests = [rng.integers(0, 50, size=int(n))
                for n in rng.integers(2, 25, size=6)]
    # solo references through the same stack
    from tests.test_serving import serve_classify
    solo, _ = serve_classify(engine, requests, max_batch_size=1)

    serving = ServingEngine(engine, BatchPolicy(max_batch_size=4,
                                                max_wait=0.01))

    async def main():
        async with AsyncServingEngine(serving) as front:
            return await asyncio.gather(
                *[front.submit(r) for r in requests])

    results = asyncio.run(main())
    for got, expected in zip(results, solo):
        np.testing.assert_array_equal(got.logits, expected.logits)
        assert got.prediction == expected.prediction
    assert serving.stats.max_batch_size >= 2   # coalescing happened
    assert serving.stats.completed == len(requests)


# ---------------------------------------------------------------------------
# per-bucket flush sizes
# ---------------------------------------------------------------------------

def test_batch_policy_per_bucket_sizes_pair_sort_and_lookup():
    """``bucket_batch_sizes`` pairs one flush size per ladder entry,
    stays paired when the ladder is sorted, and unknown buckets (the
    ``pad_to`` fallback) use the global ``max_batch_size``."""
    import pytest

    from repro.serve import BatchPolicy

    policy = BatchPolicy(max_batch_size=8, buckets=(16, 4),
                         bucket_batch_sizes=(2, 6))
    assert policy.buckets == (4, 16)
    assert policy.bucket_batch_sizes == (6, 2)
    assert policy.batch_size_for(4) == 6
    assert policy.batch_size_for(16) == 2
    assert policy.batch_size_for(32) == 8     # pad_to fallback bucket

    with pytest.raises(ValueError, match="bucket ladder"):
        BatchPolicy(bucket_batch_sizes=(2,))
    with pytest.raises(ValueError, match="one size per"):
        BatchPolicy(buckets=(4, 16), bucket_batch_sizes=(2,))
    with pytest.raises(ValueError, match=">= 1"):
        BatchPolicy(buckets=(4, 16), bucket_batch_sizes=(2, 0))
    with pytest.raises(ValueError, match="duplicate"):
        BatchPolicy(buckets=(4, 4), bucket_batch_sizes=(2, 3))


def test_dynamic_batcher_flushes_at_per_bucket_sizes():
    """A wide bucket with a small flush size goes due at its own
    threshold and pops at most that many, while narrow buckets keep
    coalescing to the global size."""
    from repro.serve import BatchPolicy, DynamicBatcher, QueuedRequest

    policy = BatchPolicy(max_batch_size=4, max_wait=100.0,
                         buckets=(4, 16), bucket_batch_sizes=(4, 2))
    batcher = DynamicBatcher(policy, pad_to=32)

    def queue(request_id, length, arrival):
        batcher.add(QueuedRequest(
            request_id, np.zeros(length, dtype=np.int64),
            np.ones(length, dtype=bool), arrival))

    queue(0, 3, 0.0)
    queue(1, 3, 0.1)
    queue(2, 10, 0.2)
    assert not batcher.ready(0.3)          # short 2/4, long 1/2
    queue(3, 12, 0.3)
    assert batcher.ready(0.3)              # long bucket hit its cap
    bucket, popped = batcher.pop(0.3)
    assert bucket == 16
    assert [r.request_id for r in popped] == [2, 3]
    assert not batcher.ready(0.4)          # shorts still below 4
    queue(4, 2, 0.4)
    queue(5, 4, 0.5)
    bucket, popped = batcher.pop(0.5)
    assert bucket == 4
    assert [r.request_id for r in popped] == [0, 1, 4, 5]


def test_from_observed_max_batch_tokens_derives_bucket_sizes():
    """``max_batch_tokens`` caps each bucket's flush at
    ``clamp(max_batch_tokens // width, 1, max_batch_size)`` so every
    flush moves roughly the same padded-token volume."""
    import pytest

    from repro.serve import BatchPolicy

    lengths = [4] * 8 + [16] * 8
    policy = BatchPolicy.from_observed(lengths, max_buckets=2,
                                       max_batch_tokens=32,
                                       max_batch_size=8)
    assert policy.buckets == (4, 16)
    assert policy.bucket_batch_sizes == (8, 2)
    assert policy.batch_size_for(4) * 4 <= 32
    assert policy.batch_size_for(16) * 16 <= 32

    floor = BatchPolicy.from_observed(lengths, max_buckets=2,
                                      max_batch_tokens=1)
    assert floor.bucket_batch_sizes == (1, 1)   # clamped up to 1

    untuned = BatchPolicy.from_observed(lengths, max_buckets=2)
    assert untuned.bucket_batch_sizes is None

    with pytest.raises(ValueError, match="max_batch_tokens"):
        BatchPolicy.from_observed(lengths, max_batch_tokens=0)


def test_serving_engine_respects_per_bucket_flush_size():
    """End to end: a wide bucket capped at 2 serves its requests in
    batches of 2 even though the global size is 4 — and stays
    bit-identical to solo serving."""
    from repro.serve import BatchPolicy

    clock = [0.0]
    serving = ServingEngine(
        make_classifier_engine(0),
        BatchPolicy(max_batch_size=4, max_wait=0.0, buckets=(4, 16),
                    bucket_batch_sizes=(4, 2)),
        clock=lambda: clock[0])
    rng = np.random.default_rng(3)
    inputs = [rng.integers(0, 50, size=10) for _ in range(4)]
    ids = [serving.submit(x) for x in inputs]
    serving.drain()
    solo = ServingEngine(make_classifier_engine(0),
                         BatchPolicy(max_batch_size=1, max_wait=0.0))
    for request_id, x in zip(ids, inputs):
        result = serving.finish(request_id)
        assert result.batch_sizes == [2]
        alone = solo.submit(x)
        solo.drain()
        expected = solo.finish(alone)
        assert result.prediction == expected.prediction
        np.testing.assert_array_equal(result.logits, expected.logits)
