"""CLI regression tests: the module entrypoints must exit cleanly —
operator-facing errors are one-line ``error: ...`` messages and never
tracebacks, and the happy paths print their tables and exit 0."""

import os
import subprocess
import sys

import pytest

from repro.serve.__main__ import build_classifier_engine, build_lm_engine

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(*argv, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run([sys.executable, *argv], cwd=REPO, env=env,
                          capture_output=True, text=True, timeout=timeout)


def test_serve_demo_stats_smoke():
    proc = run_cli("-m", "repro.serve", "--stats", "--mode", "classify",
                   "--requests", "4", "--max-batch-size", "2")
    assert proc.returncode == 0, proc.stderr
    assert "[stats]" in proc.stdout
    assert "ok=" in proc.stdout            # terminal reason counters
    assert "Traceback" not in proc.stderr


def test_serve_demo_continuous_generate_smoke():
    proc = run_cli("-m", "repro.serve", "--mode", "generate",
                   "--continuous", "--streams", "3", "--new-tokens", "4")
    assert proc.returncode == 0, proc.stderr
    assert "continuous scheduler" in proc.stdout
    assert "Traceback" not in proc.stderr


def test_serve_demo_worker_tier_smoke():
    proc = run_cli("-m", "repro.serve", "--replicas", "2", "--stats",
                   "--streams", "4", "--new-tokens", "4")
    assert proc.returncode == 0, proc.stderr
    assert "shared-nothing worker tier (2 replicas" in proc.stdout
    assert "worker0" in proc.stdout and "worker1" in proc.stdout
    assert "Traceback" not in proc.stderr


def test_unknown_model_is_a_clean_error(tmp_path):
    build_lm_engine(0).save(str(tmp_path / "lm"))
    build_classifier_engine(0).save(str(tmp_path / "clf"))
    proc = run_cli("-m", "repro.serve",
                   "--engine-dir", f"lm={tmp_path / 'lm'}",
                   "--engine-dir", f"clf={tmp_path / 'clf'}",
                   "--model", "nope")
    assert proc.returncode != 0
    blob = proc.stdout + proc.stderr
    assert "error:" in blob and "nope" in blob
    assert "Traceback" not in proc.stderr


def test_replicas_reject_multiple_snapshots(tmp_path):
    build_lm_engine(0).save(str(tmp_path / "lm"))
    proc = run_cli("-m", "repro.serve", "--replicas", "2",
                   "--engine-dir", f"a={tmp_path / 'lm'}",
                   "--engine-dir", f"b={tmp_path / 'lm'}")
    assert proc.returncode != 0
    assert "one snapshot" in proc.stderr
    assert "Traceback" not in proc.stderr


def test_loadgen_cli_virtual_check_passes():
    proc = run_cli("-m", "repro.serve.loadgen", "--virtual",
                   "--requests", "8", "--replicas", "2", "--check",
                   "--max-ttft-p99", "1.0", "--min-tok-s", "1")
    assert proc.returncode == 0, proc.stderr
    assert "[check] SLOs met" in proc.stdout
    assert "TTFT" in proc.stdout and "tok/s" in proc.stdout
    assert "Traceback" not in proc.stderr


def test_loadgen_cli_check_failure_is_clean():
    proc = run_cli("-m", "repro.serve.loadgen", "--virtual",
                   "--requests", "4", "--replicas", "1", "--check",
                   "--min-tok-s", "1e12")
    assert proc.returncode != 0
    assert "SLO check failed" in proc.stderr
    assert "tok_s" in proc.stderr
    assert "Traceback" not in proc.stderr


def test_loadgen_cli_records_bench_artifact(tmp_path):
    env_dir = tmp_path / "bench"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["REPRO_BENCH_DIR"] = str(env_dir)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serve.loadgen", "--virtual",
         "--requests", "6"], cwd=REPO, env=env,
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert (env_dir / "BENCH_serving_slo.json").exists()
    assert "[bench] recorded" in proc.stdout
