"""Trace-driven load & SLO harness pins.

The headline invariant: replaying the same seeded ``TraceSpec``
through the multi-worker tier twice yields bit-identical per-request
outputs, pruning masks, hardware estimates *and* latency marks — and
every request's outputs match serving it alone (batch size 1) on an
engine rebuilt from the same snapshot.  Around it: trace determinism,
the token-budget step planner, SLO-aware admission shedding, and the
worker tier's deterministic least-loaded routing.
"""

import numpy as np
import pytest

from repro.core import PrunedInferenceEngine
from repro.serve import (BatchPolicy, REASON_CANCELLED, REASON_OK,
                         REASON_SHED, ServingEngine, ShedOverload,
                         WorkerTier)
from repro.serve.loadgen import (LoadReport, TraceSpec, VirtualClock,
                                 replay_trace)
from repro.serve.scheduler import (SchedulerConfig, SLOAdmission,
                                   StepPlanner)
from repro.serve.streams import StreamState
from tests.test_serving import assert_records_identical, make_lm_engine

VOCAB = 40   # make_lm_engine's vocabulary


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """One saved LM engine snapshot every tier in this module
    replicates from."""
    directory = tmp_path_factory.mktemp("engine")
    make_lm_engine(0).save(str(directory))
    return str(directory)


def make_tier(snapshot, replicas=2, **kwargs):
    clock = VirtualClock()
    kwargs.setdefault("continuous", True)
    kwargs.setdefault("step_token_budget", 16)
    tier = WorkerTier.from_snapshot(
        snapshot, replicas=replicas,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=clock, estimate_hardware=True, **kwargs)
    return tier, clock


# ---------------------------------------------------------------------------
# trace generation
# ---------------------------------------------------------------------------

def test_trace_spec_is_deterministic():
    spec = TraceSpec(seed=7, requests=40, process="bursty",
                     classify_fraction=0.3, vocab_size=VOCAB)
    first, second = spec.generate(), spec.generate()
    assert len(first) == 40
    for a, b in zip(first, second):
        assert a.arrival == b.arrival
        assert a.kind == b.kind
        assert a.max_new_tokens == b.max_new_tokens
        np.testing.assert_array_equal(a.tokens, b.tokens)
    other = TraceSpec(seed=8, requests=40, process="bursty",
                      classify_fraction=0.3, vocab_size=VOCAB).generate()
    assert any(a.arrival != b.arrival for a, b in zip(first, other))


def test_trace_spec_validates():
    with pytest.raises(ValueError):
        TraceSpec(process="weibull")
    with pytest.raises(ValueError):
        TraceSpec(requests=0)
    with pytest.raises(ValueError):
        TraceSpec(prompt_tokens=(5, 2))
    with pytest.raises(ValueError):
        TraceSpec(rate=0.0)
    with pytest.raises(ValueError):
        TraceSpec(classify_fraction=1.5)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bursty_arrivals_are_burstier_than_poisson(seed):
    """The MMPP trace's inter-arrival coefficient of variation exceeds
    the Poisson trace's (CV 1) — the burst structure is real."""
    def cv(process):
        spec = TraceSpec(seed=seed, requests=400, process=process)
        arrivals = np.array([r.arrival for r in spec.generate()])
        gaps = np.diff(np.concatenate([[0.0], arrivals]))
        return gaps.std() / gaps.mean()

    assert cv("bursty") > cv("poisson") + 0.05


def test_trace_mixes_request_kinds():
    spec = TraceSpec(seed=0, requests=200, classify_fraction=0.5)
    kinds = {r.kind for r in spec.generate()}
    assert kinds == {"classify", "generate"}
    assert all(r.max_new_tokens == 0 for r in spec.generate()
               if r.kind == "classify")


# ---------------------------------------------------------------------------
# the headline pin: bit-identical replay, solo-equivalent outputs
# ---------------------------------------------------------------------------

def run_replay(snapshot, spec, replicas=2):
    tier, clock = make_tier(snapshot, replicas=replicas)
    return replay_trace(tier, spec, clock=clock), tier


@pytest.mark.parametrize("seed", [0, 3])
def test_replay_is_bit_identical_and_matches_solo(snapshot, seed):
    spec = TraceSpec(seed=seed, requests=18, process="bursty",
                     rate=300.0, burst_rate=3000.0, vocab_size=VOCAB)
    first, _ = run_replay(snapshot, spec)
    second, _ = run_replay(snapshot, spec)

    assert len(first.outcomes) == spec.requests
    assert first.reasons == {REASON_OK: spec.requests}
    for a, b in zip(first.outcomes, second.outcomes):
        # outputs, masks, hardware estimates — and the latency marks,
        # because the virtual clock replays time itself
        np.testing.assert_array_equal(a.result.tokens, b.result.tokens)
        np.testing.assert_array_equal(a.result.logits, b.result.logits)
        assert_records_identical(a.result.records, b.result.records)
        assert a.result.hardware == b.result.hardware
        assert a.timing == b.timing
    assert first.metrics() == second.metrics()

    # solo reference: every request served alone (batch size 1) on an
    # engine rebuilt from the same snapshot — placement, batching, and
    # scheduling must be bit-invisible
    solo_clock = [0.0]
    solo = ServingEngine(
        PrunedInferenceEngine.from_directory(snapshot),
        BatchPolicy(max_batch_size=1, max_wait=0.0),
        estimate_hardware=True, clock=lambda: solo_clock[0])
    for outcome in first.outcomes:
        request = outcome.request
        stream_id = solo.open_stream(request.tokens,
                                     request.max_new_tokens)
        solo.drain()
        expected = solo.finish(stream_id)
        np.testing.assert_array_equal(outcome.result.tokens,
                                      expected.tokens)
        np.testing.assert_array_equal(outcome.result.logits,
                                      expected.logits)
        assert_records_identical(outcome.result.records,
                                 expected.records)
        assert outcome.result.hardware == expected.hardware


def test_replay_handles_classify_traffic(tmp_path):
    """One-shot classification traces flow through the same replay —
    served on a classifier-snapshot tier (the classify queue needs a
    masked-input model, which the causal LM is not)."""
    from tests.test_serving import make_classifier_engine

    make_classifier_engine(0).save(str(tmp_path))
    clock = VirtualClock()
    tier = WorkerTier.from_snapshot(
        str(tmp_path), replicas=2,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=clock, estimate_hardware=True)
    spec = TraceSpec(seed=1, requests=12, classify_fraction=1.0,
                     vocab_size=50)
    report = replay_trace(tier, spec, clock=clock)
    assert report.reasons == {REASON_OK: 12}
    for outcome in report.outcomes:
        assert outcome.result.kind == "classify"
        timing = outcome.timing
        assert timing is not None
        assert timing.latency >= 0.0
        assert timing.first_token == timing.finished


# ---------------------------------------------------------------------------
# worker tier: routing, surface
# ---------------------------------------------------------------------------

def test_tier_routes_least_loaded_deterministically(snapshot):
    tier, _ = make_tier(snapshot, replicas=3)
    prompt = np.arange(1, 5, dtype=np.int64)
    # empty tier: ties break toward the lowest index, then each request
    # lands on the emptiest replica — round-robin under equal load
    ids = [tier.open_stream(prompt, max_new_tokens=4) for _ in range(6)]
    owners = [tier._routes[i][0] for i in ids]
    assert owners == [0, 1, 2, 0, 1, 2]
    tier.drain()
    for request_id in ids:
        assert tier.finish(request_id).ok


def test_tier_skews_toward_the_lighter_worker(snapshot):
    tier, _ = make_tier(snapshot, replicas=2)
    heavy = tier.open_stream(np.arange(1, 8, dtype=np.int64),
                             max_new_tokens=8)
    light = [tier.open_stream(np.arange(1, 3, dtype=np.int64),
                              max_new_tokens=2) for _ in range(2)]
    # worker0 owes 7+8 tokens, so both small streams pile onto worker1
    # (4 tokens each) before it catches up
    assert tier._routes[heavy][0] == 0
    assert [tier._routes[i][0] for i in light] == [1, 1]
    tier.drain()


def test_tier_surface(snapshot):
    with pytest.raises(ValueError):
        WorkerTier.from_snapshot(snapshot, replicas=0)
    with pytest.raises(ValueError):
        WorkerTier([])
    tier, clock = make_tier(snapshot, replicas=2)
    assert sorted(tier.engines) == ["worker0", "worker1"]
    assert tier.outstanding_tokens() == 0
    assert tier.kv_slots_in_use() == 0
    assert not tier.has_pending()
    assert tier.next_deadline() is None
    with pytest.raises(KeyError):
        tier.finish(123)
    with pytest.raises(KeyError):
        tier.cancel(123)

    stream = tier.open_stream(np.arange(1, 4, dtype=np.int64), 4,
                              ttl=5.0)
    assert tier.has_pending()
    assert tier.cancel(stream)
    tier.step()
    assert not tier.result(stream).ok
    summary = tier.stats_summary()
    assert set(summary) == {"tier", "workers"}
    assert set(summary["workers"]) == {"worker0", "worker1"}
    for row in summary["workers"].values():
        assert {"health", "completed", "reasons", "shed", "errors",
                "preemptions", "outstanding_tokens",
                "kv_slots_in_use", "queue_depth"} <= set(row)
        assert row["health"] == "ok"
    tier_row = summary["tier"]
    assert tier_row["replicas"] == 2
    assert tier_row["completed"] == sum(
        row["completed"] for row in summary["workers"].values())
    assert tier_row["reasons"][REASON_CANCELLED] == 1


# ---------------------------------------------------------------------------
# token-budget step planning
# ---------------------------------------------------------------------------

def make_stream(stream_id, length=4, steps=0):
    stream = StreamState(
        stream_id=stream_id,
        tokens=np.zeros(length, dtype=np.int64),
        max_new_tokens=8, arrival=0.0)
    stream.steps_since_admit = steps
    return stream


def test_token_budget_counts_chunked_prefill_tokens():
    planner = StepPlanner(SchedulerConfig(max_slots=4,
                                          step_token_budget=8))
    running = [make_stream(0), make_stream(1)]
    # residents decode 2 tokens; the first waiting stream's prefill
    # (4 + 1 tokens) fits (7 <= 8), the next would not (10 > 8)
    plan = planner.plan(running, waiting=3, waiting_tokens=[5, 3, 1])
    assert plan.admit_slots == 1
    assert plan.step_tokens == 7


def test_token_budget_admission_is_strictly_fifo():
    planner = StepPlanner(SchedulerConfig(max_slots=4,
                                          step_token_budget=8))
    running = [make_stream(0)]
    # the head prompt does not fit, so the cheap stream behind it must
    # NOT jump the queue
    plan = planner.plan(running, waiting=2, waiting_tokens=[9, 1])
    assert plan.admit_slots == 0
    assert plan.step_tokens == 1


def test_token_budget_progress_floor_admits_oversized_prompt():
    planner = StepPlanner(SchedulerConfig(max_slots=4,
                                          step_token_budget=8))
    plan = planner.plan([], waiting=1, waiting_tokens=[20])
    assert plan.admit_slots == 1         # idle engine must make progress
    assert plan.step_tokens == 20


def test_no_token_budget_keeps_slot_discipline():
    planner = StepPlanner(SchedulerConfig(max_slots=4))
    plan = planner.plan([make_stream(0)], waiting=5,
                        waiting_tokens=[100, 100, 100])
    assert plan.admit_slots == 3         # slots-only: free slots all fill


def test_scheduler_config_validates_budget():
    with pytest.raises(ValueError):
        SchedulerConfig(max_slots=4, step_token_budget=0)


def test_engine_throttles_admissions_by_token_budget():
    clock = [0.0]
    serving = ServingEngine(
        make_lm_engine(0), BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=lambda: clock[0], continuous=True, step_token_budget=11)
    prompts = [np.arange(1, 5, dtype=np.int64) for _ in range(3)]
    ids = [serving.open_stream(p, max_new_tokens=3) for p in prompts]
    serving.step()
    # each fresh stream costs prompt(4) + decode(1) = 5 tokens: two fit
    # in the 11-token budget, the third waits despite the free slot
    assert serving.stats.admitted == 2
    serving.step()
    # residents decode 2 tokens, 2 + 5 <= 11: the third stream enters
    assert serving.stats.admitted == 3
    while serving.has_pending():
        serving.step()
    assert [serving.finish(i).ok for i in ids] == [True] * 3


# ---------------------------------------------------------------------------
# SLO-aware admission
# ---------------------------------------------------------------------------

def test_slo_admission_sheds_with_typed_shed_overload():
    clock = [0.0]
    serving = ServingEngine(
        make_lm_engine(0), BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=lambda: clock[0], continuous=True,
        slo=SLOAdmission(ttft_target=0.5, step_time=1.0))
    stream_id = serving.open_stream(np.arange(1, 5, dtype=np.int64), 4)
    assert serving.step() == [stream_id]
    result = serving.result(stream_id)
    assert result.reason == REASON_SHED
    assert serving.stats.shed == 1
    with pytest.raises(ShedOverload):
        serving.finish(stream_id)


def test_slo_tbt_below_step_time_sheds_streams_not_classify():
    slo = SLOAdmission(tbt_target=0.01, step_time=1.0)
    assert slo.admit(0, 4, stream=True) is not None
    assert slo.admit(0, 4, stream=False) is None


def test_slo_predicted_ttft_and_ewma():
    slo = SLOAdmission(ttft_target=1.0, step_time=0.1, smoothing=0.5)
    assert slo.predicted_ttft(40, 4) == pytest.approx(1.1)
    assert slo.admit(40, 4) is not None
    assert slo.admit(0, 4) is None
    slo.observe_step(0.3)
    assert slo.step_time == pytest.approx(0.2)
    slo.observe_step(0.0)                # virtual clock: no-op
    assert slo.step_time == pytest.approx(0.2)
    with pytest.raises(ValueError):
        SLOAdmission(ttft_target=-1.0)
    with pytest.raises(ValueError):
        SLOAdmission(step_time=0.0)


def test_slo_shedding_under_burst_keeps_survivors_in_target(snapshot):
    """Under an overload burst the SLO gate sheds typed, and every
    request still admitted finishes inside the TTFT target."""
    target = 0.002
    tier, clock = make_tier(
        snapshot, slo=SLOAdmission(ttft_target=target, step_time=1e-3))
    spec = TraceSpec(seed=2, requests=40, process="bursty",
                     rate=200.0, burst_rate=20000.0, vocab_size=VOCAB)
    report = replay_trace(tier, spec, clock=clock)
    assert report.reasons.get(REASON_SHED, 0) > 0
    assert report.reasons[REASON_OK] > 0
    assert set(report.reasons) == {REASON_OK, REASON_SHED}
    for outcome in report.outcomes:
        # the admission model is a prediction, not a guarantee — but
        # shedding must keep every survivor near the target instead of
        # queueing the whole burst into collapse
        if outcome.ok:
            assert outcome.ttft <= 2 * target
    assert tier.stats_summary()["tier"]["shed"] \
        == report.reasons[REASON_SHED]


# ---------------------------------------------------------------------------
# timing marks, report percentiles, SLO gate
# ---------------------------------------------------------------------------

def test_request_timing_marks_follow_the_virtual_clock():
    clock = [0.0]
    serving = ServingEngine(
        make_lm_engine(0), BatchPolicy(max_batch_size=2, max_wait=0.0),
        clock=lambda: clock[0], continuous=True)
    stream_id = serving.open_stream(np.arange(1, 4, dtype=np.int64),
                                    max_new_tokens=3, now=0.0)
    while serving.has_pending():
        clock[0] += 0.01
        serving.step()
    timing = serving.finish(stream_id).timing
    assert timing.arrival == 0.0
    assert timing.ttft == pytest.approx(0.01)      # prefill step
    assert len(timing.token_times) == 3
    # the admitting step piggybacks the first decode onto the prefill,
    # so tokens 1 and 2 share a stamp; the last token lands a step later
    assert timing.tbts == pytest.approx((0.0, 0.01))
    assert timing.latency == pytest.approx(0.02)


def test_load_report_percentiles_and_gate(snapshot):
    spec = TraceSpec(seed=5, requests=16, vocab_size=VOCAB)
    report, _ = run_replay(snapshot, spec)
    metrics = report.metrics()
    assert metrics["completed_ok"] == 16
    # idle arrivals get prefilled at their exact arrival instant on the
    # virtual clock, so TTFT can legitimately be 0.0
    assert 0.0 <= metrics["ttft_p50"] <= metrics["ttft_p99"]
    assert metrics["tbt_p50"] <= metrics["tbt_p99"]
    assert metrics["tok_s"] > 0.0
    assert metrics["generated_tokens"] == report.generated_tokens

    assert report.check(max_ttft_p99=metrics["ttft_p99"] + 1.0,
                        min_tok_s=0.0) is report
    with pytest.raises(SystemExit, match="ttft_p99"):
        report.check(max_ttft_p99=metrics["ttft_p99"] / 2)
    with pytest.raises(SystemExit, match="tok_s"):
        report.check(min_tok_s=metrics["tok_s"] * 10)


def test_empty_percentiles_are_none():
    report = LoadReport(outcomes=[], duration=1.0)
    metrics = report.metrics()
    assert metrics["ttft_p99"] is None
    assert metrics["tok_s"] == 0.0
    with pytest.raises(SystemExit):     # no TTFT at all breaches a gate
        report.check(max_ttft_p99=1.0)


def test_replay_records_bench_artifact(snapshot, tmp_path, monkeypatch):
    from repro.eval import load_bench, record_bench

    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    report, _ = run_replay(snapshot, TraceSpec(seed=0, requests=6,
                                               vocab_size=VOCAB))
    path = record_bench("serving_slo", report.metrics(),
                        context={"replicas": 2})
    payload = load_bench(path)
    assert payload["schema"] == 1
    assert payload["runs"][-1]["metrics"]["completed_ok"] == 6
    assert payload["runs"][-1]["context"]["replicas"] == 2
