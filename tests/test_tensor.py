"""Autograd correctness: analytic vs numeric gradients for the ops the
model zoo leans on."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F


def numeric_grad(fn, array, index, eps=1e-6):
    bumped = array.copy()
    bumped[index] += eps
    return (fn(bumped) - fn(array)) / eps


@pytest.mark.parametrize("op", ["matmul", "softmax", "layer_norm", "gelu",
                                "log_softmax", "softplus"])
def test_gradients_match_numeric(op):
    rng = np.random.default_rng(42)
    x = rng.standard_normal((3, 5))

    def forward(array):
        t = Tensor(array, requires_grad=True)
        if op == "matmul":
            out = (t @ w).sum()
        elif op == "softmax":
            out = (F.softmax(t) * weights).sum()
        elif op == "log_softmax":
            out = (F.log_softmax(t) * weights).sum()
        elif op == "layer_norm":
            out = (F.layer_norm(t, gain, bias) * weights).sum()
        elif op == "gelu":
            out = (F.gelu(t) * weights).sum()
        elif op == "softplus":
            out = (F.softplus(t) * weights).sum()
        return t, out

    w = Tensor(np.random.default_rng(7).standard_normal((5, 2)))
    weights = Tensor(np.random.default_rng(1).standard_normal((3, 5)))
    gain = Tensor(np.ones(5))
    bias = Tensor(np.zeros(5))

    t, out = forward(x)
    out.backward()
    analytic = t.grad

    for index in [(0, 0), (1, 3), (2, 4)]:
        num = numeric_grad(lambda a: float(forward(a)[1].data), x, index)
        assert analytic[index] == pytest.approx(num, abs=1e-4), (op, index)


def test_cross_entropy_gradient():
    rng = np.random.default_rng(0)
    logits = rng.standard_normal((4, 3))
    labels = np.array([0, 2, 1, 1])

    def loss_of(array):
        return float(F.cross_entropy(Tensor(array), labels).data)

    t = Tensor(logits, requires_grad=True)
    F.cross_entropy(t, labels).backward()
    for index in [(0, 0), (2, 1), (3, 2)]:
        assert t.grad[index] == pytest.approx(
            numeric_grad(loss_of, logits, index), abs=1e-4)


def test_broadcasting_unbroadcasts_gradients():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.ones(4), requires_grad=True)
    (a * b).sum().backward()
    assert a.grad.shape == (3, 4)
    assert b.grad.shape == (4,)
    np.testing.assert_allclose(b.grad, 3.0)


def test_embedding_accumulates_duplicate_indices():
    table = Tensor(np.zeros((5, 2)), requires_grad=True)
    out = F.embedding(table, np.array([1, 1, 3]))
    out.sum().backward()
    np.testing.assert_allclose(table.grad[1], [2.0, 2.0])
    np.testing.assert_allclose(table.grad[3], [1.0, 1.0])


def test_no_grad_skips_tape():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = (x * 2).sum()
    assert not y.requires_grad
    assert y._backward is None
