"""Optimizer unit tests: Adam convergence on a toy quadratic and
gradient clipping."""

import numpy as np

from repro.nn import Parameter, clip_grad_norm
from repro.optim import Adam


def test_adam_converges_on_quadratic():
    """min ||x - target||^2 from a bad start."""
    target = np.array([3.0, -2.0, 0.5, 7.0])
    x = Parameter(np.zeros(4))
    optimizer = Adam([x], lr=0.1)
    for _ in range(500):
        residual = x - target
        loss = (residual * residual).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    np.testing.assert_allclose(x.data, target, atol=1e-2)
    assert float(((x - target) ** 2).sum().data) < 1e-3


def test_adam_param_groups_use_their_own_lr():
    a = Parameter(np.array(0.0))
    b = Parameter(np.array(0.0))
    optimizer = Adam([{"params": [a], "lr": 1e-1},
                      {"params": [b], "lr": 1e-3}])
    loss = (a - 1.0) ** 2 + (b - 1.0) ** 2
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    # Adam's first step is ~lr in the gradient direction
    assert abs(float(a.data) - 0.1) < 1e-6
    assert abs(float(b.data) - 0.001) < 1e-6


def test_clip_grad_norm_scales_in_place():
    p = Parameter(np.zeros(3))
    q = Parameter(np.zeros(4))
    p.grad = np.array([3.0, 0.0, 0.0])
    q.grad = np.array([0.0, 4.0, 0.0, 0.0])
    norm = clip_grad_norm([p, q], 1.0)
    assert norm == 5.0
    total = np.sqrt((p.grad ** 2).sum() + (q.grad ** 2).sum())
    np.testing.assert_allclose(total, 1.0)


def test_clip_grad_norm_noop_below_max():
    p = Parameter(np.zeros(2))
    p.grad = np.array([0.3, 0.4])
    norm = clip_grad_norm([p], 1.0)
    assert norm == 0.5
    np.testing.assert_allclose(p.grad, [0.3, 0.4])
