"""Observability layer pins: metrics, traces, exposition, endpoints.

The headline invariant mirrors the serving ones: observability is a
*read-only window* onto a deterministic system.  Replaying the same
seeded trace through an instrumented worker tier twice on virtual
clocks yields byte-identical Chrome trace exports and equal metrics
snapshots — and instrumenting at all never changes what the engine
computes (same outputs with and without a registry).
"""

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro.obs import (KernelProfiler, MetricsRegistry, NULL_REGISTRY,
                       NULL_TRACER, TraceRecorder, log_buckets)
from repro.obs.http import start_metrics_server
from repro.obs.metrics import COUNT_BUCKETS
from repro.serve import BatchPolicy, REASON_OK, ServingEngine, WorkerTier
from repro.serve.loadgen import TraceSpec, VirtualClock, replay_trace
from tests.test_serving import make_lm_engine


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("obs-snap"))
    make_lm_engine().save(directory)
    return directory


# -- metric primitives --------------------------------------------------

def test_counter_only_goes_up():
    registry = MetricsRegistry()
    counter = registry.counter("repro_things_total", "things")
    counter.inc()
    counter.inc(2.5)
    assert counter.sample() == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("repro_depth", "queue depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.sample() == 6


def test_histogram_buckets_are_inclusive_upper_bounds():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_size", "sizes",
                              buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 4.0, 9.0):
        hist.observe(value)
    sample = hist.sample()
    # le=1 captures 0.5 and exactly-1.0; 4.0 lands in le=4; 9 overflows
    assert sample["buckets"] == {1.0: 2, 2.0: 1, 4.0: 1}
    assert sample["count"] == 5
    assert sample["sum"] == pytest.approx(16.0)


def test_log_buckets_are_stable_and_increasing():
    bounds = log_buckets(1e-4, 1.0)
    assert bounds[0] == 1e-4 and bounds[-1] == 1.0
    assert list(bounds) == sorted(set(bounds))
    # rounded to 6 significant digits => identical on every platform
    assert bounds == log_buckets(1e-4, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1.0, 0.5)


def test_registry_get_or_create_and_kind_conflicts():
    registry = MetricsRegistry()
    a = registry.counter("repro_x_total", engine="w0")
    assert registry.counter("repro_x_total", engine="w0") is a
    assert registry.counter("repro_x_total", engine="w1") is not a
    with pytest.raises(ValueError):
        registry.gauge("repro_x_total")
    registry.histogram("repro_h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("repro_h", buckets=(1.0, 3.0))


def test_null_registry_is_inert():
    counter = NULL_REGISTRY.counter("repro_anything_total")
    counter.inc()
    counter.observe(3)          # any metric method is accepted
    counter.set(9)
    assert counter.sample() is None
    assert NULL_REGISTRY.enabled is False
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.exposition() == ""
    NULL_TRACER.instant("x", 0.0)
    NULL_TRACER.complete("x", 0.0, 1.0)
    assert NULL_TRACER.export() == ""


def test_exposition_format():
    registry = MetricsRegistry()
    registry.counter("repro_served_total", "requests served",
                     engine="lm").inc(3)
    registry.gauge("repro_depth", "depth").set(2.0)
    hist = registry.histogram("repro_lat_seconds", "latency",
                              buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    text = registry.exposition()
    assert "# HELP repro_served_total requests served" in text
    assert "# TYPE repro_served_total counter" in text
    assert 'repro_served_total{engine="lm"} 3' in text
    assert "repro_depth 2" in text            # integral floats lose .0
    lines = text.splitlines()
    assert 'repro_lat_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_lat_seconds_bucket{le="1"} 2' in lines   # cumulative
    assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in lines
    assert "repro_lat_seconds_sum 0.55" in text
    assert "repro_lat_seconds_count 2" in text
    assert text.endswith("\n")


def test_exposition_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("repro_weird_total", model='a"b\nc\\d').inc()
    text = registry.exposition()
    assert r'model="a\"b\nc\\d"' in text


# -- trace recorder -----------------------------------------------------

def test_trace_recorder_tracks_and_export(tmp_path):
    tracer = TraceRecorder()
    assert tracer.track("lm") == 1
    assert tracer.track("lm") == 1          # get-or-assign
    assert tracer.track("classifier") == 2
    tracer.instant("submit", ts=1.5, pid=1, tid=7, tokens=4)
    tracer.complete("request", ts=1.5, dur=0.25, pid=1, tid=7)
    payload = json.loads(tracer.export())
    events = payload["traceEvents"]
    kinds = [e["ph"] for e in events]
    assert kinds == ["M", "M", "i", "X"]
    assert events[2]["ts"] == pytest.approx(1.5e6)   # seconds -> us
    assert events[3]["dur"] == pytest.approx(0.25e6)
    path = tmp_path / "sub" / "trace.json"
    tracer.save(str(path))                  # creates parent dirs
    assert json.loads(path.read_text()) == payload


# -- kernel profiler ----------------------------------------------------

def test_kernel_profiler_aggregates_per_backend():
    registry = MetricsRegistry()
    profiler = KernelProfiler(registry=registry)
    profiler.record("numpy-packed", jobs=4, groups=2, elapsed_s=1e-4)
    profiler.record("numpy-packed", jobs=8, groups=1, elapsed_s=3e-4)
    profiler.record("torch", jobs=2, groups=2, elapsed_s=2e-4)
    summary = profiler.summary()
    assert list(summary) == ["numpy-packed", "torch"]
    row = summary["numpy-packed"]
    assert row["calls"] == 2 and row["jobs"] == 12
    assert row["max_jobs_per_call"] == 8
    assert row["mean_jobs_per_call"] == pytest.approx(6.0)
    assert 'repro_kernel_jobs_per_call_count{backend="numpy-packed"} 2' \
        in registry.exposition()
    profiler.clear()
    assert profiler.summary() == {}


def test_tile_simulator_reports_kernel_calls(snapshot):
    from repro.core import PrunedInferenceEngine

    engine = PrunedInferenceEngine.from_directory(snapshot)
    profiler = KernelProfiler()
    serving = ServingEngine(engine, BatchPolicy(max_batch_size=4,
                                                max_wait=0.0),
                            estimate_hardware=True, profiler=profiler)
    rng = np.random.default_rng(0)
    ids = [serving.open_stream(rng.integers(1, 40, size=4),
                               max_new_tokens=3) for _ in range(3)]
    serving.drain()
    for request_id in ids:
        assert serving.finish(request_id).ok
    summary = profiler.summary()
    assert summary, "hardware-estimated serving must profile kernels"
    (backend,) = summary
    assert summary[backend]["calls"] > 0
    assert summary[backend]["jobs"] >= summary[backend]["calls"]


# -- instrumented serving -----------------------------------------------

def run_traced_tier(snapshot, registry, tracer):
    clock = VirtualClock()
    tier = WorkerTier.from_snapshot(
        snapshot, replicas=2,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=clock, continuous=True, step_token_budget=32,
        registry=registry, tracer=tracer)
    trace = TraceSpec(seed=3, requests=24, process="bursty")
    return replay_trace(tier, trace, clock=clock)


def test_replay_metrics_and_traces_are_deterministic(snapshot):
    """Two virtual-clock replays: byte-identical trace exports and
    equal metrics snapshots — the determinism contract of the layer."""
    runs = []
    for _ in range(2):
        registry, tracer = MetricsRegistry(), TraceRecorder()
        report = run_traced_tier(snapshot, registry, tracer)
        runs.append((report, registry.snapshot(),
                     registry.exposition(), tracer.export()))
    (report_a, snap_a, expo_a, trace_a), \
        (report_b, snap_b, expo_b, trace_b) = runs
    assert report_a.reasons == report_b.reasons
    assert snap_a == snap_b
    assert expo_a == expo_b
    assert trace_a == trace_b               # byte-identical
    assert trace_a.encode() == trace_b.encode()


def test_instrumentation_does_not_change_results(snapshot):
    bare = run_traced_tier(snapshot, None, None)
    traced = run_traced_tier(snapshot, MetricsRegistry(), TraceRecorder())
    assert bare.reasons == traced.reasons
    for a, b in zip(bare.outcomes, traced.outcomes):
        assert a.reason == b.reason
        if a.result.tokens is not None:
            np.testing.assert_array_equal(a.result.tokens,
                                          b.result.tokens)
        assert a.timing == b.timing


def test_engine_metrics_count_what_happened(snapshot):
    registry, tracer = MetricsRegistry(), TraceRecorder()
    report = run_traced_tier(snapshot, registry, tracer)
    snap = registry.snapshot()
    terminal = {tuple(sorted(row["labels"].items())): row["value"]
                for row in snap["repro_requests_terminal_total"]["series"]}
    ok_total = sum(v for (label, *_), v in
                   [((dict(k)["reason"], ), v)
                    for k, v in terminal.items()] if label == REASON_OK)
    assert ok_total == report.reasons.get(REASON_OK, 0)
    steps = {row["labels"]["engine"]: row["value"]
             for row in snap["repro_steps_total"]["series"]}
    assert set(steps) == {"worker0", "worker1"}
    # the metric counts every scheduler invocation (idle ones too), so
    # it bounds the productive step count the report aggregates
    assert sum(steps.values()) >= report.steps > 0
    # every request leaves exactly one lifecycle span per side
    events = json.loads(tracer.export())["traceEvents"]
    by_name = {}
    for event in events:
        by_name.setdefault(event["name"], []).append(event)
    assert len(by_name["submit"]) == len(report.outcomes)
    assert len(by_name["finish"]) == len(report.outcomes)
    assert len(by_name["request"]) == len(report.outcomes)
    tracks = sorted(e["args"]["name"] for e in by_name["process_name"])
    assert tracks == ["worker0", "worker1"]
    assert any(e["name"] == "decode-step" for e in events)


def test_scheduler_and_slo_metrics_publish(snapshot):
    from repro.core import PrunedInferenceEngine
    from repro.serve.scheduler import SLOAdmission

    registry = MetricsRegistry()
    engine = PrunedInferenceEngine.from_directory(snapshot)
    clock = VirtualClock()
    serving = ServingEngine(
        engine, BatchPolicy(max_batch_size=2, max_wait=0.0),
        clock=clock, continuous=True, step_token_budget=8,
        slo=SLOAdmission(ttft_target=10.0), registry=registry)
    rng = np.random.default_rng(1)
    ids = [serving.open_stream(rng.integers(1, 40, size=3),
                               max_new_tokens=4,
                               now=clock()) for _ in range(4)]
    while serving.has_pending():
        serving.step(clock())
        clock.advance(1e-3)
    for request_id in ids:
        serving.finish(request_id)
    snap = registry.snapshot()
    plans = snap["repro_scheduler_plans_total"]["series"][0]["value"]
    assert plans > 0
    admitted = snap["repro_slo_admitted_total"]["series"][0]["value"]
    assert admitted == 4                     # generous target: all pass


# -- HTTP exposition ----------------------------------------------------

def test_threaded_metrics_server_scrapes():
    registry = MetricsRegistry()
    registry.counter("repro_pings_total", "pings").inc(7)
    server = start_metrics_server(registry, port=0)
    try:
        port = server.server_address[1]
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics") as response:
            assert response.status == 200
            assert "version=0.0.4" in response.headers["Content-Type"]
            body = response.read().decode()
        assert "repro_pings_total 7" in body
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz") as response:
            assert response.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/nope")
        assert err.value.code == 404
    finally:
        server.shutdown()


def test_async_metrics_endpoint(snapshot):
    from repro.serve.aio import AsyncServingEngine

    async def scenario():
        registry = MetricsRegistry()
        core = WorkerTier.from_snapshot(
            snapshot, replicas=1,
            policy=BatchPolicy(max_batch_size=2, max_wait=0.0),
            registry=registry)
        async with AsyncServingEngine(core,
                                      registry=registry) as serving:
            endpoint = await serving.serve_metrics(port=0)
            result = await serving.open_stream(
                np.array([1, 2, 3]), max_new_tokens=2)
            assert result.ok
            body = await asyncio.to_thread(
                lambda: urllib.request.urlopen(endpoint.url).read())
        text = body.decode()
        assert 'repro_requests_terminal_total{engine="worker0",' \
               'reason="ok"} 1' in text
        return text

    asyncio.run(scenario())


def test_async_endpoint_requires_registry(snapshot):
    from repro.serve.aio import AsyncServingEngine

    async def scenario():
        core = WorkerTier.from_snapshot(
            snapshot, replicas=1,
            policy=BatchPolicy(max_batch_size=2, max_wait=0.0))
        async with AsyncServingEngine(core) as serving:
            with pytest.raises(ValueError):
                await serving.serve_metrics()

    asyncio.run(scenario())


# -- store + bench provenance ------------------------------------------

def test_store_events_publish(tmp_path):
    from repro.eval.store import WorkloadStore
    from repro.eval.workloads import QUICK, get_workload

    registry = MetricsRegistry()
    store = WorkloadStore(str(tmp_path / "store"), registry=registry)
    spec = get_workload("memn2n/Task-1")
    assert store.load(spec, QUICK) is None   # cold -> miss

    def events():
        return {row["labels"]["event"]: row["value"] for row in
                registry.snapshot()["repro_store_events_total"]["series"]}

    assert events()["miss"] == 1
    assert events()["hit"] == 0


def test_bench_provenance_recorded(tmp_path, monkeypatch):
    from repro.eval.artifacts import load_bench, record_bench

    monkeypatch.setenv("GITHUB_SHA", "cafe" * 10)
    path = record_bench("obs_probe", {"tok_s": 10.0},
                        directory=str(tmp_path))
    run = load_bench(path)["runs"][-1]
    provenance = run["provenance"]
    assert provenance["git_sha"] == "cafe" * 10
    assert provenance["kernel_backend"]
    assert provenance["python"].count(".") == 2


def test_artifacts_diff_cli(tmp_path, capsys):
    from repro.eval.artifacts import main, record_bench

    a = record_bench("probe_a", {"tok_s": 100.0, "p99": 0.5},
                     directory=str(tmp_path))
    b = record_bench("probe_b", {"tok_s": 150.0, "p99": 0.4},
                     directory=str(tmp_path))
    main(["diff", a, b])
    out = capsys.readouterr().out
    assert "tok_s" in out and "1.5" in out
    with pytest.raises(SystemExit):
        main(["diff", a, str(tmp_path / "missing.json")])


# ---------------------------------------------------------------------------
# fleet aggregation: merging worker snapshots and trace deltas
# ---------------------------------------------------------------------------

def test_merge_snapshot_replaces_series_and_rebuilds_histograms():
    """merge_snapshot folds a worker registry's snapshot in with
    replace-latest semantics, reconstructing the histogram overflow
    bucket (snapshots carry only the bounded buckets)."""
    worker = MetricsRegistry()
    worker.counter("jobs_total", "jobs", engine="worker0").inc(3)
    worker.gauge("depth", "queue depth", engine="worker0").set(7)
    hist = worker.histogram("lat", "latency",
                            buckets=(0.1, 1.0), engine="worker0")
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(99.0)                     # lands in +Inf overflow

    parent = MetricsRegistry()
    parent.counter("jobs_total", "jobs", engine="parent").inc(1)
    parent.merge_snapshot(worker.snapshot())
    # two merges are idempotent (replace, not add)
    parent.merge_snapshot(worker.snapshot())

    snap = parent.snapshot()
    jobs = {tuple(r["labels"].items()): r["value"]
            for r in snap["jobs_total"]["series"]}
    assert jobs[(("engine", "worker0"),)] == 3
    assert jobs[(("engine", "parent"),)] == 1    # untouched
    assert snap["depth"]["series"][0]["value"] == 7
    merged = parent.histogram("lat", "latency", buckets=(0.1, 1.0),
                              engine="worker0")
    assert merged.counts == [1, 1, 1]            # overflow rebuilt
    assert merged.count == 3
    assert merged.sum == pytest.approx(99.55)
    assert parent.merge_snapshot(worker.snapshot()) is None
    assert NULL_REGISTRY.merge_snapshot(worker.snapshot()) is None

    with pytest.raises(ValueError, match="cannot merge"):
        parent.merge_snapshot({"x": {"kind": "mystery", "help": "",
                                     "series": [{"labels": {},
                                                 "value": 1}]}})


def test_merge_events_remaps_pids_across_incremental_deltas():
    """merge_events translates a worker recorder's pid numbering into
    the parent's track table, carrying the mapping across deltas (the
    process_name metadata event only appears in the first one)."""
    from repro.obs import TraceRecorder

    worker = TraceRecorder()
    pid = worker.track("worker1")
    worker.instant("submit", 0.0, pid, id=1)
    first_delta = list(worker.events)
    worker.instant("finish", 1.0, pid, id=1)
    second_delta = worker.events[len(first_delta):]

    parent = TraceRecorder()
    parent.track("parent")                 # occupies the worker's pid
    mapping = parent.merge_events(first_delta)
    mapping = parent.merge_events(second_delta, mapping)

    remapped = parent.track("worker1")     # get-or-assign: stable
    assert mapping == {pid: remapped}
    assert remapped != pid                 # collision actually remapped
    merged = [e for e in parent.events
              if e.get("name") in ("submit", "finish")]
    assert [e["name"] for e in merged] == ["submit", "finish"]
    assert all(e["pid"] == remapped for e in merged)
    # pid 0 (no track) passes through unchanged
    parent.merge_events([{"name": "loose", "ph": "i", "ts": 0.0,
                          "pid": 0}])
    assert parent.events[-1]["pid"] == 0
