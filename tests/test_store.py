"""On-disk store + sharded sweep: round-trip fidelity, invalidation,
engine reconstruction, and serial/parallel equivalence (all at TINY
scale on the cheap MemN2N workloads)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.engine import PrunedInferenceEngine
from repro.data import batches
from repro.eval.runner import WorkloadCache, run_workload
from repro.eval.store import WorkloadStore
from repro.eval.sweep import run_sweep
from repro.eval.workloads import TINY, get_workload, spec_hash

SWEEP_WORKLOADS = ["memn2n/Task-1", "memn2n/Task-2",
                   "memn2n/Task-3", "memn2n/Task-4"]


@pytest.fixture(scope="module")
def task1_result():
    return run_workload(get_workload("memn2n/Task-1"), TINY)


def test_round_trip_is_exact(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    store = WorkloadStore(tmp_path / "store")
    store.save(task1_result)
    assert store.contains(spec, TINY)

    loaded = store.load(spec, TINY)
    assert loaded is not None
    assert loaded.baseline_metric == task1_result.baseline_metric
    assert loaded.pruned_metric == task1_result.pruned_metric
    assert loaded.metric_name == task1_result.metric_name
    np.testing.assert_array_equal(
        loaded.controller.threshold_values(),
        task1_result.controller.threshold_values())

    original_state = task1_result.model.state_dict()
    for name, weights in loaded.model.state_dict().items():
        np.testing.assert_array_equal(weights, original_state[name])

    assert ([(e.epoch, e.loss, e.sparsity, e.mean_threshold)
             for e in loaded.history.epochs]
            == [(e.epoch, e.loss, e.sparsity, e.mean_threshold)
                for e in task1_result.history.epochs])

    np.testing.assert_array_equal(
        loaded.pruning_report.pruned_per_layer,
        task1_result.pruning_report.pruned_per_layer)
    assert loaded.pruning_rate == task1_result.pruning_rate
    assert len(loaded.records) == len(task1_result.records)
    for got, expected in zip(loaded.records, task1_result.records):
        assert got.layer_index == expected.layer_index
        assert got.threshold == expected.threshold
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.pruned_mask, expected.pruned_mask)
        np.testing.assert_array_equal(got.queries, expected.queries)
        np.testing.assert_array_equal(got.keys, expected.keys)


def test_hyperparameter_change_invalidates(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    store = WorkloadStore(tmp_path / "store")
    store.save(task1_result)

    changed = replace(spec, l0_weight=spec.l0_weight * 2)
    assert spec_hash(changed) != spec_hash(spec)
    assert not store.contains(changed, TINY)
    assert store.load(changed, TINY) is None
    # the stale entry was deleted, not just skipped
    assert not store.contains(spec, TINY)


def test_cache_reads_through_store(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    store = WorkloadStore(tmp_path / "store")
    store.save(task1_result)

    cache = WorkloadCache(store)
    assert (spec, TINY) in cache          # disk tier counts as a hit
    first = cache.get(spec, TINY)
    assert cache.events == [(spec.name, "disk")]
    assert first.pruned_metric == task1_result.pruned_metric
    assert cache.get(spec, TINY) is first
    assert cache.events[-1] == (spec.name, "memory")
    assert cache.trained() == []


def test_engine_from_directory(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    engine = PrunedInferenceEngine(task1_result.model,
                                   task1_result.controller)
    directory = engine.save(str(tmp_path / "engine"))

    rebuilt = PrunedInferenceEngine.from_directory(directory)
    assert type(rebuilt.model) is type(task1_result.model)
    np.testing.assert_array_equal(
        rebuilt.controller.threshold_values(),
        task1_result.controller.threshold_values())
    batch = next(batches(spec.make_data(TINY).test, 16))
    np.testing.assert_array_equal(rebuilt.predict(batch),
                                  engine.predict(batch))


def test_parallel_sweep_matches_serial(tmp_path):
    serial = WorkloadStore(tmp_path / "serial")
    parallel = WorkloadStore(tmp_path / "parallel")

    serial_report = run_sweep(SWEEP_WORKLOADS, TINY, store=serial, jobs=1)
    parallel_report = run_sweep(SWEEP_WORKLOADS, TINY, store=parallel,
                                jobs=2)
    assert [o.status for o in serial_report.outcomes] == ["trained"] * 4
    assert sorted(o.workload for o in parallel_report.trained) \
        == sorted(SWEEP_WORKLOADS)

    for name in SWEEP_WORKLOADS:
        spec = get_workload(name)
        a = serial.load(spec, TINY)
        b = parallel.load(spec, TINY)
        assert a.baseline_metric == b.baseline_metric
        assert a.pruned_metric == b.pruned_metric
        assert a.pruning_rate == b.pruning_rate
        np.testing.assert_array_equal(a.controller.threshold_values(),
                                      b.controller.threshold_values())

    # resumability: drop one entry, rerun, only that task retrains
    parallel.invalidate(get_workload(SWEEP_WORKLOADS[0]), TINY)
    resumed = run_sweep(SWEEP_WORKLOADS, TINY, store=parallel, jobs=2)
    assert [o.workload for o in resumed.trained] == [SWEEP_WORKLOADS[0]]
    assert sorted(o.workload for o in resumed.cached) \
        == sorted(SWEEP_WORKLOADS[1:])
