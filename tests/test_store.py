"""On-disk store + sharded sweep: round-trip fidelity, invalidation,
engine reconstruction, and serial/parallel equivalence (all at TINY
scale on the cheap MemN2N workloads)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.engine import PrunedInferenceEngine
from repro.data import batches
from repro.eval.runner import WorkloadCache, run_workload
from repro.eval.store import WorkloadStore
from repro.eval.sweep import run_sweep
from repro.eval.workloads import TINY, get_workload, spec_hash

SWEEP_WORKLOADS = ["memn2n/Task-1", "memn2n/Task-2",
                   "memn2n/Task-3", "memn2n/Task-4"]


@pytest.fixture(scope="module")
def task1_result():
    return run_workload(get_workload("memn2n/Task-1"), TINY)


def test_round_trip_is_exact(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    store = WorkloadStore(tmp_path / "store")
    store.save(task1_result)
    assert store.contains(spec, TINY)

    loaded = store.load(spec, TINY)
    assert loaded is not None
    assert loaded.baseline_metric == task1_result.baseline_metric
    assert loaded.pruned_metric == task1_result.pruned_metric
    assert loaded.metric_name == task1_result.metric_name
    np.testing.assert_array_equal(
        loaded.controller.threshold_values(),
        task1_result.controller.threshold_values())

    original_state = task1_result.model.state_dict()
    for name, weights in loaded.model.state_dict().items():
        np.testing.assert_array_equal(weights, original_state[name])

    assert ([(e.epoch, e.loss, e.sparsity, e.mean_threshold)
             for e in loaded.history.epochs]
            == [(e.epoch, e.loss, e.sparsity, e.mean_threshold)
                for e in task1_result.history.epochs])

    np.testing.assert_array_equal(
        loaded.pruning_report.pruned_per_layer,
        task1_result.pruning_report.pruned_per_layer)
    assert loaded.pruning_rate == task1_result.pruning_rate
    assert len(loaded.records) == len(task1_result.records)
    for got, expected in zip(loaded.records, task1_result.records):
        assert got.layer_index == expected.layer_index
        assert got.threshold == expected.threshold
        np.testing.assert_array_equal(got.scores, expected.scores)
        np.testing.assert_array_equal(got.pruned_mask, expected.pruned_mask)
        np.testing.assert_array_equal(got.queries, expected.queries)
        np.testing.assert_array_equal(got.keys, expected.keys)


def test_hyperparameter_change_invalidates(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    store = WorkloadStore(tmp_path / "store")
    store.save(task1_result)

    changed = replace(spec, l0_weight=spec.l0_weight * 2)
    assert spec_hash(changed) != spec_hash(spec)
    assert not store.contains(changed, TINY)
    assert store.load(changed, TINY) is None
    # the stale entry was deleted, not just skipped
    assert not store.contains(spec, TINY)


def test_cache_reads_through_store(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    store = WorkloadStore(tmp_path / "store")
    store.save(task1_result)

    cache = WorkloadCache(store)
    assert (spec, TINY) in cache          # disk tier counts as a hit
    first = cache.get(spec, TINY)
    assert cache.events == [(spec.name, "disk")]
    assert first.pruned_metric == task1_result.pruned_metric
    assert cache.get(spec, TINY) is first
    assert cache.events[-1] == (spec.name, "memory")
    assert cache.trained() == []


def test_engine_from_directory(tmp_path, task1_result):
    spec = get_workload("memn2n/Task-1")
    engine = PrunedInferenceEngine(task1_result.model,
                                   task1_result.controller)
    directory = engine.save(str(tmp_path / "engine"))

    rebuilt = PrunedInferenceEngine.from_directory(directory)
    assert type(rebuilt.model) is type(task1_result.model)
    np.testing.assert_array_equal(
        rebuilt.controller.threshold_values(),
        task1_result.controller.threshold_values())
    batch = next(batches(spec.make_data(TINY).test, 16))
    np.testing.assert_array_equal(rebuilt.predict(batch),
                                  engine.predict(batch))


def test_verify_clean_store_is_ok(tmp_path, task1_result):
    store = WorkloadStore(tmp_path / "store")
    store.save(task1_result)
    outcomes = store.verify()
    assert [o.status for o in outcomes] == ["ok"]
    assert not any(o.damaged for o in outcomes)


def test_verify_detects_corrupt_weights(tmp_path, task1_result):
    import os

    spec = get_workload("memn2n/Task-1")
    store = WorkloadStore(tmp_path / "store")
    directory = store.save(task1_result)

    weights = os.path.join(directory, "weights.npz")
    with open(weights, "r+b") as fh:        # flip one byte mid-file
        fh.seek(os.path.getsize(weights) // 2)
        byte = fh.read(1)
        fh.seek(-1, 1)
        fh.write(bytes([byte[0] ^ 0xFF]))

    outcomes = store.verify()
    assert [o.status for o in outcomes] == ["corrupt"]
    assert outcomes[0].damaged
    assert "digest" in outcomes[0].detail
    # verify never mutates: the entry still exists (contains() only
    # checks freshness, not integrity)
    assert store.contains(spec, TINY)


def test_verify_detects_missing_weights_and_stale_hash(tmp_path,
                                                       task1_result):
    import json
    import os

    store = WorkloadStore(tmp_path / "store")
    first = store.save(task1_result)
    os.remove(os.path.join(first, "weights.npz"))
    assert [o.status for o in store.verify()] == ["corrupt"]

    # re-save, then simulate a hyperparameter drift by rewriting the
    # recorded spec hash (what a registry change would look like)
    second = store.save(task1_result)
    entry_path = os.path.join(second, "entry.json")
    with open(entry_path) as fh:
        entry = json.load(fh)
    entry["spec_hash"] = "0" * 16
    with open(entry_path, "w") as fh:
        json.dump(entry, fh)
    outcomes = store.verify()
    assert [o.status for o in outcomes] == ["stale"]
    assert not outcomes[0].damaged          # a sweep would retrain it


def test_verify_detects_scale_drift(tmp_path, task1_result):
    import json
    import os

    store = WorkloadStore(tmp_path / "store")
    directory = store.save(task1_result)
    entry_path = os.path.join(directory, "entry.json")
    with open(entry_path) as fh:
        entry = json.load(fh)
    entry["scale"]["train_size"] += 1       # TINY's definition "drifted"
    with open(entry_path, "w") as fh:
        json.dump(entry, fh)

    outcomes = store.verify()
    assert [o.status for o in outcomes] == ["stale"]
    assert "scale" in outcomes[0].detail
    # verify agrees with contains(): the next sweep would retrain it
    assert not store.contains(get_workload("memn2n/Task-1"), TINY)


def test_verify_cli(tmp_path, task1_result, capsys):
    import os

    from repro.eval.sweep import main as sweep_main

    store = WorkloadStore(tmp_path / "store")
    directory = store.save(task1_result)

    assert sweep_main(["--cache-dir", str(tmp_path / "store"),
                       "--verify"]) == 0
    out = capsys.readouterr().out
    assert "[ok]" in out and "1 ok" in out

    os.remove(os.path.join(directory, "weights.npz"))
    assert sweep_main(["--cache-dir", str(tmp_path / "store"),
                       "--verify"]) == 1
    out = capsys.readouterr().out
    assert "[corrupt]" in out and "1 corrupt" in out


def test_parallel_sweep_matches_serial(tmp_path):
    serial = WorkloadStore(tmp_path / "serial")
    parallel = WorkloadStore(tmp_path / "parallel")

    serial_report = run_sweep(SWEEP_WORKLOADS, TINY, store=serial, jobs=1)
    parallel_report = run_sweep(SWEEP_WORKLOADS, TINY, store=parallel,
                                jobs=2)
    assert [o.status for o in serial_report.outcomes] == ["trained"] * 4
    assert sorted(o.workload for o in parallel_report.trained) \
        == sorted(SWEEP_WORKLOADS)

    for name in SWEEP_WORKLOADS:
        spec = get_workload(name)
        a = serial.load(spec, TINY)
        b = parallel.load(spec, TINY)
        assert a.baseline_metric == b.baseline_metric
        assert a.pruned_metric == b.pruned_metric
        assert a.pruning_rate == b.pruning_rate
        np.testing.assert_array_equal(a.controller.threshold_values(),
                                      b.controller.threshold_values())

    # resumability: drop one entry, rerun, only that task retrains
    parallel.invalidate(get_workload(SWEEP_WORKLOADS[0]), TINY)
    resumed = run_sweep(SWEEP_WORKLOADS, TINY, store=parallel, jobs=2)
    assert [o.workload for o in resumed.trained] == [SWEEP_WORKLOADS[0]]
    assert sorted(o.workload for o in resumed.cached) \
        == sorted(SWEEP_WORKLOADS[1:])


def test_evict_lru_respects_budget_and_protection(tmp_path):
    """Size-bounded eviction drops least-recently-saved entries first
    and never touches protected (touched-this-run) keys."""
    import json
    import os

    store = WorkloadStore(tmp_path / "store")
    run_sweep(SWEEP_WORKLOADS[:3], TINY, store=store, jobs=1)
    entries = store.entries()
    assert len(entries) == 3
    # force a deterministic LRU order regardless of training speed
    for age, entry in enumerate(entries):
        path = os.path.join(store.root, entry["key"], "entry.json")
        with open(path) as fh:
            data = json.load(fh)
        data["saved_at"] = 1000.0 + age
        with open(path, "w") as fh:
            json.dump(data, fh)
    keys = [e["key"] for e in store.entries()]
    sizes = {k: store.entry_bytes(k) for k in keys}
    assert store.size_bytes() == sum(sizes.values())

    # budget that only fits the two newest entries -> oldest evicted
    budget = sizes[keys[1]] + sizes[keys[2]]
    evicted = store.evict_lru(budget)
    assert evicted == [keys[0]]
    assert sorted(e["key"] for e in store.entries()) == sorted(keys[1:])

    # a protected oldest entry survives even a zero budget
    evicted = store.evict_lru(0, protect={keys[1]})
    assert evicted == [keys[2]]
    assert [e["key"] for e in store.entries()] == [keys[1]]


def test_sweep_cli_max_cache_bytes_protects_current_run(tmp_path):
    """`--max-cache-bytes 1` after a sweep keeps every entry the run
    touched (the working set) and evicts only untouched history."""
    from repro.eval.sweep import main as sweep_main

    root = str(tmp_path / "store")
    assert sweep_main(["--workloads", SWEEP_WORKLOADS[0],
                       "--scale", "tiny", "--cache-dir", root]) == 0
    store = WorkloadStore(root)
    old_key = store.entries()[0]["key"]
    # second run touches only Task-2; a 1-byte budget must evict the
    # stale Task-1 entry but keep the just-trained Task-2 entry
    assert sweep_main(["--workloads", SWEEP_WORKLOADS[1],
                       "--scale", "tiny", "--cache-dir", root,
                       "--max-cache-bytes", "1"]) == 0
    keys = [e["key"] for e in store.entries()]
    assert old_key not in keys and len(keys) == 1

    # standalone eviction pass (no workloads): nothing protected
    assert sweep_main(["--cache-dir", root,
                       "--max-cache-bytes", "0"]) == 0
    assert store.entries() == []
