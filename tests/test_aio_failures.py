"""AsyncServingEngine failure fan-out pins.

Two distinct error paths reach awaiting clients and must stay
separate: a *scheduler-level* blanket failure (``step()`` itself
raises — a bug, not a model fault) fails every waiting future exactly
once and never kills the runner task; a *per-request* failure (a
contained forward fault surfacing through ``finish()``) reaches only
that request's future while its batch-mates complete normally.  The
deadline/cancellation paths ride the same fan-out."""

import asyncio

import numpy as np
import pytest

from repro.serve import (AsyncServingEngine, BatchPolicy,
                         DeadlineExceeded, Fault, FaultPlan,
                         InjectedKernelError, ServingEngine)
from tests.test_serving import make_classifier_engine, make_lm_engine


def make_async_core(max_batch_size=4, max_wait=0.003, generative=False,
                    **kwargs):
    engine = make_lm_engine(0) if generative else make_classifier_engine(0)
    return ServingEngine(
        engine, BatchPolicy(max_batch_size=max_batch_size,
                            max_wait=max_wait), **kwargs)


def test_blanket_scheduler_failure_fails_all_waiting_exactly_once():
    serving = make_async_core()
    boom = RuntimeError("scheduler bug")

    def broken_step(now=None, budget=None):
        raise boom

    serving.step = broken_step

    async def main():
        async with AsyncServingEngine(serving) as front:
            results = await asyncio.gather(
                front.submit(np.arange(1, 4)),
                front.submit(np.arange(1, 5)),
                front.submit(np.arange(1, 6)),
                return_exceptions=True)
            return results, dict(front._futures)

    results, leftover = asyncio.run(main())
    # every waiting client saw the one scheduler error, exactly once
    assert all(result is boom for result in results)
    assert leftover == {}                # no future left dangling


def test_blanket_failure_with_live_streams_does_not_hang_close():
    serving = make_async_core(generative=True)
    original_step = serving.step
    state = {"calls": 0}

    def failing_after_prefill(now=None, budget=None):
        state["calls"] += 1
        if state["calls"] >= 2:          # let prefill run, then break
            raise RuntimeError("scheduler died mid-decode")
        return original_step(now)

    serving.step = failing_after_prefill

    async def main():
        async with AsyncServingEngine(serving) as front:
            return await asyncio.gather(
                front.open_stream(np.arange(1, 5), 6),
                front.open_stream(np.arange(1, 4), 6),
                return_exceptions=True)

    results = asyncio.run(main())        # close() must not spin forever
    assert all(isinstance(result, RuntimeError) for result in results)


def test_per_request_failure_reaches_only_that_future():
    plan = FaultPlan([Fault(kind="forward", at=0)])
    serving = make_async_core(max_batch_size=1, faults=plan)

    async def main():
        async with AsyncServingEngine(serving) as front:
            return await asyncio.gather(
                front.submit(np.arange(1, 6)),
                front.submit(np.arange(1, 6)),
                front.submit(np.arange(1, 6)),
                return_exceptions=True)

    first, second, third = asyncio.run(main())
    # batch #0 (the first request, max_batch_size=1) hit the injected
    # fault; its batch-mates-in-spirit were separate batches and landed
    assert isinstance(first, InjectedKernelError)
    assert second.ok and third.ok
    assert second.prediction == third.prediction


def test_async_deadline_exceeded_raises_to_client():
    serving = make_async_core(max_wait=0.02)

    async def main():
        async with AsyncServingEngine(serving) as front:
            with pytest.raises(DeadlineExceeded):
                await front.submit(np.arange(1, 6), ttl=0.001)
            # the engine survives: later traffic completes normally
            return await front.submit(np.arange(1, 6))

    result = asyncio.run(main())
    assert result.ok
    assert serving.stats.expired == 1


def test_cancelling_awaiting_task_cancels_in_engine():
    serving = make_async_core(max_wait=0.05)

    async def main():
        async with AsyncServingEngine(serving) as front:
            task = asyncio.create_task(front.submit(np.arange(1, 6)))
            await asyncio.sleep(0.001)   # let it enqueue + register
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # cancel() by id is also exposed on the front door
            request_id = serving.submit(np.arange(1, 4))
            assert front.cancel(request_id) is True
            return await front.submit(np.arange(1, 6))

    result = asyncio.run(main())
    assert result.ok
    assert serving.stats.cancelled == 2
    assert not serving.has_pending()
