"""Continuous-batching scheduler: per-stream bit-equality pins.

A stream served by the continuous scheduler — admitted into a
partially-filled decode batch, shuffled across KV slots, preempted to
swapped-out state and resumed — must be *bit-identical* (tokens,
logits, pruning masks, hardware estimates) to the same stream served
alone, and to the round-based scheduler, under staggered arrivals,
preemption/resume, and multi-model routing."""

import numpy as np
import pytest

from repro.serve import (BatchPolicy, KVSlotBuffer, ModelRouter,
                         SchedulerConfig, ServingEngine, StepPlanner,
                         StreamState)
from tests.test_serving import (assert_records_identical,
                                make_classifier_engine, make_lm_engine,
                                serve_classify, serve_streams)


def make_continuous(engine, max_batch_size, preempt_after=None,
                    pressure=1, **policy_kwargs):
    clock = [0.0]
    serving = ServingEngine(
        engine, BatchPolicy(max_batch_size=max_batch_size, max_wait=0.0,
                            **policy_kwargs),
        estimate_hardware=True, clock=lambda: clock[0],
        continuous=True, preempt_after=preempt_after, pressure=pressure)
    return serving, clock


def run_staggered(serving, prompts, max_new_tokens, arrive_every=1):
    """Open one stream every ``arrive_every`` steps, stepping the
    engine between arrivals — mixed arrival traffic, not a burst."""
    ids = []
    for prompt in prompts:
        ids.append(serving.open_stream(prompt, max_new_tokens))
        for _ in range(arrive_every):
            serving.step()
    guard = 0
    while serving.has_pending():
        serving.step()
        guard += 1
        assert guard < 10_000, "continuous scheduler failed to drain"
    return [serving.finish(i) for i in ids]


def assert_streams_identical(got, expected):
    for a, b in zip(got, expected):
        np.testing.assert_array_equal(a.tokens, b.tokens)
        np.testing.assert_array_equal(a.logits, b.logits)
        assert_records_identical(a.records, b.records)
        assert a.hardware == b.hardware


# ---------------------------------------------------------------------------
# continuous vs solo / round-based equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1])
def test_continuous_staggered_bit_identical_to_solo(seed):
    engine = make_lm_engine(seed)
    rng = np.random.default_rng(seed)
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(1, 9, size=8)]
    solo, _ = serve_streams(engine, prompts, 6, max_batch_size=1)
    serving, _ = make_continuous(engine, max_batch_size=3)
    got = run_staggered(serving, prompts, 6)
    assert_streams_identical(got, solo)
    # the point of continuous batching: arrivals joined a live batch
    assert serving.stats.admitted == len(prompts)
    assert serving.stats.max_batch_size >= 2


def test_continuous_matches_round_based_per_stream():
    engine = make_lm_engine(2)
    rng = np.random.default_rng(2)
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(1, 9, size=7)]
    round_based, _ = serve_streams(engine, prompts, 5, max_batch_size=4)
    serving, _ = make_continuous(engine, max_batch_size=4)
    got = run_staggered(serving, prompts, 5, arrive_every=2)
    assert_streams_identical(got, round_based)


def test_preemption_and_resume_stay_bit_identical():
    """More streams than slots + an aggressive time slice: streams are
    swapped out under pressure and resumed later, and nobody's bits
    change."""
    engine = make_lm_engine(1)
    rng = np.random.default_rng(7)
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(1, 9, size=9)]
    solo, _ = serve_streams(engine, prompts, 7, max_batch_size=1)
    serving, _ = make_continuous(engine, max_batch_size=3,
                                 preempt_after=2)
    got = run_staggered(serving, prompts, 7)
    assert_streams_identical(got, solo)
    stats = serving.stats
    assert stats.preemptions > 0              # pressure really preempted
    assert stats.resumes == stats.preemptions  # and everyone came back
    assert stats.completed == len(prompts)


def test_preempted_stream_resumes_and_completes():
    engine = make_lm_engine(3)
    rng = np.random.default_rng(3)
    serving, _ = make_continuous(engine, max_batch_size=1,
                                 preempt_after=1)
    first = serving.open_stream(rng.integers(1, 40, size=4), 8)
    serving.step()                            # first occupies the slot
    second = serving.open_stream(rng.integers(1, 40, size=3), 8)
    stream = serving._streams[first]
    preempted_at = None
    for tick in range(64):
        serving.step()
        if stream.swapped and preempted_at is None:
            preempted_at = tick               # swapped out, slot-less
        if not serving.has_pending():
            break
    assert preempted_at is not None
    assert stream.preemptions >= 1
    assert serving.finish(first).tokens.shape[0] == 4 + 8
    assert serving.finish(second).tokens.shape[0] == 3 + 8


def test_mixed_classify_and_streams_continuous():
    """Classification batches flush alongside the continuous stream
    scheduler without perturbing either path's bits."""
    engine = make_lm_engine(0)
    classifier = make_classifier_engine(0)
    rng = np.random.default_rng(11)
    requests = [rng.integers(0, 50, size=int(n))
                for n in rng.integers(1, 25, size=6)]
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(1, 9, size=4)]
    solo_cls, _ = serve_classify(classifier, requests, max_batch_size=1)
    solo_lm, _ = serve_streams(engine, prompts, 5, max_batch_size=1)

    cls_serving, _ = make_continuous(classifier, max_batch_size=3)
    lm_serving, _ = make_continuous(engine, max_batch_size=3)
    cls_ids = [cls_serving.submit(r) for r in requests]
    lm_results = run_staggered(lm_serving, prompts, 5)
    cls_serving.drain()
    cls_results = [cls_serving.finish(i) for i in cls_ids]
    assert_streams_identical(lm_results, solo_lm)
    for got, expected in zip(cls_results, solo_cls):
        np.testing.assert_array_equal(got.logits, expected.logits)
        assert got.hardware == expected.hardware


# ---------------------------------------------------------------------------
# multi-model routing
# ---------------------------------------------------------------------------

def test_router_bit_identical_under_shared_budget():
    lm_a, lm_b = make_lm_engine(0), make_lm_engine(5)
    rng = np.random.default_rng(13)
    prompts_a = [rng.integers(1, 40, size=int(n))
                 for n in rng.integers(1, 9, size=5)]
    prompts_b = [rng.integers(1, 40, size=int(n))
                 for n in rng.integers(1, 9, size=5)]
    solo_a, _ = serve_streams(lm_a, prompts_a, 5, max_batch_size=1)
    solo_b, _ = serve_streams(lm_b, prompts_b, 5, max_batch_size=1)

    clock = [0.0]
    router = ModelRouter(
        {"a": ServingEngine(lm_a, BatchPolicy(max_batch_size=4,
                                              max_wait=0.0),
                            estimate_hardware=True,
                            clock=lambda: clock[0], continuous=True,
                            preempt_after=3),
         "b": ServingEngine(lm_b, BatchPolicy(max_batch_size=4,
                                              max_wait=0.0),
                            estimate_hardware=True,
                            clock=lambda: clock[0], continuous=True,
                            preempt_after=3)},
        step_budget=4, clock=lambda: clock[0])
    ids_a = [router.open_stream(p, 5, model="a") for p in prompts_a]
    ids_b = [router.open_stream(p, 5, model="b") for p in prompts_b]
    router.drain()
    assert_streams_identical([router.finish(i) for i in ids_a], solo_a)
    assert_streams_identical([router.finish(i) for i in ids_b], solo_b)
    # the shared budget really constrained each engine's step batch
    assert all(s.max_batch_size <= 4 for s in router.stats.values())


def test_router_routes_by_model_and_rejects_unknown():
    router = ModelRouter({"lm": ServingEngine(
        make_lm_engine(0), BatchPolicy(max_batch_size=2, max_wait=0.0),
        continuous=True)})
    rng = np.random.default_rng(0)
    with pytest.raises(KeyError, match="unknown model"):
        router.open_stream(rng.integers(1, 40, size=3), 2, model="nope")
    # single mounted model: model= may be omitted
    stream_id = router.open_stream(rng.integers(1, 40, size=3), 2)
    router.drain()
    assert router.finish(stream_id).tokens.shape[0] == 5
    multi = ModelRouter({
        "x": ServingEngine(make_lm_engine(0),
                           BatchPolicy(max_batch_size=2, max_wait=0.0)),
        "y": ServingEngine(make_lm_engine(1),
                           BatchPolicy(max_batch_size=2, max_wait=0.0))})
    with pytest.raises(ValueError, match="pass model="):
        multi.open_stream(rng.integers(1, 40, size=3), 2)


# ---------------------------------------------------------------------------
# scheduler / KV-slot internals
# ---------------------------------------------------------------------------

def _stream(stream_id, steps_since_admit=0):
    return StreamState(stream_id=stream_id,
                       tokens=np.array([1], dtype=np.int64),
                       max_new_tokens=4, arrival=0.0,
                       steps_since_admit=steps_since_admit)


def test_planner_admits_into_free_slots_only():
    planner = StepPlanner(SchedulerConfig(max_slots=4))
    plan = planner.plan([_stream(0), _stream(1)], waiting=5)
    assert plan.admit_slots == 2 and not plan.preempt
    assert planner.plan([], waiting=1).admit_slots == 1
    assert planner.plan([_stream(i) for i in range(4)],
                        waiting=3).admit_slots == 0


def test_planner_preempts_longest_running_under_pressure():
    planner = StepPlanner(SchedulerConfig(max_slots=2, preempt_after=3))
    running = [_stream(0, steps_since_admit=5),
               _stream(1, steps_since_admit=4)]
    plan = planner.plan(running, waiting=1)
    assert [s.stream_id for s in plan.preempt] == [0]
    assert plan.admit_slots == 1
    # below the time slice: nobody preempted, nobody admitted
    young = [_stream(0, steps_since_admit=1),
             _stream(1, steps_since_admit=2)]
    idle = planner.plan(young, waiting=1)
    assert not idle.preempt and idle.admit_slots == 0
    # no pressure threshold reached -> residents keep their slots
    relaxed = StepPlanner(SchedulerConfig(max_slots=2, preempt_after=3,
                                          pressure=2))
    assert not relaxed.plan(running, waiting=1).preempt


def test_planner_budget_shrink_forces_preemption():
    planner = StepPlanner(SchedulerConfig(max_slots=4))
    running = [_stream(0, 9), _stream(1, 2), _stream(2, 7)]
    plan = planner.plan(running, waiting=0, budget=2)
    assert [s.stream_id for s in plan.preempt] == [0]
    assert plan.budget == 2 and plan.admit_slots == 0


def test_kv_slot_buffer_admit_evict_swap_round_trip():
    rng = np.random.default_rng(0)
    buffer = KVSlotBuffer(slots=3, num_blocks=2, heads=2, head_dim=4,
                          capacity=8)
    streams, originals = [], []
    for i, size in enumerate((3, 5, 2)):
        stream = _stream(i)
        stream.kv_capacity = 8
        caches = [{"k": rng.standard_normal((2, size, 4)),
                   "v": rng.standard_normal((2, size, 4))}
                  for _ in range(2)]
        buffer.admit(stream, caches)
        streams.append(stream)
        originals.append(caches)
    assert [s.slot for s in streams] == [0, 1, 2]

    # evicting slot 0 moves the last stream into the hole, bytes intact
    buffer.evict(streams[0])
    assert streams[2].slot == 0 and streams[1].slot == 1
    batch = buffer.batch()
    for block in range(2):
        np.testing.assert_array_equal(
            batch[block]["k"][0, :, :2], originals[2][block]["k"])
        np.testing.assert_array_equal(
            batch[block]["k"][1, :, :5], originals[1][block]["k"])
        # zero padding beyond each stream's rows is preserved
        assert not batch[block]["k"][0, :, 2:].any()

    # swap-out / re-admit round-trips the exact bytes
    buffer.swap_out(streams[1])
    assert streams[1].swapped and streams[1].preemptions == 1
    caches, streams[1].caches = streams[1].caches, None
    for block in range(2):
        np.testing.assert_array_equal(caches[block]["v"],
                                      originals[1][block]["v"])
    buffer.admit(streams[1], caches)
    batch = buffer.batch()
    for block in range(2):
        np.testing.assert_array_equal(
            batch[block]["v"][streams[1].slot, :, :5],
            originals[1][block]["v"])


def test_per_stream_capacity_guard_raises():
    from repro.models import LMConfig, TransformerLM
    model = TransformerLM(LMConfig(vocab_size=16, max_seq_len=8, dim=8,
                                   num_heads=2, num_layers=1))
    buffer = KVSlotBuffer(slots=1, num_blocks=1, heads=2, head_dim=4,
                          capacity=8)
    stream = _stream(0)
    stream.kv_capacity = 2                  # request-derived budget
    buffer.admit(stream, [{"k": np.zeros((2, 2, 4)),
                           "v": np.zeros((2, 2, 4))}])
    with pytest.raises(ValueError, match="per-stream KV capacity"):
        model.decode_step(np.array([1]), buffer.batch())


def test_finish_releases_slot_and_waiting_stream():
    engine = make_lm_engine(0)
    serving, _ = make_continuous(engine, max_batch_size=1)
    rng = np.random.default_rng(1)
    running = serving.open_stream(rng.integers(1, 40, size=3), 10)
    serving.step()
    waiting = serving.open_stream(rng.integers(1, 40, size=3), 10)
    assert serving._streams[running].slot is not None
    serving.finish(running)                 # client hangs up mid-decode
    assert len(serving._slots) == 0
    serving.finish(waiting)                 # hangs up before admission
    assert serving._batcher.stream_count() == 0
    assert not serving.has_pending()
