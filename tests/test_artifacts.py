"""Versioned benchmark artifacts: record_bench / load_bench /
diff_bench round-trips, the REPRO_BENCH_DIR layout CI relies on, and
the A/B diff helper the ablation tooling builds on."""

import json
import os

import numpy as np
import pytest

from repro.eval import diff_bench, load_bench, record_bench
from repro.eval.artifacts import BENCH_ENV, _BENCH_SCHEMA


def test_record_bench_is_off_without_directory(monkeypatch):
    monkeypatch.delenv(BENCH_ENV, raising=False)
    assert record_bench("noop", {"x": 1}) is None


def test_record_bench_roundtrip(tmp_path):
    metrics = {"tok_s": 123.4, "ttft_p99": 0.01, "steps": 7,
               "reasons": {"ok": 5}, "array": np.arange(3),
               "np_float": np.float64(2.5)}
    path = record_bench("unit", metrics, context={"seed": 0},
                        directory=str(tmp_path))
    assert os.path.basename(path) == "BENCH_unit.json"
    payload = load_bench(path)
    assert payload["schema"] == _BENCH_SCHEMA == 1
    assert payload["name"] == "unit"
    run = payload["runs"][-1]
    assert run["metrics"]["tok_s"] == 123.4
    assert run["metrics"]["array"] == [0, 1, 2]    # np -> jsonable
    assert run["metrics"]["np_float"] == 2.5
    assert run["context"] == {"seed": 0}


def test_record_bench_env_layout(tmp_path, monkeypatch):
    # CI sets REPRO_BENCH_DIR and uploads BENCH_*.json from it
    monkeypatch.setenv(BENCH_ENV, str(tmp_path / "bench"))
    path = record_bench("serving_slo", {"tok_s": 1.0})
    assert path == str(tmp_path / "bench" / "BENCH_serving_slo.json")
    assert os.path.exists(path)


def test_record_bench_accumulates_runs(tmp_path):
    for step in range(3):
        path = record_bench("acc", {"step": step},
                            directory=str(tmp_path))
    payload = load_bench(path)
    assert [run["metrics"]["step"] for run in payload["runs"]] == [0, 1, 2]


def test_record_bench_recovers_from_corrupt_artifact(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text("{ not json")
    out = record_bench("bad", {"x": 1}, directory=str(tmp_path))
    payload = load_bench(out)
    assert len(payload["runs"]) == 1          # started fresh, no crash


def test_record_bench_discards_unknown_schema(tmp_path):
    path = tmp_path / "BENCH_old.json"
    path.write_text(json.dumps({"schema": 0, "name": "old",
                                "runs": [{"metrics": {}}]}))
    out = record_bench("old", {"x": 1}, directory=str(tmp_path))
    payload = load_bench(out)
    assert payload["schema"] == _BENCH_SCHEMA
    assert len(payload["runs"]) == 1


def test_load_bench_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({"schema": 99, "runs": []}))
    with pytest.raises(ValueError, match="schema"):
        load_bench(str(path))
    path.write_text(json.dumps({"schema": 1, "runs": "nope"}))
    with pytest.raises(ValueError, match="runs"):
        load_bench(str(path))


def test_diff_bench_deltas_and_ratios(tmp_path):
    base = load_bench(record_bench(
        "a", {"tok_s": 100.0, "ttft_p99": 0.02, "only_base": 1,
              "label": "x", "flag": True}, directory=str(tmp_path)))
    cand = load_bench(record_bench(
        "b", {"tok_s": 150.0, "ttft_p99": 0.01, "only_cand": 2,
              "label": "y", "flag": False}, directory=str(tmp_path)))
    diff = diff_bench(base, cand)
    assert diff["tok_s"]["delta"] == pytest.approx(50.0)
    assert diff["tok_s"]["ratio"] == pytest.approx(1.5)
    assert diff["ttft_p99"]["ratio"] == pytest.approx(0.5)
    # missing on one side, or non-numeric (bools excluded): no math
    assert diff["only_base"]["delta"] is None
    assert diff["only_cand"]["candidate"] == 2
    assert diff["label"]["delta"] is None
    assert diff["flag"]["ratio"] is None


def test_diff_bench_selects_run_and_rejects_empty(tmp_path):
    for tok_s in (1.0, 2.0):
        path = record_bench("multi", {"tok_s": tok_s},
                            directory=str(tmp_path))
    payload = load_bench(path)
    first = diff_bench(payload, payload, run=0)
    assert first["tok_s"]["baseline"] == 1.0
    last = diff_bench(payload, payload)
    assert last["tok_s"]["baseline"] == 2.0
    with pytest.raises(ValueError, match="no runs"):
        diff_bench({"name": "empty", "runs": []}, payload)
