"""Bit-serial kernel unit tests: the exactness invariant and the
scalar/vectorized agreement (mirrors examples/bitserial_walkthrough.py)."""

import numpy as np
import pytest

from repro.hw.bitserial import (bitserial_cycles_matrix,
                                bitserial_dot_product, serial_cycle_count)


def test_serial_cycle_count():
    assert serial_cycle_count(12, 2) == 6
    assert serial_cycle_count(12, 12) == 1
    assert serial_cycle_count(4, 1) == 4
    assert serial_cycle_count(11, 2) == 6


def test_early_termination_never_disagrees_with_exact():
    """Property: with the conservative margin, the early-terminated
    prune decision equals the exact comparison on every sample."""
    rng = np.random.default_rng(7)
    for _ in range(500):
        q = rng.integers(-2047, 2048, 12)
        k = rng.integers(-1023, 1024, 12)
        threshold = float(rng.integers(-20_000, 40_000))
        trace = bitserial_dot_product(q, k, threshold, magnitude_bits=10,
                                      group=2)
        assert trace.pruned == (trace.exact_value < threshold)
        if trace.early_terminated:
            assert trace.exact_value < threshold
            assert trace.cycles < serial_cycle_count(11, 2)


def test_matrix_kernel_matches_scalar_trace():
    rng = np.random.default_rng(3)
    q = rng.integers(-2047, 2048, (12, 16))
    k = rng.integers(-2047, 2048, (10, 16))
    threshold = 50_000.0
    cycles, pruned, scores = bitserial_cycles_matrix(q, k, threshold, 11, 2)
    np.testing.assert_array_equal(scores, (q @ k.T).astype(np.float64))
    for i in range(q.shape[0]):
        for j in range(k.shape[0]):
            trace = bitserial_dot_product(q[i], k[j], threshold,
                                          magnitude_bits=11, group=2)
            assert cycles[i, j] == trace.cycles, (i, j)
            assert pruned[i, j] == trace.pruned, (i, j)


def test_matrix_kernel_prune_decision_is_exact():
    rng = np.random.default_rng(11)
    q = rng.integers(-2047, 2048, (32, 32))
    k = rng.integers(-2047, 2048, (32, 32))
    threshold = 80_000.0
    _, pruned, scores = bitserial_cycles_matrix(q, k, threshold, 11, 2)
    np.testing.assert_array_equal(pruned, (q @ k.T) < threshold)


def test_margin_scale_trades_cycles_for_wrong_prunes():
    rng = np.random.default_rng(5)
    q = rng.integers(-2047, 2048, (24, 32))
    k = rng.integers(-2047, 2048, (24, 32))
    threshold = 60_000.0
    exact = (q @ k.T) < threshold
    totals = {}
    wrong = {}
    for scale in (1.0, 0.5, 0.0):
        cycles, pruned, _ = bitserial_cycles_matrix(
            q, k, threshold, 11, 2, margin_scale=scale)
        totals[scale] = int(cycles.sum())
        wrong[scale] = int((pruned & ~exact).sum())
    assert wrong[1.0] == 0
    assert totals[0.0] <= totals[0.5] <= totals[1.0]
    assert wrong[0.0] >= wrong[0.5] >= wrong[1.0]


def test_valid_mask_zeroes_invalid_cycles():
    rng = np.random.default_rng(9)
    q = rng.integers(-100, 100, (4, 8))
    k = rng.integers(-100, 100, (6, 8))
    valid = np.zeros((4, 6), dtype=bool)
    valid[:2, :3] = True
    cycles, _, _ = bitserial_cycles_matrix(q, k, 0.0, 6, 2, valid=valid)
    assert (cycles[~valid] == 0).all()
    assert (cycles[valid] > 0).all()


def test_paper_worked_example():
    trace = bitserial_dot_product(
        np.array([9, -5, 7, -2]), np.array([1, -7, -4, 2]), 40,
        magnitude_bits=3, group=1)
    assert trace.cycles == 2
    assert trace.early_terminated and trace.pruned
    assert trace.exact_value == 12
    assert trace.history[0].partial_sum == 0.0
    assert trace.history[0].margin == pytest.approx(98.0)
    assert trace.history[1].partial_sum == -8.0
    assert trace.history[1].margin == 42.0
