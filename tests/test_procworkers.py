"""Multi-process worker tier pins.

The headline invariant carries across the process boundary: replaying
the same seeded trace through a ``ProcessWorkerTier`` yields
per-request outputs, masks, hardware estimates *and* latency marks
bit-identical to the in-process ``WorkerTier`` — and to serving every
request alone on a solo engine rebuilt from the same snapshot.
Around it: worker-kill rerouting with zero KV-slot leaks, clean
shutdown with no orphan processes, and the memory-mapped snapshot
loading the workers share pages through.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core import PrunedInferenceEngine
from repro.serve import (BatchPolicy, ProcessWorkerTier, REASON_CANCELLED,
                         REASON_ERROR, REASON_OK, ServingEngine,
                         WorkerTier)
from repro.serve.loadgen import TraceSpec, VirtualClock, replay_trace
from tests.test_serving import assert_records_identical, make_lm_engine

VOCAB = 40   # make_lm_engine's vocabulary

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="ProcessWorkerTier needs fork()")


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    directory = tmp_path_factory.mktemp("engine")
    make_lm_engine(0).save(str(directory))
    return str(directory)


def make_proc_tier(snapshot, replicas=2, **kwargs):
    clock = VirtualClock()
    kwargs.setdefault("continuous", True)
    kwargs.setdefault("step_token_budget", 16)
    tier = ProcessWorkerTier.from_snapshot(
        snapshot, replicas=replicas,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=clock, estimate_hardware=True, **kwargs)
    return tier, clock


def make_inproc_tier(snapshot, replicas=2, **kwargs):
    clock = VirtualClock()
    kwargs.setdefault("continuous", True)
    kwargs.setdefault("step_token_budget", 16)
    tier = WorkerTier.from_snapshot(
        snapshot, replicas=replicas,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=clock, estimate_hardware=True, **kwargs)
    return tier, clock


def make_solo(snapshot):
    solo_clock = [0.0]
    return ServingEngine(
        PrunedInferenceEngine.from_directory(snapshot),
        BatchPolicy(max_batch_size=1, max_wait=0.0),
        estimate_hardware=True, clock=lambda: solo_clock[0])


# ---------------------------------------------------------------------------
# the headline pin: proc == in-process == solo, bit for bit
# ---------------------------------------------------------------------------

@needs_fork
@pytest.mark.parametrize("seed", [0, 3])
def test_proc_replay_bit_identical_to_inproc_and_solo(snapshot, seed):
    spec = TraceSpec(seed=seed, requests=18, process="bursty",
                     rate=300.0, burst_rate=3000.0, vocab_size=VOCAB)
    tier, clock = make_proc_tier(snapshot)
    try:
        proc = replay_trace(tier, spec, clock=clock)
    finally:
        tier.close()
    inproc_tier, inproc_clock = make_inproc_tier(snapshot)
    inproc = replay_trace(inproc_tier, spec, clock=inproc_clock)

    assert len(proc.outcomes) == spec.requests
    assert proc.reasons == {REASON_OK: spec.requests}
    for a, b in zip(proc.outcomes, inproc.outcomes):
        # outputs, masks, hardware estimates — and the latency marks,
        # because both tiers share one virtual timebase (workers pin
        # their clocks to the parent's `now` per message)
        np.testing.assert_array_equal(a.result.tokens, b.result.tokens)
        np.testing.assert_array_equal(a.result.logits, b.result.logits)
        assert_records_identical(a.result.records, b.result.records)
        assert a.result.hardware == b.result.hardware
        assert a.timing == b.timing
    assert proc.metrics() == inproc.metrics()

    # solo reference: every request served alone (batch size 1)
    solo = make_solo(snapshot)
    for outcome in proc.outcomes:
        request = outcome.request
        stream_id = solo.open_stream(request.tokens,
                                     request.max_new_tokens)
        solo.drain()
        expected = solo.finish(stream_id)
        np.testing.assert_array_equal(outcome.result.tokens,
                                      expected.tokens)
        np.testing.assert_array_equal(outcome.result.logits,
                                      expected.logits)
        assert_records_identical(outcome.result.records,
                                 expected.records)
        assert outcome.result.hardware == expected.hardware


@needs_fork
def test_proc_routing_matches_inproc(snapshot):
    """Least-outstanding-tokens routing runs on parent-side estimates
    resynced from step replies; on a shed-free trace it must place
    every request on the same worker the in-process tier picks."""
    tier, _ = make_proc_tier(snapshot, replicas=3)
    try:
        prompt = np.arange(1, 5, dtype=np.int64)
        ids = [tier.open_stream(prompt, max_new_tokens=4)
               for _ in range(6)]
        owners = [tier._routes[i] for i in ids]
        assert owners == [0, 1, 2, 0, 1, 2]
        tier.drain()
        for request_id in ids:
            assert tier.finish(request_id).ok
        summary = tier.stats_summary()
        assert summary["tier"]["completed"] == 6
        assert all(row["completed"] == 2
                   for row in summary["workers"].values())
    finally:
        tier.close()


# ---------------------------------------------------------------------------
# worker death: reroute, no leaks
# ---------------------------------------------------------------------------

@needs_fork
def test_worker_kill_mid_replay_reroutes_without_leaks(snapshot):
    tier, clock = make_proc_tier(snapshot, replicas=2)
    try:
        rng = np.random.default_rng(1)
        ids = [tier.open_stream(rng.integers(1, VOCAB, size=5), 6,
                                now=clock())
               for _ in range(6)]
        clock.advance(1e-3)
        tier.step(clock())
        os.kill(tier._procs[0].pid, signal.SIGKILL)
        tier._procs[0].join(timeout=5)
        while tier.has_pending():
            clock.advance(1e-3)
            tier.step(clock())
        results = [tier.finish(i) for i in ids]
        # every request finishes ok on the survivor, and rerouting is
        # invisible in the payloads (outputs depend only on the request)
        assert all(r.reason == REASON_OK for r in results)
        solo = make_solo(snapshot)
        rng = np.random.default_rng(1)
        for result in results:
            stream_id = solo.open_stream(rng.integers(1, VOCAB, size=5),
                                         6)
            solo.drain()
            expected = solo.finish(stream_id)
            np.testing.assert_array_equal(result.tokens,
                                          expected.tokens)
            np.testing.assert_array_equal(result.logits,
                                          expected.logits)
        # the breaker opened, the KV accounting drained to zero
        assert tier.health[0].state == "quarantined"
        assert tier.health[1].state == "healthy"
        assert tier.kv_slots_in_use() == 0
        assert tier.outstanding_tokens() == 0
        summary = tier.stats_summary()
        assert summary["workers"]["worker0"]["health"] == "quarantined"
        assert summary["workers"]["worker1"]["health"] == "ok"
        assert summary["tier"]["completed"] == len(ids)
    finally:
        tier.close()


@needs_fork
def test_all_workers_dead_fails_fast_with_typed_errors(snapshot):
    tier, clock = make_proc_tier(snapshot, replicas=1)
    try:
        stream = tier.open_stream(np.arange(1, 5, dtype=np.int64), 4,
                                  now=clock())
        os.kill(tier._procs[0].pid, signal.SIGKILL)
        tier._procs[0].join(timeout=5)
        clock.advance(1e-3)
        done = tier.step(clock())
        assert done == [stream]
        result = tier.result(stream)
        assert result.reason == REASON_ERROR
        assert not tier.has_pending()
        with pytest.raises(ConnectionError):
            tier.finish(stream)
    finally:
        tier.close()


# ---------------------------------------------------------------------------
# lifecycle: shutdown, surface, validation
# ---------------------------------------------------------------------------

@needs_fork
def test_clean_shutdown_leaves_no_orphans(snapshot):
    tier, _ = make_proc_tier(snapshot, replicas=2)
    procs = list(tier._procs.values())
    assert all(p.is_alive() for p in procs)
    tier.close()
    assert all(not p.is_alive() for p in procs)
    assert all(p.exitcode == 0 for p in procs)
    tier.close()                          # idempotent


@needs_fork
def test_proc_tier_surface_and_sync_validation(snapshot):
    with pytest.raises(ValueError):
        ProcessWorkerTier.from_snapshot(snapshot, replicas=0)
    tier, clock = make_proc_tier(snapshot, replicas=2)
    try:
        assert tier.outstanding_tokens() == 0
        assert tier.kv_slots_in_use() == 0
        assert not tier.has_pending()
        assert tier.next_deadline() is None
        with pytest.raises(KeyError):
            tier.finish(123)
        with pytest.raises(KeyError):
            tier.cancel(123)
        # invalid submissions raise synchronously in the parent, using
        # the handshake-shipped limits — no async worker round-trip
        with pytest.raises(ValueError, match="prompt length"):
            tier.open_stream(np.zeros(0, dtype=np.int64), 4)
        with pytest.raises(ValueError, match="max_new_tokens"):
            tier.open_stream(np.arange(1, 4, dtype=np.int64), 0)
        with pytest.raises(ValueError, match="deadline"):
            tier.open_stream(np.arange(1, 4, dtype=np.int64), 4,
                             deadline=1.0, ttl=1.0)
        with pytest.raises(ValueError, match="ttl"):
            tier.open_stream(np.arange(1, 4, dtype=np.int64), 4,
                             ttl=0.0)

        stream = tier.open_stream(np.arange(1, 4, dtype=np.int64), 4,
                                  ttl=5.0)
        assert tier.has_pending()
        assert tier.next_deadline() == pytest.approx(5.0)
        assert tier.cancel(stream)
        clock.advance(1e-3)
        tier.step(clock())
        assert not tier.result(stream).ok
        assert tier.cancel(stream) is False
        summary = tier.stats_summary()
        assert set(summary) == {"tier", "workers"}
        assert set(summary["workers"]) == {"worker0", "worker1"}
        assert summary["tier"]["replicas"] == 2
        assert summary["tier"]["reasons"][REASON_CANCELLED] == 1
    finally:
        tier.close()


@needs_fork
def test_proc_classify_traffic(tmp_path):
    """One-shot classification flows over the protocol too, matching
    the in-process tier bit for bit."""
    from tests.test_serving import make_classifier_engine

    make_classifier_engine(0).save(str(tmp_path))
    spec = TraceSpec(seed=1, requests=12, classify_fraction=1.0,
                     vocab_size=50)
    clock = VirtualClock()
    tier = ProcessWorkerTier.from_snapshot(
        str(tmp_path), replicas=2,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=clock, estimate_hardware=True)
    try:
        proc = replay_trace(tier, spec, clock=clock)
    finally:
        tier.close()
    inproc_clock = VirtualClock()
    inproc_tier = WorkerTier.from_snapshot(
        str(tmp_path), replicas=2,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=inproc_clock, estimate_hardware=True)
    inproc = replay_trace(inproc_tier, spec, clock=inproc_clock)
    assert proc.reasons == {REASON_OK: 12}
    for a, b in zip(proc.outcomes, inproc.outcomes):
        assert a.result.kind == "classify"
        assert a.result.prediction == b.result.prediction
        np.testing.assert_array_equal(a.result.logits, b.result.logits)
        assert a.result.hardware == b.result.hardware
        assert a.timing == b.timing


# ---------------------------------------------------------------------------
# observability across the boundary
# ---------------------------------------------------------------------------

@needs_fork
def test_proc_tier_merges_worker_metrics_and_traces(snapshot):
    from repro.obs import MetricsRegistry, TraceRecorder

    registry = MetricsRegistry()
    tracer = TraceRecorder()
    tier, clock = make_proc_tier(snapshot, registry=registry,
                                 tracer=tracer)
    try:
        spec = TraceSpec(seed=0, requests=8, vocab_size=VOCAB)
        replay_trace(tier, spec, clock=clock)
        snap = registry.snapshot()
        rows = snap["repro_requests_terminal_total"]["series"]
        completed = {row["labels"]["engine"]: row["value"]
                     for row in rows
                     if row["labels"]["reason"] == REASON_OK}
        assert set(completed) == {"worker0", "worker1"}
        assert sum(completed.values()) == 8
        tracks = {e["args"]["name"] for e in tracer.events
                  if e.get("name") == "process_name"}
        assert tracks == {"worker0", "worker1"}
        # per-request spans crossed the boundary with remapped pids
        assert any(e.get("name") == "request" for e in tracer.events)
    finally:
        tier.close()


# ---------------------------------------------------------------------------
# memory-mapped snapshot loading
# ---------------------------------------------------------------------------

def _rss_kb() -> int:
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("no VmRSS")


def test_mmap_from_directory_is_readonly_and_bit_identical(snapshot):
    plain = PrunedInferenceEngine.from_directory(snapshot)
    mapped = PrunedInferenceEngine.from_directory(snapshot, mmap=True)
    reference = dict(plain.model.named_parameters())
    saw_param = False
    for name, param in mapped.model.named_parameters():
        saw_param = True
        assert not param.data.flags.writeable, name
        np.testing.assert_array_equal(param.data, reference[name].data)
    assert saw_param
    tokens = np.arange(1, 6, dtype=np.int64)[None, :]
    np.testing.assert_array_equal(mapped.model.logits(tokens).data,
                                  plain.model.logits(tokens).data)


@pytest.mark.skipif(not os.path.exists("/proc/self/status"),
                    reason="needs /proc RSS accounting")
def test_mmap_second_open_shares_memory(tmp_path):
    """The regression the mmap path exists for: opening the snapshot
    a second time must not duplicate the weights' RSS (same-process
    proxy for N worker processes sharing page-cache pages)."""
    from repro.serve.__main__ import build_lm_engine

    # big enough that the weights dominate interpreter noise
    build_lm_engine(seed=0, dim=256, num_layers=4).save(str(tmp_path))
    before = _rss_kb()
    first = PrunedInferenceEngine.from_directory(str(tmp_path),
                                                 mmap=True)
    first.model.logits(np.arange(1, 6, dtype=np.int64)[None, :])
    after_first = _rss_kb()
    second = PrunedInferenceEngine.from_directory(str(tmp_path),
                                                  mmap=True)
    second.model.logits(np.arange(1, 6, dtype=np.int64)[None, :])
    after_second = _rss_kb()
    first_cost = max(after_first - before, 1)
    second_cost = after_second - after_first
    assert first_cost > 1024, first_cost      # weights actually faulted
    assert second_cost < 0.1 * first_cost, (first_cost, second_cost)
