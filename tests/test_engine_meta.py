"""Engine save/load metadata parsing: the shared ``read_metadata``
helper behind ``load`` and ``from_directory``, and the error paths
when a directory's metadata is unusable."""

import json
import os

import numpy as np
import pytest

from repro.core import PrunedInferenceEngine
from tests.test_serving import make_classifier_engine


@pytest.fixture
def saved_engine(tmp_path):
    engine = make_classifier_engine(0)
    engine.controller.set_threshold_values(np.array([0.25, -0.5]))
    directory = str(tmp_path / "engine")
    engine.save(directory)
    return engine, directory


def test_read_metadata_is_shared_by_both_loaders(saved_engine):
    engine, directory = saved_engine
    meta = PrunedInferenceEngine.read_metadata(directory)
    assert meta["model_class"] == "TransformerClassifier"
    assert meta["thresholds"] == [0.25, -0.5]
    assert meta["model_config"]["max_seq_len"] == 24

    rebuilt = PrunedInferenceEngine.from_directory(directory)
    np.testing.assert_array_equal(
        rebuilt.controller.threshold_values(), [0.25, -0.5])

    fresh = make_classifier_engine(1)
    fresh.load(directory)
    np.testing.assert_array_equal(
        fresh.controller.threshold_values(), [0.25, -0.5])
    for name, value in fresh.model.state_dict().items():
        np.testing.assert_array_equal(value,
                                      engine.model.state_dict()[name])


def test_unknown_model_class_error_message(saved_engine):
    _, directory = saved_engine
    path = os.path.join(directory, "engine.json")
    with open(path) as fh:
        meta = json.load(fh)
    meta["model_class"] = "BogusNet"
    with open(path, "w") as fh:
        json.dump(meta, fh)
    with pytest.raises(ValueError) as excinfo:
        PrunedInferenceEngine.from_directory(directory)
    message = str(excinfo.value)
    assert "unknown model class 'BogusNet'" in message
    # the message lists what would have been accepted
    for known in ("MemN2N", "TransformerClassifier", "TransformerLM"):
        assert known in message


def test_missing_model_config_error_message(saved_engine):
    _, directory = saved_engine
    path = os.path.join(directory, "engine.json")
    with open(path) as fh:
        meta = json.load(fh)
    meta["model_config"] = None
    with open(path, "w") as fh:
        json.dump(meta, fh)
    with pytest.raises(ValueError, match="predates model-config"):
        PrunedInferenceEngine.from_directory(directory)
