"""Soft-vs-hard threshold agreement: the differentiable gate used for
fine-tuning must agree with the deployed hard pruning."""

import numpy as np

from repro.core import PruningMode, SoftThresholdConfig, soft_threshold
from repro.core.finetune import evaluate_accuracy
from repro.data import batches
from repro.eval.runner import run_workload
from repro.eval.workloads import TINY, get_workload
from repro.nn import Parameter
from repro.tensor import Tensor


def test_gate_crosses_half_exactly_at_threshold():
    """sigmoid(s(x - Th)) > 0.5 iff x > Th, for any sharpness."""
    rng = np.random.default_rng(0)
    scores = Tensor(rng.standard_normal(256) * 2.0)
    for sharpness in (1.0, 10.0, 100.0):
        threshold = Parameter(np.array(0.3))
        gate = soft_threshold(scores, threshold,
                              SoftThresholdConfig(sharpness=sharpness))
        np.testing.assert_array_equal(gate.data > 0.5,
                                      scores.data > 0.3)


def test_sharp_gate_approaches_hard_mask():
    rng = np.random.default_rng(1)
    scores = Tensor(rng.standard_normal(512))
    threshold = Parameter(np.array(0.0))
    gate = soft_threshold(scores, threshold,
                          SoftThresholdConfig(sharpness=1000.0))
    hard = (scores.data >= 0.0).astype(float)
    # away from the (measure-zero) transition band they coincide
    off_band = np.abs(scores.data) > 0.01
    np.testing.assert_allclose(gate.data[off_band], hard[off_band],
                               atol=1e-4)


def test_soft_and_hard_mode_agree_on_trained_model():
    """After pruning-aware fine-tuning, the metric under SOFT gating
    matches the deployed HARD metric closely."""
    result = run_workload(get_workload("bert_base_glue/G-SST"), TINY)
    model, controller, spec = result.model, result.controller, result.spec
    data = spec.make_data(TINY)
    hard = evaluate_accuracy(model, controller,
                             batches(data.test, TINY.batch_size),
                             PruningMode.HARD)
    soft = evaluate_accuracy(model, controller,
                             batches(data.test, TINY.batch_size),
                             PruningMode.SOFT)
    controller.hard()
    assert abs(hard - soft) <= 0.1
    assert hard == result.pruned_metric
