"""Batched-vs-solo equivalence: a request served in a coalesced batch
must be *bit-identical* — logits, predictions, pruning masks, and
hardware estimates — to the same request served alone through the same
serving stack (batch size 1)."""

import numpy as np
import pytest

from repro.core import PrunedInferenceEngine
from repro.models import (ClassifierConfig, LMConfig,
                          TransformerClassifier, TransformerLM)
from repro.serve import BatchPolicy, ServingEngine

MAX_SEQ = 24


def make_classifier_engine(seed=0, head="cls"):
    model = TransformerClassifier(ClassifierConfig(
        vocab_size=50, max_seq_len=MAX_SEQ, dim=32, num_heads=2,
        num_layers=2, num_classes=3, seed=seed, head=head))
    controller = model.make_controller()
    # thresholds at 0 prune roughly half of the (zero-centred) scores,
    # so the equivalence test exercises real pruning decisions
    controller.set_threshold_values(np.zeros(2))
    return PrunedInferenceEngine(model, controller)


def make_lm_engine(seed=0):
    model = TransformerLM(LMConfig(
        vocab_size=40, max_seq_len=32, dim=32, num_heads=2,
        num_layers=2, seed=seed))
    controller = model.make_controller()
    controller.set_threshold_values(np.zeros(2))
    return PrunedInferenceEngine(model, controller)


def make_serving(engine, max_batch_size, **policy_kwargs):
    clock = [0.0]
    return ServingEngine(
        engine, BatchPolicy(max_batch_size=max_batch_size, max_wait=0.0,
                            **policy_kwargs),
        estimate_hardware=True, clock=lambda: clock[0])


def serve_classify(engine, requests, max_batch_size, **policy_kwargs):
    serving = make_serving(engine, max_batch_size, **policy_kwargs)
    ids = [serving.submit(r) for r in requests]
    serving.drain()
    return [serving.finish(i) for i in ids], serving


def serve_streams(engine, prompts, max_new_tokens, max_batch_size,
                  **policy_kwargs):
    serving = make_serving(engine, max_batch_size, **policy_kwargs)
    ids = [serving.open_stream(p, max_new_tokens) for p in prompts]
    serving.drain()
    return [serving.finish(i) for i in ids], serving


def assert_records_identical(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert a.layer_index == b.layer_index
        assert a.threshold == b.threshold
        np.testing.assert_array_equal(a.scores, b.scores)
        np.testing.assert_array_equal(a.pruned_mask, b.pruned_mask)
        np.testing.assert_array_equal(a.queries, b.queries)
        np.testing.assert_array_equal(a.keys, b.keys)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_classify_batched_vs_solo_bit_identical(seed):
    engine = make_classifier_engine(seed)
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, MAX_SEQ + 1, size=10)
    requests = [rng.integers(0, 50, size=int(n)) for n in lengths]

    batched, _ = serve_classify(engine, requests, max_batch_size=4)
    solo, _ = serve_classify(engine, requests, max_batch_size=1)

    for got, expected in zip(batched, solo):
        np.testing.assert_array_equal(got.logits, expected.logits)
        assert got.prediction == expected.prediction
        assert_records_identical(got.records, expected.records)
        # dataclass equality is exact float equality field by field
        assert got.hardware == expected.hardware


def test_classify_result_independent_of_batch_composition():
    engine = make_classifier_engine(0)
    rng = np.random.default_rng(7)
    probe = rng.integers(0, 50, size=9)
    reference = None
    for trial in range(3):
        # surround the probe request with different neighbours each time
        others = [rng.integers(0, 50, size=int(n))
                  for n in rng.integers(1, MAX_SEQ + 1, size=5)]
        serving = make_serving(engine, max_batch_size=6)
        ids = [serving.submit(r) for r in others[:trial + 1]]
        probe_id = serving.submit(probe)
        ids += [serving.submit(r) for r in others[trial + 1:]]
        serving.drain()
        result = serving.finish(probe_id)
        if reference is None:
            reference = result
        else:
            np.testing.assert_array_equal(result.logits, reference.logits)
            assert result.hardware == reference.hardware
            assert_records_identical(result.records, reference.records)


def test_span_head_batched_vs_solo():
    engine = make_classifier_engine(3, head="span")
    rng = np.random.default_rng(3)
    requests = [rng.integers(0, 50, size=int(n))
                for n in rng.integers(2, MAX_SEQ + 1, size=6)]
    batched, _ = serve_classify(engine, requests, max_batch_size=3)
    solo, _ = serve_classify(engine, requests, max_batch_size=1)
    for got, expected, request in zip(batched, solo, requests):
        assert got.logits.shape == (len(request),)
        np.testing.assert_array_equal(got.logits, expected.logits)
        assert got.prediction == expected.prediction


@pytest.mark.parametrize("seed", [0, 1])
def test_lm_streams_batched_vs_solo_bit_identical(seed):
    engine = make_lm_engine(seed)
    rng = np.random.default_rng(seed)
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(1, 9, size=5)]

    batched, _ = serve_streams(engine, prompts, 6, max_batch_size=4)
    solo, _ = serve_streams(engine, prompts, 6, max_batch_size=1)

    for got, expected in zip(batched, solo):
        np.testing.assert_array_equal(got.tokens, expected.tokens)
        np.testing.assert_array_equal(got.logits, expected.logits)
        assert_records_identical(got.records, expected.records)
        assert got.hardware == expected.hardware


@pytest.mark.parametrize("policy_kwargs",
                         [{"buckets": (8, 16, 24)}, {"pad_to": 16}])
def test_classify_bucketed_and_custom_pad_still_bit_identical(
        policy_kwargs):
    """Padding policies (bucket ladder, narrow fixed width) change the
    pad width per request but never per composition, so equivalence
    must survive them."""
    engine = make_classifier_engine(1)
    rng = np.random.default_rng(13)
    requests = [rng.integers(0, 50, size=int(n))
                for n in rng.integers(1, 17, size=9)]
    batched, _ = serve_classify(engine, requests, 4, **policy_kwargs)
    solo, _ = serve_classify(engine, requests, 1, **policy_kwargs)
    for got, expected in zip(batched, solo):
        np.testing.assert_array_equal(got.logits, expected.logits)
        assert_records_identical(got.records, expected.records)
        assert got.hardware == expected.hardware


def test_lm_streams_narrow_prefill_pad_bit_identical():
    """pad_to below max_seq_len prefills prompts at a narrow fixed
    width while decode buffers span the full capacity."""
    engine = make_lm_engine(2)
    rng = np.random.default_rng(21)
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(1, 9, size=5)]
    batched, _ = serve_streams(engine, prompts, 5, 4, pad_to=8)
    solo, _ = serve_streams(engine, prompts, 5, 1, pad_to=8)
    for got, expected in zip(batched, solo):
        np.testing.assert_array_equal(got.tokens, expected.tokens)
        np.testing.assert_array_equal(got.logits, expected.logits)
        assert_records_identical(got.records, expected.records)
        assert got.hardware == expected.hardware


def test_traffic_totals_aggregate_per_request():
    engine = make_classifier_engine(0)
    rng = np.random.default_rng(11)
    requests = [rng.integers(0, 50, size=int(n))
                for n in rng.integers(1, MAX_SEQ + 1, size=8)]
    results, serving = serve_classify(engine, requests, max_batch_size=4)
    totals = serving.stats.hardware
    assert totals.requests == len(requests)
    assert np.isclose(totals.runtime_ns,
                      sum(r.hardware.runtime_ns for r in results))
    assert np.isclose(totals.baseline_runtime_ns,
                      sum(r.hardware.baseline_runtime_ns for r in results))
    assert np.isclose(totals.energy_pj,
                      sum(r.hardware.energy_pj for r in results))
    assert totals.speedup_vs_baseline > 1.0
    assert serving.stats.batches == 2
    assert serving.stats.mean_batch_size == 4.0
