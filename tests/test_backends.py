"""Kernel-backend conformance matrix.

Every registered backend must return ``(cycles, pruned, scores)``
bit-identical to the scalar reference trace
(``bitserial_dot_product``) — these tests pin that contract on
randomized tiles and on the edge cases the tile simulator actually
hits (sign-only first cycles, over-wide groups, fully-pruned tiles,
empty/partial valid masks, aggressive margins).  The ``numba`` column
of the matrix runs only where numba is installed.
"""

import numpy as np
import pytest

from repro.hw import backends
from repro.hw.bitserial import (bitserial_cycles_matrix,
                                bitserial_dot_product, serial_cycle_count)

KNOWN_BACKENDS = ("numpy-ref", "numpy-packed", "numba", "torch")

BACKENDS = [
    pytest.param(name, marks=() if name in backends.list_backends()
                 else pytest.mark.skip(reason=f"{name} not registered "
                                              "(optional dependency "
                                              "missing)"))
    for name in KNOWN_BACKENDS
]


def run(name, q, k, threshold, magnitude_bits, group, **kwargs):
    return backends.get_backend(name).matrix(
        q, k, threshold, magnitude_bits, group, **kwargs)


def scalar_reference(q, k, threshold, magnitude_bits, group):
    cycles = np.empty((q.shape[0], k.shape[0]), dtype=np.int64)
    pruned = np.empty((q.shape[0], k.shape[0]), dtype=bool)
    scores = np.empty((q.shape[0], k.shape[0]), dtype=np.float64)
    for i in range(q.shape[0]):
        for j in range(k.shape[0]):
            trace = bitserial_dot_product(q[i], k[j], threshold,
                                          magnitude_bits, group)
            cycles[i, j] = trace.cycles
            pruned[i, j] = trace.pruned
            scores[i, j] = trace.exact_value
    return cycles, pruned, scores


def assert_matches(actual, expected, context=""):
    for ours, theirs, name in zip(actual, expected,
                                  ("cycles", "pruned", "scores")):
        np.testing.assert_array_equal(ours, theirs,
                                      err_msg=f"{name} {context}")


# ---------------------------------------------------------------------------
# randomized conformance against the scalar trace
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_matches_scalar_trace_randomized(backend):
    """Property: on random tiles across bit widths, group sizes and
    thresholds, the backend equals the per-pair scalar trace."""
    rng = np.random.default_rng(17)
    for trial in range(25):
        s_q = int(rng.integers(1, 14))
        s_k = int(rng.integers(1, 14))
        dim = int(rng.integers(1, 24))
        magnitude_bits = int(rng.integers(1, 13))
        group = int(rng.integers(1, magnitude_bits + 3))
        limit = (1 << magnitude_bits) - 1
        q = rng.integers(-2047, 2048, (s_q, dim))
        k = rng.integers(-limit, limit + 1, (s_k, dim))
        threshold = float(rng.integers(-40_000, 40_000))
        result = run(backend, q, k, threshold, magnitude_bits, group)
        expected = scalar_reference(q, k, threshold, magnitude_bits,
                                    group)
        assert_matches(result, expected,
                       f"(backend={backend}, trial={trial}, "
                       f"bits={magnitude_bits}, group={group})")


@pytest.mark.parametrize("backend", BACKENDS)
def test_matches_reference_with_huge_queries(backend):
    """Queries far outside the 12-bit datapath (full-precision q is
    part of the contract) must still match numpy-ref bit-for-bit —
    this drives the packed backend's float64 fallback."""
    rng = np.random.default_rng(23)
    q = rng.integers(-(1 << 22), 1 << 22, (6, 16))
    k = rng.integers(-2047, 2048, (7, 16))
    result = run(backend, q, k, 1e9, 11, 2)
    expected = run("numpy-ref", q, k, 1e9, 11, 2)
    assert_matches(result, expected, f"(backend={backend})")


# ---------------------------------------------------------------------------
# edge cases
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("magnitude_bits,group", [(3, 5), (1, 2), (2, 12)])
def test_group_wider_than_magnitude_bits(backend, magnitude_bits, group):
    """A plane group wider than the magnitude field finishes in one
    cycle; cycle counts and prunes must still match the scalar trace."""
    rng = np.random.default_rng(5)
    limit = (1 << magnitude_bits) - 1
    q = rng.integers(-63, 64, (5, 8))
    k = rng.integers(-limit, limit + 1, (6, 8))
    threshold = 40.0
    assert serial_cycle_count(magnitude_bits + 1, group) == 1
    result = run(backend, q, k, threshold, magnitude_bits, group)
    expected = scalar_reference(q, k, threshold, magnitude_bits, group)
    assert_matches(result, expected, f"(backend={backend})")
    assert (result[0] == 1).all()            # single-cycle schedule


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_scores_pruned(backend):
    """An unreachable threshold prunes everything; early termination
    must still charge at least the sign cycle per score."""
    rng = np.random.default_rng(11)
    q = rng.integers(-2047, 2048, (8, 16))
    k = rng.integers(-2047, 2048, (9, 16))
    cycles, pruned, scores = run(backend, q, k, 1e12, 11, 2)
    assert pruned.all()
    assert (scores < 1e12).all()
    assert (cycles >= 1).all()
    assert (cycles < serial_cycle_count(12, 2)).all()
    expected = scalar_reference(q, k, 1e12, 11, 2)
    assert_matches((cycles, pruned, scores), expected,
                   f"(backend={backend})")


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_valid_mask_zeroes_all_cycles(backend):
    rng = np.random.default_rng(13)
    q = rng.integers(-100, 100, (4, 8))
    k = rng.integers(-100, 100, (5, 8))
    valid = np.zeros((4, 5), dtype=bool)
    cycles, pruned, scores = run(backend, q, k, 0.0, 6, 2, valid=valid)
    assert (cycles == 0).all()
    # prune decisions and scores are still computed for the whole tile
    np.testing.assert_array_equal(pruned, scores < 0.0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_partial_valid_mask(backend):
    """Invalid positions report zero cycles; valid positions are
    untouched by the mask (identical to the unmasked run)."""
    rng = np.random.default_rng(19)
    q = rng.integers(-512, 512, (6, 12))
    k = rng.integers(-512, 512, (6, 12))
    valid = np.tril(np.ones((6, 6), dtype=bool))     # causal mask
    threshold = 1000.0
    cycles, pruned, scores = run(backend, q, k, threshold, 9, 2,
                                 valid=valid)
    unmasked = run(backend, q, k, threshold, 9, 2)
    assert (cycles[~valid] == 0).all()
    np.testing.assert_array_equal(cycles[valid], unmasked[0][valid])
    np.testing.assert_array_equal(pruned, unmasked[1])
    np.testing.assert_array_equal(scores, unmasked[2])


@pytest.mark.parametrize("backend", BACKENDS)
def test_margin_scale_below_one_misprune_accounting(backend):
    """Aggressive margins (< 1) may wrongly prune but never miss a
    true prune, spend monotonically fewer cycles, and must agree with
    numpy-ref exactly at every scale."""
    rng = np.random.default_rng(7)
    q = rng.integers(-2047, 2048, (16, 24))
    k = rng.integers(-2047, 2048, (16, 24))
    threshold = 60_000.0
    exact = (q @ k.T) < threshold
    totals, wrong, missed = {}, {}, {}
    for scale in (1.0, 0.5, 0.25, 0.0):
        cycles, pruned, scores = run(backend, q, k, threshold, 11, 2,
                                     margin_scale=scale)
        reference = run("numpy-ref", q, k, threshold, 11, 2,
                        margin_scale=scale)
        assert_matches((cycles, pruned, scores), reference,
                       f"(backend={backend}, margin_scale={scale})")
        totals[scale] = int(cycles.sum())
        wrong[scale] = int((pruned & ~exact).sum())
        missed[scale] = int((~pruned & exact).sum())
    assert wrong[1.0] == 0                   # conservative margin: exact
    assert all(count == 0 for count in missed.values())
    scales = (1.0, 0.5, 0.25, 0.0)
    assert all(totals[a] >= totals[b]
               for a, b in zip(scales, scales[1:]))
    assert all(wrong[a] <= wrong[b]
               for a, b in zip(scales, scales[1:]))


@pytest.mark.parametrize("backend", BACKENDS)
def test_matches_tile_simulator_shapes(backend):
    """The exact call shape TileSimulator makes (12-bit datapath,
    serial_bits group, causal valid) agrees across backends."""
    rng = np.random.default_rng(29)
    q = rng.integers(-2047, 2048, (10, 64))
    k = rng.integers(-2047, 2048, (10, 64))
    valid = np.tril(np.ones((10, 10), dtype=bool))
    result = run(backend, q, k, 30_000.0, 11, 2, valid=valid)
    expected = run("numpy-ref", q, k, 30_000.0, 11, 2, valid=valid)
    assert_matches(result, expected, f"(backend={backend})")


# ---------------------------------------------------------------------------
# registry behavior
# ---------------------------------------------------------------------------

def test_registry_lists_numpy_backends():
    names = backends.list_backends()
    assert "numpy-ref" in names
    assert "numpy-packed" in names


def test_unknown_backend_raises_with_choices():
    with pytest.raises(KeyError, match="numpy-ref"):
        backends.get_backend("not-a-backend")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(backends.ENV_VAR, "numpy-packed")
    assert backends.get_backend().name == "numpy-packed"
    monkeypatch.setenv(backends.ENV_VAR, "typo")
    with pytest.raises(KeyError, match="typo"):
        backends.get_backend()
    monkeypatch.delenv(backends.ENV_VAR)
    assert backends.get_backend().name == backends.DEFAULT_BACKEND


def test_explicit_name_beats_env_var(monkeypatch):
    monkeypatch.setenv(backends.ENV_VAR, "numpy-packed")
    assert backends.get_backend("numpy-ref").name == "numpy-ref"


def test_dispatcher_backend_argument():
    rng = np.random.default_rng(3)
    q = rng.integers(-100, 100, (4, 8))
    k = rng.integers(-100, 100, (4, 8))
    for name in backends.list_backends():
        result = bitserial_cycles_matrix(q, k, 50.0, 6, 2, backend=name)
        expected = bitserial_cycles_matrix(q, k, 50.0, 6, 2)
        assert_matches(result, expected, f"(backend={name})")


def test_register_backend_rejects_duplicates():
    class Dummy:
        name = "numpy-ref"
        description = "dup"

        @staticmethod
        def matrix(*args, **kwargs):
            raise NotImplementedError

    with pytest.raises(ValueError, match="already registered"):
        backends.register_backend(Dummy())


def test_register_and_unregister_custom_backend():
    class Delegating:
        name = "unit-test-backend"
        description = "delegates to numpy-ref"

        @staticmethod
        def matrix(q, k, threshold, magnitude_bits, group, valid=None,
                   margin_scale=1.0):
            return backends.get_backend("numpy-ref").matrix(
                q, k, threshold, magnitude_bits, group, valid=valid,
                margin_scale=margin_scale)

    backends.register_backend(Delegating())
    try:
        assert "unit-test-backend" in backends.list_backends()
        rng = np.random.default_rng(31)
        q = rng.integers(-50, 50, (3, 6))
        k = rng.integers(-50, 50, (3, 6))
        result = bitserial_cycles_matrix(q, k, 10.0, 5, 2,
                                         backend="unit-test-backend")
        expected = bitserial_cycles_matrix(q, k, 10.0, 5, 2)
        assert_matches(result, expected)
    finally:
        backends.unregister_backend("unit-test-backend")
    assert "unit-test-backend" not in backends.list_backends()


def test_tile_config_threads_backend():
    from dataclasses import replace

    from repro.hw import AE_LEOPARD, TileSimulator

    sim = TileSimulator(replace(AE_LEOPARD,
                                kernel_backend="numpy-packed"))
    assert sim.backend.name == "numpy-packed"
    # no config override: follows the session's resolved default
    # (env var or DEFAULT_BACKEND)
    assert TileSimulator(AE_LEOPARD).backend.name == \
        backends.get_backend().name
    assert TileSimulator(AE_LEOPARD,
                         backend="numpy-packed").backend.name == \
        "numpy-packed"


def test_hardware_estimate_records_backend(monkeypatch):
    """Serving/engine hardware estimates must say which kernel made
    them — per-request metadata for coalesced traffic."""
    import repro.serve.__main__ as serve_main

    engine = serve_main.build_classifier_engine()
    batch_inputs = np.arange(6).reshape(1, 6) % 4
    mask = np.ones((1, 6), dtype=bool)
    _, records = engine.run_recorded(
        lambda: engine.logits_for(batch_inputs, mask))
    monkeypatch.delenv(backends.ENV_VAR, raising=False)
    estimate = engine.estimate_from_records(records)
    assert estimate.kernel_backend == backends.DEFAULT_BACKEND
    monkeypatch.setenv(backends.ENV_VAR, "numpy-packed")
    packed_estimate = engine.estimate_from_records(records)
    assert packed_estimate.kernel_backend == "numpy-packed"
    # same records, different backend, identical hardware numbers —
    # the conformance guarantee surfacing at the serving layer
    assert packed_estimate.runtime_ns == estimate.runtime_ns
    assert packed_estimate.energy_pj == estimate.energy_pj
    assert packed_estimate.pruning_rate == estimate.pruning_rate
