"""Reliability layer pins: deterministic fault injection, deadlines,
cancellation, admission control, retry recovery, health-checked
routing, and sweep crash recovery.

The chaos soak at the bottom is the headline invariant: under a seeded
:class:`~repro.serve.faults.FaultPlan` every request terminates with a
result or a *typed* error, no KV slot or queue entry leaks, the run
replays bit-identically, and the requests the chaos did not touch are
bit-identical to serving them solo with no faults at all."""

import numpy as np
import pytest

from repro.serve import (BatchPolicy, DeadlineExceeded, Fault, FaultPlan,
                         HealthPolicy, InjectedKernelError, ModelRouter,
                         REASON_CANCELLED, REASON_DEADLINE, REASON_ERROR,
                         REASON_OK, REASON_SHED, RequestCancelled,
                         ServingEngine, ShedOverload, UnknownModelError)
from tests.test_serving import (assert_records_identical,
                                make_classifier_engine, make_lm_engine,
                                serve_classify, serve_streams)

KNOWN_REASONS = {REASON_OK, REASON_DEADLINE, REASON_CANCELLED,
                 REASON_ERROR, REASON_SHED}


def make_reliable(engine, max_batch_size=3, continuous=False,
                  max_wait=0.0, **kwargs):
    clock = [0.0]
    serving = ServingEngine(
        engine, BatchPolicy(max_batch_size=max_batch_size,
                            max_wait=max_wait),
        estimate_hardware=True, clock=lambda: clock[0],
        continuous=continuous, sleep=lambda s: None, **kwargs)
    return serving, clock


def assert_no_leaks(serving):
    """Nothing waiting, nothing occupying KV, nothing half-finished."""
    assert serving.kv_slots_in_use() == 0
    assert serving.queue_depth() == 0
    assert serving.backlog_tokens() == 0
    assert not serving.has_pending()
    for stream in serving._streams.values():
        assert stream.done
        assert stream.caches is None and stream.slot is None


# ---------------------------------------------------------------------------
# FaultPlan determinism
# ---------------------------------------------------------------------------

def test_fault_plan_seeded_is_replayable():
    first = FaultPlan.seeded(11, forwards=4, latencies=3, horizon=32)
    second = FaultPlan.seeded(11, forwards=4, latencies=3, horizon=32)
    assert first.faults == second.faults
    assert FaultPlan.seeded(12, forwards=4, horizon=32).faults \
        != first.faults


def test_fault_draw_consumes_events_and_fires_once():
    plan = FaultPlan([Fault(kind="forward", at=1)])
    assert plan.draw("forward") is None           # event 0
    assert plan.draw("forward") is not None       # event 1: armed
    assert plan.draw("forward") is None           # fired exactly once
    assert plan.fired == [Fault(kind="forward", at=1)]

    replay = plan.reset()
    assert replay.fired == []
    assert [replay.draw("forward") is not None for _ in range(3)] \
        == [False, True, False]


def test_fault_worker_matches_target_and_attempt():
    plan = FaultPlan([Fault(kind="worker", at=1, target="a")])
    assert not plan.worker_dies("a", 0)
    assert not plan.worker_dies("b", 1)           # wrong target
    assert plan.worker_dies("a", 1)
    assert not plan.worker_dies("a", 1)           # fired exactly once


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault(kind="gamma-ray", at=0)
    with pytest.raises(ValueError):
        Fault(kind="forward", at=-1)


# ---------------------------------------------------------------------------
# deadlines / TTLs
# ---------------------------------------------------------------------------

def test_classify_deadline_sheds_queued_request():
    serving, clock = make_reliable(make_classifier_engine(0))
    request_id = serving.submit(np.arange(1, 6), ttl=5.0)
    survivor_id = serving.submit(np.arange(1, 6))
    clock[0] = 10.0
    completed = serving.step()
    assert set(completed) == {request_id, survivor_id}
    assert serving.result(request_id).reason == REASON_DEADLINE
    assert serving.result(survivor_id).reason == REASON_OK
    with pytest.raises(DeadlineExceeded):
        serving.finish(request_id)
    assert serving.stats.expired == 1
    assert_no_leaks(serving)


def test_deadline_and_ttl_are_mutually_exclusive():
    serving, _ = make_reliable(make_classifier_engine(0))
    with pytest.raises(ValueError):
        serving.submit(np.arange(3), deadline=4.0, ttl=1.0)
    with pytest.raises(ValueError):
        serving.submit(np.arange(3), ttl=0.0)


@pytest.mark.parametrize("continuous", [False, True])
def test_stream_deadline_frees_kv_state(continuous):
    engine = make_lm_engine(0)
    rng = np.random.default_rng(0)
    prompts = [rng.integers(1, 40, size=4) for _ in range(3)]
    serving, clock = make_reliable(engine, continuous=continuous)
    doomed = [serving.open_stream(prompts[0], 30, ttl=5.0),
              serving.open_stream(prompts[1], 30, ttl=5.0)]
    survivor = serving.open_stream(prompts[2], 4)
    serving.step()                       # prefill/admit everything
    if continuous:
        assert serving.kv_slots_in_use() == 3
    clock[0] = 10.0
    completed = serving.step()           # expiry sweep runs first
    assert set(doomed) <= set(completed)
    for stream_id in doomed:
        assert serving.result(stream_id).reason == REASON_DEADLINE
        with pytest.raises(DeadlineExceeded):
            serving.finish(stream_id)
    while serving.has_pending():
        serving.step()
    result = serving.finish(survivor)
    assert result.ok and len(result.tokens) == len(prompts[2]) + 4
    # the survivor is bit-identical to a solo, no-deadline run
    solo, _ = serve_streams(engine, [prompts[2]], 4, max_batch_size=1)
    np.testing.assert_array_equal(result.tokens, solo[0].tokens)
    np.testing.assert_array_equal(result.logits, solo[0].logits)
    assert serving.stats.expired == 2
    assert_no_leaks(serving)


def test_expired_stream_result_keeps_partial_generation():
    serving, clock = make_reliable(make_lm_engine(1), continuous=True)
    stream_id = serving.open_stream(np.arange(1, 5), 50, ttl=5.0)
    for _ in range(3):
        serving.step()     # prefill+decode piggyback, then 2 decodes
    clock[0] = 10.0
    serving.step()
    result = serving.result(stream_id)
    assert result.reason == REASON_DEADLINE
    assert len(result.tokens) == 4 + 4   # prompt + what it got done
    assert_no_leaks(serving)


# ---------------------------------------------------------------------------
# cancellation
# ---------------------------------------------------------------------------

def test_cancel_queued_classify_request():
    serving, _ = make_reliable(make_classifier_engine(0), max_wait=100.0)
    request_id = serving.submit(np.arange(1, 6))
    assert serving.cancel(request_id) is True
    assert serving.cancel(request_id) is False    # already terminal
    with pytest.raises(KeyError):
        serving.cancel(10_000)
    completed = serving.step()
    assert completed == [request_id]
    with pytest.raises(RequestCancelled):
        serving.finish(request_id)
    assert serving.stats.cancelled == 1
    assert_no_leaks(serving)


@pytest.mark.parametrize("continuous", [False, True])
def test_cancel_running_stream_frees_kv_state(continuous):
    engine = make_lm_engine(0)
    rng = np.random.default_rng(3)
    prompts = [rng.integers(1, 40, size=5) for _ in range(2)]
    serving, _ = make_reliable(engine, continuous=continuous)
    doomed = serving.open_stream(prompts[0], 30)
    survivor = serving.open_stream(prompts[1], 4)
    serving.step()
    if continuous:
        assert serving.kv_slots_in_use() == 2
    assert serving.cancel(doomed) is True
    if continuous:
        assert serving.kv_slots_in_use() == 1     # slot freed on cancel
    while serving.has_pending():
        serving.step()
    with pytest.raises(RequestCancelled):
        serving.finish(doomed)
    result = serving.finish(survivor)
    solo, _ = serve_streams(engine, [prompts[1]], 4, max_batch_size=1)
    np.testing.assert_array_equal(result.tokens, solo[0].tokens)
    np.testing.assert_array_equal(result.logits, solo[0].logits)
    assert result.hardware == solo[0].hardware
    assert_no_leaks(serving)


def test_cancel_after_completion_returns_false():
    serving, _ = make_reliable(make_classifier_engine(0))
    request_id = serving.submit(np.arange(1, 6))
    serving.step()
    assert serving.cancel(request_id) is False
    assert serving.finish(request_id).ok


# ---------------------------------------------------------------------------
# admission control (bounded queue)
# ---------------------------------------------------------------------------

def test_backlog_limit_sheds_classify_overload():
    serving, _ = make_reliable(make_classifier_engine(0), max_wait=100.0,
                               max_backlog_tokens=12)
    admitted = serving.submit(np.arange(1, 9))    # 8 tokens queued
    shed = serving.submit(np.arange(1, 9))        # 8 + 8 > 12: shed
    assert serving.result(shed).reason == REASON_SHED
    assert serving.backlog_tokens() == 8          # only one queued
    completed = serving.step()
    assert shed in completed
    with pytest.raises(ShedOverload):
        serving.finish(shed)
    serving.flush()
    assert serving.finish(admitted).ok
    assert serving.stats.shed == 1


def test_backlog_limit_counts_stream_budget():
    serving, _ = make_reliable(make_lm_engine(0), continuous=True,
                               max_backlog_tokens=20)
    # 4 prompt + 10 new = 14 budgeted tokens
    admitted = serving.open_stream(np.arange(1, 5), 10)
    shed = serving.open_stream(np.arange(1, 5), 10)
    assert serving.result(shed).reason == REASON_SHED
    with pytest.raises(ShedOverload):
        serving.finish(shed)
    while serving.has_pending():
        serving.step()
    assert serving.finish(admitted).ok
    assert_no_leaks(serving)


# ---------------------------------------------------------------------------
# forward failures: containment + retry recovery
# ---------------------------------------------------------------------------

def test_forward_failure_fails_only_its_batch():
    engine = make_classifier_engine(0)
    rng = np.random.default_rng(1)
    requests = [rng.integers(0, 50, size=7) for _ in range(4)]
    plan = FaultPlan([Fault(kind="forward", at=0)])
    serving, _ = make_reliable(engine, max_batch_size=2, faults=plan)
    ids = [serving.submit(r) for r in requests]
    serving.step()                       # two batches: first one faulted
    failed, ok = ids[:2], ids[2:]
    for request_id in failed:
        assert serving.result(request_id).reason == REASON_ERROR
        with pytest.raises(InjectedKernelError):
            serving.finish(request_id)
    solo, _ = serve_classify(engine, requests[2:], max_batch_size=1)
    for request_id, expected in zip(ok, solo):
        result = serving.finish(request_id)
        assert result.ok
        np.testing.assert_array_equal(result.logits, expected.logits)
    assert serving.stats.errors == 1


def test_retry_recovers_bit_identically():
    engine = make_lm_engine(2)
    rng = np.random.default_rng(2)
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(2, 8, size=4)]
    clean, _ = serve_streams(engine, prompts, 5, max_batch_size=2)

    plan = FaultPlan([Fault(kind="forward", at=0),
                      Fault(kind="forward", at=3)])
    serving, _ = make_reliable(engine, max_batch_size=2, faults=plan,
                               retries=2, retry_backoff=0.001)
    ids = [serving.open_stream(p, 5) for p in prompts]
    while serving.has_pending():
        serving.step()
    for request_id, expected in zip(ids, clean):
        result = serving.finish(request_id)
        assert result.ok
        np.testing.assert_array_equal(result.tokens, expected.tokens)
        np.testing.assert_array_equal(result.logits, expected.logits)
        assert_records_identical(result.records, expected.records)
        assert result.hardware == expected.hardware
    assert serving.stats.retries == 2 and serving.stats.errors == 2
    assert_no_leaks(serving)


@pytest.mark.parametrize("continuous", [False, True])
def test_exhausted_retries_fail_chunk_without_leaking(continuous):
    plan = FaultPlan([Fault(kind="forward", at=i) for i in range(4)])
    serving, _ = make_reliable(make_lm_engine(0), continuous=continuous,
                               faults=plan, retries=1)
    stream_id = serving.open_stream(np.arange(1, 6), 4)
    while serving.has_pending():
        serving.step()
    assert serving.result(stream_id).reason == REASON_ERROR
    with pytest.raises(InjectedKernelError):
        serving.finish(stream_id)
    assert_no_leaks(serving)


# ---------------------------------------------------------------------------
# health-checked routing
# ---------------------------------------------------------------------------

def make_routed(names_to_plans, clock, policy, fallbacks=None,
                continuous=False, generative=False, max_batch_size=1):
    engines = {}
    for name, plan in names_to_plans.items():
        inner = make_lm_engine(0) if generative \
            else make_classifier_engine(0)
        engines[name] = ServingEngine(
            inner, BatchPolicy(max_batch_size=max_batch_size,
                               max_wait=0.0),
            clock=lambda: clock[0], continuous=continuous, faults=plan,
            sleep=lambda s: None)
    return ModelRouter(engines, clock=lambda: clock[0], health=policy,
                       fallbacks=fallbacks)


def test_unknown_model_error_lists_mounted_names():
    clock = [0.0]
    router = make_routed({"alpha": None, "beta": None}, clock,
                         HealthPolicy())
    with pytest.raises(UnknownModelError) as excinfo:
        router.submit(np.arange(3), model="gamma")
    message = str(excinfo.value)
    assert "unknown model 'gamma'" in message
    assert "'alpha'" in message and "'beta'" in message


def test_serve_cli_unknown_model_exits_without_traceback(tmp_path):
    from repro.core import PrunedInferenceEngine
    from repro.serve.__main__ import (build_classifier_engine,
                                      main as serve_main)

    dirs = []
    for i in range(2):
        engine = build_classifier_engine(i)
        dirs.append(engine.save(str(tmp_path / f"m{i}")))
    with pytest.raises(SystemExit) as excinfo:
        serve_main(["--engine-dir", f"a={dirs[0]}",
                    "--engine-dir", f"b={dirs[1]}", "--model", "zzz"])
    message = str(excinfo.value)
    assert "unknown model 'zzz'" in message
    assert "'a'" in message and "'b'" in message
    # sanity: rebuilding from the snapshot really works
    assert PrunedInferenceEngine.from_directory(dirs[0]) is not None


def test_router_backoff_skips_engine_then_retries():
    clock = [0.0]
    policy = HealthPolicy(degraded_after=1, quarantine_after=3,
                          backoff_base=10.0, max_backoff=100.0)
    plan = FaultPlan([Fault(kind="forward", at=0)])
    router = make_routed({"m": plan}, clock, policy, max_batch_size=4)

    first = router.submit(np.arange(1, 6), model="m")
    assert router.step() == [first]      # forward faulted: typed error
    assert router.result(first).reason == REASON_ERROR
    assert router.health_states() == {"m": "degraded"}

    second = router.submit(np.arange(1, 6), model="m")
    clock[0] = 1.0
    assert router.step() == []           # inside backoff: engine skipped
    assert router.has_pending()

    clock[0] = 11.0                      # backoff elapsed: retried
    assert router.step() == [second]
    assert router.finish(second).ok
    assert router.health_states() == {"m": "healthy"}


def test_router_quarantine_reroutes_waiting_streams_to_fallback():
    clock = [0.0]
    policy = HealthPolicy(degraded_after=1, quarantine_after=1)
    plan = FaultPlan([Fault(kind="forward", at=i) for i in range(64)])
    router = make_routed({"bad": plan, "good": None}, clock, policy,
                         fallbacks={"bad": "good"}, continuous=True,
                         generative=True)
    rng = np.random.default_rng(5)
    prompts = [rng.integers(1, 40, size=4) for _ in range(3)]
    ids = [router.open_stream(p, 4, model="bad") for p in prompts]

    completed = router.step()            # slot 0 prefill faults ->
    assert ids[0] in completed           # quarantine + reroute the rest
    assert router.health_states()["bad"] == "quarantined"
    with pytest.raises(InjectedKernelError):
        router.finish(ids[0])

    while router.has_pending():
        router.step()
    for stream_id, prompt in zip(ids[1:], prompts[1:]):
        result = router.finish(stream_id)
        assert result.ok and len(result.tokens) == len(prompt) + 4
    # the rerouted streams really ran on the fallback engine
    assert router.engines["good"].stats.completed == 2
    assert router.engines["bad"].kv_slots_in_use() == 0

    # new traffic for the quarantined model silently lands on the
    # fallback too
    rerouted = router.open_stream(prompts[0], 2, model="bad")
    while router.has_pending():
        router.step()
    assert router.finish(rerouted).ok


def test_router_quarantine_without_fallback_fails_fast():
    clock = [0.0]
    policy = HealthPolicy(degraded_after=1, quarantine_after=1)
    plan = FaultPlan([Fault(kind="forward", at=i) for i in range(64)])
    router = make_routed({"bad": plan}, clock, policy, continuous=True,
                         generative=True)
    ids = [router.open_stream(np.arange(1, 5), 4, model="bad")
           for _ in range(3)]
    completed = router.step()
    # every stream terminated this step: the faulted one plus the
    # waiting work failed fast on quarantine -- nothing stalls
    assert sorted(completed) == sorted(ids)
    assert not router.has_pending()
    for stream_id in ids:
        assert router.result(stream_id).reason == REASON_ERROR

    # and new submissions fast-reject with a typed terminal error
    rejected = router.submit(np.arange(3), model="bad")
    assert rejected in router.step()
    with pytest.raises(Exception, match="quarantined"):
        router.finish(rejected)


def test_router_half_open_probe_reinstates_engine():
    clock = [0.0]
    policy = HealthPolicy(degraded_after=1, quarantine_after=1,
                          cooldown=5.0)
    plan = FaultPlan([Fault(kind="forward", at=0)])
    router = make_routed({"m": plan}, clock, policy, max_batch_size=4)
    doomed = router.submit(np.arange(1, 4), model="m")
    assert router.step() == [doomed]
    assert router.health_states() == {"m": "quarantined"}

    clock[0] = 6.0                       # cooldown elapsed: probe
    router.step()
    assert router.health_states() == {"m": "healthy"}
    request_id = router.submit(np.arange(1, 4), model="m")
    router.step()
    assert router.finish(request_id).ok


# ---------------------------------------------------------------------------
# chaos soak: typed termination, zero leaks, bit-identical replay
# ---------------------------------------------------------------------------

def run_generate_chaos(engine, prompts, plan, continuous, clock=None):
    clock = clock if clock is not None else [0.0]
    plan.sleeper = lambda seconds: clock.__setitem__(
        0, clock[0] + seconds)           # injected latency = virtual time
    serving = ServingEngine(
        engine, BatchPolicy(max_batch_size=3, max_wait=0.0),
        estimate_hardware=True, clock=lambda: clock[0],
        continuous=continuous, faults=plan, retries=1,
        sleep=lambda s: None)
    ids = []
    for i, prompt in enumerate(prompts):
        ttl = 0.4 if i % 3 == 0 else None
        ids.append(serving.open_stream(prompt, 6, ttl=ttl))
        clock[0] += 0.01
        serving.step()
    guard = 0
    while serving.has_pending():
        clock[0] += 0.01
        serving.step()
        guard += 1
        assert guard < 10_000, "chaos soak failed to drain"
    return serving, ids


@pytest.mark.parametrize("continuous", [False, True])
@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_soak_generate(continuous, seed):
    engine = make_lm_engine(seed)
    rng = np.random.default_rng(seed)
    prompts = [rng.integers(1, 40, size=int(n))
               for n in rng.integers(2, 9, size=9)]
    plan = FaultPlan.seeded(seed, forwards=5, latencies=4, horizon=40,
                            max_seconds=0.3)

    serving, ids = run_generate_chaos(engine, prompts, plan.reset(),
                                      continuous)
    # 1. every request reached a typed terminal state
    reasons = []
    for stream_id in ids:
        result = serving.result(stream_id)
        assert result is not None, f"stream {stream_id} never terminated"
        assert result.reason in KNOWN_REASONS
        reasons.append(result.reason)
    # 2. nothing leaked: no occupied KV slots, no queued work
    assert_no_leaks(serving)
    # 3. untouched requests are bit-identical to solo, fault-free runs
    solo, _ = serve_streams(engine, prompts, 6, max_batch_size=1)
    for stream_id, expected in zip(ids, solo):
        result = serving.result(stream_id)
        if result.reason == REASON_OK:
            np.testing.assert_array_equal(result.tokens, expected.tokens)
            np.testing.assert_array_equal(result.logits, expected.logits)
            assert_records_identical(result.records, expected.records)
            assert result.hardware == expected.hardware
    # 4. the same plan replays the same chaos bit-identically
    replay, replay_ids = run_generate_chaos(engine, prompts,
                                            plan.reset(), continuous)
    assert [replay.result(i).reason for i in replay_ids] == reasons
    for a, b in zip(ids, replay_ids):
        np.testing.assert_array_equal(serving.result(a).tokens,
                                      replay.result(b).tokens)
    assert replay.stats.errors == serving.stats.errors
    assert replay.stats.expired == serving.stats.expired


def test_latency_fault_trips_deadline_not_engine_error():
    """An injected scheduler stall must surface as the *deadline*
    terminal on TTL'd streams — latency is not an engine failure —
    while untouched streams finish ok, nothing leaks a KV slot, and
    the same plan replays the same outcome."""
    engine = make_lm_engine(0)
    rng = np.random.default_rng(7)
    prompts = [rng.integers(1, 40, size=4) for _ in range(3)]

    def run(plan):
        clock = [0.0]
        plan.sleeper = lambda seconds: clock.__setitem__(
            0, clock[0] + seconds)       # injected latency = virtual time
        serving = ServingEngine(
            engine, BatchPolicy(max_batch_size=3, max_wait=0.0),
            estimate_hardware=True, clock=lambda: clock[0],
            continuous=True, faults=plan, sleep=lambda s: None)
        doomed = [serving.open_stream(prompts[0], 20, ttl=0.5),
                  serving.open_stream(prompts[1], 20, ttl=0.5)]
        survivor = serving.open_stream(prompts[2], 4)
        while serving.has_pending():
            clock[0] += 0.01
            serving.step()
        return serving, doomed, survivor

    # the second step stalls 1 s — far past the 0.5 s TTLs
    plan = FaultPlan([Fault(kind="latency", at=1, seconds=1.0)])
    serving, doomed, survivor = run(plan.reset())
    assert len(plan.reset().faults) == 1

    doomed_tokens = []
    for stream_id in doomed:
        result = serving.result(stream_id)
        assert result.reason == REASON_DEADLINE      # NOT engine_error
        doomed_tokens.append(result.tokens)
        with pytest.raises(DeadlineExceeded):
            serving.finish(stream_id)
    assert serving.stats.errors == 0
    assert serving.stats.expired == 2

    result = serving.finish(survivor)
    assert result.ok and len(result.tokens) == len(prompts[2]) + 4
    solo, _ = serve_streams(engine, [prompts[2]], 4, max_batch_size=1)
    np.testing.assert_array_equal(result.tokens, solo[0].tokens)
    np.testing.assert_array_equal(result.logits, solo[0].logits)
    assert_no_leaks(serving)

    # replay: same plan, same chaos, bit-identical outcomes
    replay, replay_doomed, replay_survivor = run(plan.reset())
    assert [replay.result(i).reason for i in replay_doomed] \
        == [REASON_DEADLINE, REASON_DEADLINE]
    for expected, stream_id in zip(doomed_tokens, replay_doomed):
        np.testing.assert_array_equal(replay.result(stream_id).tokens,
                                      expected)
    assert replay.finish(replay_survivor).ok
    assert replay.stats.expired == serving.stats.expired
    assert_no_leaks(replay)


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_soak_classify(seed):
    engine = make_classifier_engine(seed)
    rng = np.random.default_rng(seed)
    requests = [rng.integers(0, 50, size=int(n))
                for n in rng.integers(1, 20, size=12)]
    plan = FaultPlan.seeded(100 + seed, forwards=3, horizon=12)
    clock = [0.0]
    serving = ServingEngine(
        engine, BatchPolicy(max_batch_size=2, max_wait=0.0),
        estimate_hardware=True, clock=lambda: clock[0], faults=plan,
        sleep=lambda s: None)
    ids = [serving.submit(r) for r in requests]
    serving.drain()
    solo, _ = serve_classify(engine, requests, max_batch_size=1)
    ok = errors = 0
    for request_id, expected in zip(ids, solo):
        result = serving.result(request_id)
        assert result is not None and result.reason in KNOWN_REASONS
        if result.ok:
            ok += 1
            np.testing.assert_array_equal(result.logits, expected.logits)
            assert result.hardware == expected.hardware
        else:
            errors += 1
    # every fired forward fault failed one whole batch (and only that
    # batch); the armed indices past the traffic's forward count stay
    # silent, which is fine — determinism is what's pinned
    fired = sum(1 for fault in plan.fired if fault.kind == "forward")
    assert fired >= 1
    assert serving.stats.errors == fired
    assert errors >= fired and ok + errors == len(ids)
    assert_no_leaks(serving)


# ---------------------------------------------------------------------------
# sweep crash recovery (worker death, torn saves)
# ---------------------------------------------------------------------------

def test_sweep_survives_worker_death(tmp_path):
    from repro.eval.store import WorkloadStore
    from repro.eval.sweep import run_sweep
    from repro.eval.workloads import TINY, get_workload

    store = WorkloadStore(tmp_path / "store")
    plan = FaultPlan([Fault(kind="worker", at=0,
                            target="memn2n/Task-1")])
    lines = []
    report = run_sweep(["memn2n/Task-1", "memn2n/Task-2"], TINY,
                       store=store, jobs=2, faults=plan,
                       echo=lines.append)
    assert report.failed == []
    finished = {o.workload for o in report.outcomes
                if o.status in ("trained", "cached")}
    assert finished == {"memn2n/Task-1", "memn2n/Task-2"}
    assert any(line.startswith("[retry]") for line in lines)
    for name in finished:
        assert store.contains(get_workload(name), TINY)
        assert store.load(get_workload(name), TINY) is not None


def test_sweep_gives_up_after_repeated_pool_breaks(tmp_path):
    from repro.eval.store import WorkloadStore
    from repro.eval.sweep import MAX_POOL_RETRIES, run_sweep
    from repro.eval.workloads import TINY

    store = WorkloadStore(tmp_path / "store")
    plan = FaultPlan([Fault(kind="worker", at=attempt,
                            target="memn2n/Task-1")
                      for attempt in range(MAX_POOL_RETRIES + 1)])
    report = run_sweep(["memn2n/Task-1"], TINY, store=store, jobs=2,
                       faults=plan)
    assert [o.workload for o in report.failed] == ["memn2n/Task-1"]
    assert "worker pool broke" in report.failed[0].error


def test_sweep_detects_torn_save_and_retrains(tmp_path):
    from repro.eval.store import WorkloadStore
    from repro.eval.sweep import run_sweep
    from repro.eval.workloads import TINY, get_workload

    store = WorkloadStore(tmp_path / "store")
    spec = get_workload("memn2n/Task-1")
    plan = FaultPlan([Fault(kind="save", at=0, target="memn2n/Task-1")])
    report = run_sweep(["memn2n/Task-1"], TINY, store=store, jobs=2,
                       faults=plan)
    assert [o.status for o in report.outcomes] == ["trained"]

    outcomes = store.verify()            # torn write flagged, no crash
    assert [o.status for o in outcomes] == ["corrupt"]
    assert "records.npz" in outcomes[0].detail

    assert store.load(spec, TINY) is None     # corrupt = cache miss
    assert not store.contains(spec, TINY)     # ...and invalidated
    healed = run_sweep(["memn2n/Task-1"], TINY, store=store, jobs=1)
    assert [o.status for o in healed.outcomes] == ["trained"]
    assert store.load(spec, TINY) is not None
    assert [o.status for o in store.verify()] == ["ok"]


def test_store_flags_partial_entry_json(tmp_path):
    import json
    import os

    from repro.eval.store import WorkloadStore
    from repro.eval.sweep import run_sweep
    from repro.eval.workloads import TINY

    store = WorkloadStore(tmp_path / "store")
    run_sweep(["memn2n/Task-1"], TINY, store=store, jobs=1)
    directory = os.path.join(store.root, store.entries()[0]["key"])
    entry_path = os.path.join(directory, "entry.json")
    with open(entry_path) as fh:
        entry = json.load(fh)
    del entry["history"], entry["records"]
    with open(entry_path, "w") as fh:
        json.dump(entry, fh)

    outcomes = store.verify()
    assert [o.status for o in outcomes] == ["corrupt"]
    assert "partial entry.json" in outcomes[0].detail
    assert "history" in outcomes[0].detail


# ---------------------------------------------------------------------------
# sweep progress / ETA
# ---------------------------------------------------------------------------

def test_progress_eta_scales_observed_rate_by_priors():
    import io

    from repro.eval.progress import SweepProgress

    stream = io.StringIO()
    names = ["memn2n/Task-1", "bert_large_glue/MNLI"]   # weights 1 + 7
    progress = SweepProgress(names, stream=stream, clock=lambda: 0.0)
    assert progress.eta_seconds() is None    # no evidence yet
    progress.start("memn2n/Task-1")
    progress.finish("memn2n/Task-1", seconds=2.0)
    # 2 s bought 1 unit; 7 units remain -> 14 s
    assert progress.eta_seconds() == pytest.approx(14.0)
    assert "1/2" in stream.getvalue()
    progress.finish("bert_large_glue/MNLI", seconds=13.0)
    assert progress.eta_seconds() == pytest.approx(0.0)
    progress.close()
    assert stream.getvalue().endswith("\n")


def test_progress_disabled_is_silent():
    import io

    from repro.eval.progress import SweepProgress

    stream = io.StringIO()
    progress = SweepProgress(["memn2n/Task-1"], enabled=False,
                             stream=stream)
    progress.start("memn2n/Task-1")
    progress.finish("memn2n/Task-1", seconds=1.0)
    progress.close()
    assert stream.getvalue() == ""


def test_sweep_drives_progress_events(tmp_path):
    import io

    from repro.eval.progress import SweepProgress
    from repro.eval.store import WorkloadStore
    from repro.eval.sweep import run_sweep
    from repro.eval.workloads import TINY

    store = WorkloadStore(tmp_path / "store")
    stream = io.StringIO()
    progress = SweepProgress(["memn2n/Task-1"], stream=stream,
                             clock=lambda: 0.0)
    run_sweep(["memn2n/Task-1"], TINY, store=store, progress=progress)
    assert progress.done == 1
    assert "1/1" in stream.getvalue()

    # a rerun reports the cache hit through the same progress surface
    cached = SweepProgress(["memn2n/Task-1"], stream=io.StringIO(),
                           clock=lambda: 0.0)
    run_sweep(["memn2n/Task-1"], TINY, store=store, progress=cached)
    assert cached.done == 1


def test_sweep_cli_has_no_progress_flag(capsys):
    from repro.eval.sweep import main as sweep_main

    with pytest.raises(SystemExit):
        sweep_main(["--no-progress", "--list", "--suite", "nope*"])
    assert sweep_main(["--no-progress", "--list",
                       "--suite", "memn2n"]) == 0
    out = capsys.readouterr().out
    assert "memn2n/Task-1" in out


# ---------------------------------------------------------------------------
# router front-door SLO admission
# ---------------------------------------------------------------------------

def test_router_admission_sheds_at_front_door():
    """A router given an ``SLOAdmission`` gate sheds doomed requests
    before they reach any engine queue: the caller gets a typed
    ``shed_overload`` result instantly and the engine's backlog never
    grows."""
    from repro.obs import MetricsRegistry
    from repro.serve import SLOAdmission

    clock = [0.0]
    engine = ServingEngine(
        make_classifier_engine(0),
        BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=lambda: clock[0], name="cls")
    registry = MetricsRegistry()
    router = ModelRouter(
        {"cls": engine}, clock=lambda: clock[0], registry=registry,
        admission=SLOAdmission(ttft_target=1e-6, step_time=1.0))
    rng = np.random.default_rng(0)
    request_id = router.submit(rng.integers(0, 50, size=5))
    assert engine.queue_depth() == 0       # never enqueued
    assert router.step() == [request_id]
    result = router.result(request_id)
    assert result.reason == REASON_SHED
    with pytest.raises(ShedOverload):
        router.finish(request_id)
    snap = registry.snapshot()
    rows = snap["repro_router_admission_shed_total"]["series"]
    assert sum(row["value"] for row in rows) == 1


def test_router_admission_sheds_streams_on_tbt_target():
    """A between-token target below the step time is unattainable for
    any stream (decode emits one token per step), so streams shed
    regardless of load while classify traffic still passes."""
    from repro.serve import SLOAdmission

    clock = [0.0]
    engine = ServingEngine(
        make_lm_engine(0),
        BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=lambda: clock[0], continuous=True, name="lm")
    router = ModelRouter(
        {"lm": engine}, clock=lambda: clock[0],
        admission=SLOAdmission(tbt_target=1e-6, step_time=1.0))
    stream = router.open_stream(np.arange(1, 5), max_new_tokens=4)
    router.step()
    assert router.result(stream).reason == REASON_SHED


def test_router_permissive_admission_serves_normally():
    """A loose SLO admits everything — results match a router with no
    admission gate bit for bit."""
    from repro.serve import SLOAdmission

    def run(admission):
        clock = [0.0]
        engine = ServingEngine(
            make_classifier_engine(0),
            BatchPolicy(max_batch_size=4, max_wait=0.0),
            clock=lambda: clock[0], name="cls")
        router = ModelRouter({"cls": engine}, clock=lambda: clock[0],
                             admission=admission)
        rng = np.random.default_rng(7)
        ids = [router.submit(rng.integers(0, 50, size=6))
               for _ in range(5)]
        router.drain()
        return [router.finish(i) for i in ids]

    gated = run(SLOAdmission(ttft_target=1e6, step_time=1e-9))
    open_door = run(None)
    for a, b in zip(gated, open_door):
        assert a.reason == REASON_OK
        assert a.prediction == b.prediction
        np.testing.assert_array_equal(a.logits, b.logits)
