"""Hardware model: bit-serial kernels (pluggable backends), tile
simulator, energy & area."""

from .area import AreaBreakdown, AreaModel
from .backends import (KernelBackend, get_backend, list_backends,
                       register_backend)
from .bitserial import (bitserial_cycles_matrix, bitserial_dot_product,
                        serial_cycle_count)
from .config import AE_LEOPARD, HP_LEOPARD, TileConfig, baseline_like
from .energy import EnergyBreakdown, EnergyModel
from .tile import TileCounters, TileRunResult, TileSimulator
from .trace import PipelineTrace, trace_job
from .workload import HeadJob, job_from_arrays, jobs_from_records

__all__ = ["bitserial_dot_product", "bitserial_cycles_matrix",
           "serial_cycle_count", "TileConfig", "AE_LEOPARD", "HP_LEOPARD",
           "baseline_like", "TileSimulator", "TileRunResult", "TileCounters",
           "EnergyModel", "EnergyBreakdown", "AreaModel", "AreaBreakdown",
           "HeadJob", "job_from_arrays", "jobs_from_records", "trace_job",
           "PipelineTrace", "KernelBackend", "register_backend",
           "get_backend", "list_backends"]
