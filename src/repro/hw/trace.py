"""Per-cycle pipeline trace of one head job on a small tile.

Demo/debug aid: rows issue in order, a row's keys spread round-robin
over the QK DPU lanes, lanes re-sync at row boundaries (double-buffered
issue), and the V-PU consumes completed rows.  Intended for tiny jobs;
the benchmark path uses :class:`~repro.hw.tile.TileSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitserial import bitserial_cycles_matrix
from .config import TileConfig
from .workload import HeadJob


@dataclass
class PipelineTrace:
    lane_timelines: list[str]
    vpu_timeline: str
    total_cycles: int

    def render(self) -> str:
        width = self.total_cycles
        lines = []
        for lane, timeline in enumerate(self.lane_timelines):
            lines.append(f"  QK-DPU{lane} | {timeline.ljust(width, '.')}")
        lines.append(f"  V-PU    | {self.vpu_timeline.ljust(width, '.')}")
        return "\n".join(lines)


def trace_job(job: HeadJob, config: TileConfig) -> PipelineTrace:
    cycles, pruned, _ = bitserial_cycles_matrix(
        job.queries, job.keys, job.threshold,
        config.magnitude_bits, config.serial_bits, valid=job.valid,
        backend=config.kernel_backend)
    num_rows, num_keys = job.shape
    lanes = config.num_qk_dpus
    lane_timelines = ["" for _ in range(lanes)]
    vpu_timeline = ""
    vpu_free_at = 0

    for row in range(num_rows):
        # lanes re-sync at row boundaries; stalls render as 's'
        row_start = max(len(t) for t in lane_timelines)
        for lane in range(lanes):
            lane_timelines[lane] = lane_timelines[lane].ljust(row_start, "s")
        for key in np.nonzero(job.valid[row])[0]:
            lane = int(key) % lanes
            lane_timelines[lane] += str(int(key) % 10) * int(cycles[row, key])
        row_done = max(len(t) for t in lane_timelines)
        survivors = int((job.valid[row] & ~pruned[row]).sum())
        busy = config.softmax_latency + survivors * config.vpu_cycles_per_score
        start = max(row_done, vpu_free_at)
        vpu_timeline = vpu_timeline.ljust(start, ".") + "x" * busy
        vpu_free_at = start + busy

    return PipelineTrace(
        lane_timelines=lane_timelines,
        vpu_timeline=vpu_timeline,
        total_cycles=max(vpu_free_at,
                         max(len(t) for t in lane_timelines)),
    )
