"""Cycle-level tile simulator (paper §4): N_QK bit-serial front-end
DPUs feeding a softmax + xV back-end (V-PU).

The simulator is fully array-based: per job it runs the vectorized
bit-plane kernel once, then schedules rows across DPU lanes and the
V-PU with whole-array reductions — no per-score Python work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .backends import KernelJob, PlaneGroupCache, get_backend, run_many
from .bitserial import serial_cycle_count
from .config import TileConfig
from .workload import HeadJob


@dataclass
class TileCounters:
    """Activity counters consumed by the energy model."""

    scores_total: int = 0          # valid score positions
    scores_pruned: int = 0         # dropped by the learned threshold
    survivors: int = 0             # scores reaching the back end
    qk_lane_cycles: int = 0        # DPU-cycles across all lanes
    qk_bits_processed: int = 0     # K bit-planes consumed
    rows: int = 0                  # query rows with any valid score
    vpu_busy_cycles: int = 0
    runtime_cycles: int = 0        # tile-clock cycles (for leakage)

    def add(self, other: "TileCounters") -> None:
        for name in vars(self):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class TileRunResult:
    config: TileConfig
    total_cycles: int
    frontend_cycles: int
    backend_cycles: int
    frontend_stall_cycles: int
    counters: TileCounters
    jobs: int

    @property
    def pruning_rate(self) -> float:
        return self.counters.scores_pruned / max(self.counters.scores_total,
                                                 1)

    @property
    def vpu_utilization(self) -> float:
        """Back-end demand per front-end cycle; > 1 means the V-PU is
        over-subscribed and throttles the tile."""
        return self.backend_cycles / max(self.frontend_cycles, 1)

    @property
    def runtime_ns(self) -> float:
        return self.total_cycles / self.config.frequency_ghz


class TileSimulator:
    def __init__(self, config: TileConfig, backend: str | None = None,
                 pack_cache: PlaneGroupCache | None = None,
                 profiler=None):
        """``backend`` overrides the kernel backend by registry name;
        otherwise ``config.kernel_backend``, then the
        ``REPRO_KERNEL_BACKEND`` environment variable, decide (see
        :mod:`repro.hw.backends`).  Resolution happens here so a typo
        fails at construction, not mid-run.

        ``pack_cache`` shares a pack-once plane-group cache across
        runs (the serving engines pass a per-engine cache so decode
        steps reuse packed keys); by default each simulator gets its
        own, which still captures the growing-K reuse *within* one
        job list.  Jobs opt in by carrying a ``pack_key`` in their
        metadata; backends without a fused tier ignore the cache.

        ``profiler`` (a :class:`repro.obs.KernelProfiler`) opts into
        timing each fused kernel dispatch: backend name, wall time,
        and how many jobs / distinct plane groups rode the call.
        """
        self.config = config
        self.backend = get_backend(backend or config.kernel_backend)
        self.pack_cache = (PlaneGroupCache() if pack_cache is None
                           else pack_cache)
        self.profiler = profiler

    # -- batched kernel dispatch ----------------------------------------
    def _kernel_many(self, jobs: list[HeadJob], quants: list):
        """One ``run_many`` call over every early-termination kernel
        job in the list — fused backends amortize pack/GEMM overhead
        across the whole step."""
        config = self.config
        if not config.early_termination:
            return [None] * len(jobs)
        kernel_jobs = [
            KernelJob(q=q, k=k, threshold=threshold,
                      magnitude_bits=config.magnitude_bits,
                      group=config.serial_bits, valid=job.valid,
                      pack_key=job.metadata.get("pack_key"))
            for job, (q, k, threshold) in zip(jobs, quants)]
        if self.profiler is None:
            return run_many(self.backend, kernel_jobs,
                            cache=self.pack_cache)
        from time import perf_counter
        start = perf_counter()
        results = run_many(self.backend, kernel_jobs,
                           cache=self.pack_cache)
        elapsed = perf_counter() - start
        groups = len({job.pack_key for job in kernel_jobs})
        self.profiler.record(self.backend.name, jobs=len(kernel_jobs),
                             groups=groups, elapsed_s=elapsed)
        return results

    # -- per-job scheduling, all whole-array ops ------------------------
    def _job_activity(self, job: HeadJob, quant, kernel):
        config = self.config
        q, k, threshold = quant
        valid = job.valid
        full = serial_cycle_count(config.qk_bits, config.serial_bits)

        if kernel is not None:
            cycles, pruned, scores = kernel
        else:
            cycles = np.where(valid, full, 0)
            scores = (q.astype(np.float64) @ k.T.astype(np.float64))
            pruned = scores < threshold

        pruned_valid = pruned & valid
        if config.runtime_pruning:
            # the back end's running-max register always survives, so a
            # row is never pruned empty — same semantics as the model's
            # HARD mode (models/attention.py)
            masked = np.where(valid, scores, -np.inf)
            is_row_max = valid & (masked == masked.max(axis=1,
                                                       keepdims=True))
            surviving = valid & (~pruned_valid | is_row_max)
        else:
            surviving = valid

        active_rows = valid.any(axis=1)
        # front end: keys of a row round-robin over N_QK lanes
        row_lane_cycles = cycles.sum(axis=1)
        fe_rows = np.ceil(row_lane_cycles / config.num_qk_dpus)
        # back end: per-row softmax pipeline + per-survivor xV work
        be_rows = np.where(
            active_rows,
            config.softmax_latency
            + surviving.sum(axis=1) * config.vpu_cycles_per_score,
            0)

        fe_total = int(fe_rows.sum())
        be_total = int(be_rows.sum())
        # jobs stream back-to-back through the tile; the pipeline-fill
        # latency is charged once per run, not per job
        total = max(fe_total, be_total)

        # the last cycle of a full schedule may carry fewer planes than
        # serial_bits (e.g. 9 bits in 5x2 cycles), so cap per score
        bits_processed = np.minimum(cycles * config.serial_bits,
                                    config.qk_bits)
        counters = TileCounters(
            scores_total=int(valid.sum()),
            scores_pruned=int(pruned_valid.sum()),
            survivors=int(surviving.sum()),
            qk_lane_cycles=int(cycles.sum()),
            qk_bits_processed=int(bits_processed.sum()),
            rows=int(active_rows.sum()),
            vpu_busy_cycles=be_total,
            runtime_cycles=total,
        )
        return total, fe_total, be_total, counters

    def run_job(self, job: HeadJob) -> TileRunResult:
        return self.run([job])

    def run(self, jobs: list[HeadJob]) -> TileRunResult:
        counters = TileCounters()
        total = fe_all = be_all = stall = 0
        quants = [job.quantized_for(self.config.magnitude_bits)
                  for job in jobs]
        kernels = self._kernel_many(jobs, quants)
        for job, quant, kernel in zip(jobs, quants, kernels):
            job_total, fe, be, job_counters = self._job_activity(
                job, quant, kernel)
            total += job_total
            fe_all += fe
            be_all += be
            stall += max(0, be - fe)
            counters.add(job_counters)
        if jobs:
            fill = (self.config.full_score_cycles()
                    + self.config.softmax_latency)
            total += fill
            counters.runtime_cycles += fill
        return TileRunResult(
            config=self.config, total_cycles=total,
            frontend_cycles=fe_all, backend_cycles=be_all,
            frontend_stall_cycles=stall, counters=counters,
            jobs=len(jobs))
