"""Shared packed-bitplane machinery for fused kernel backends.

Two pieces live here, used by ``numpy-packed`` and the optional
``torch`` backend:

**Pack-once plane-group caches.**  :func:`pack_planes` turns a key
matrix into the ``(cycles + 1, S_k, D)`` plane-group stack the fused
GEMM consumes, and :class:`PlaneGroupCache` memoizes those stacks
under a caller-supplied identity (stream/layer/head).  During decode K
only grows by a suffix, so the cache packs just the new rows and
concatenates; reuse is validated by exact key comparison (full prefix
``array_equal``), so a changed K — a re-quantization after the peak
|K| moved, a preemption swap — can never serve stale planes: it simply
repacks.

**Cross-job fused evaluation.**  :func:`fused_matrix_many` evaluates a
whole batch of :class:`~repro.hw.backends.KernelJob` tiles through
*one* batched GEMM per shape band instead of one GEMM per job.  Jobs
are grouped by everything that must match for the plane schedule to be
shared — head-dim, magnitude bits, plane-group width, margin scale —
then banded by power-of-two (S_q, S_k) buckets and zero-padded to the
band's actual maximum, which makes the batch block-diagonal: a single
stacked ``(n, S_q, D) @ (n, D, rows)`` matmul does exactly the useful
per-job products (padding waste is bounded by the pow2 bucketing,
< 4x worst case and near zero on uniform serving mixes) rather than
the n-fold cross-job waste a dense concatenated GEMM would pay.  The
margin/termination scan then runs once over the whole padded band with
a per-job threshold column, and per-job tiles are sliced back out.

Bit-identity is free by construction: every product and partial sum is
an exact integer inside the float32 (< 2**24) / float64 / int32
windows the dtype selection proves, so fusing, padding with zero
rows, or switching scan dtype cannot change a single output bit
relative to the per-job ``matrix`` loop.  ``tests/test_fused.py`` pins
this on randomized mixed-shape job sets.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..bitserial import _plane_schedule

# float32 keeps integers exact below 2^24; int32 is safe while
# |partial| + |margin| stays below 2^31 (we require < 2^30 each)
_F32_EXACT = 1 << 24
_I32_SAFE = 1 << 30

# batched-chunk sizing: bound the MACs and operand elements of one
# stacked matmul so paper-scale tiles degrade to per-job chunks (where
# fusion has nothing to amortize) and serving-shaped bands never
# allocate unreasonable intermediates
_MAX_CHUNK_MACS = 1 << 27
_MAX_CHUNK_ELEMENTS = 1 << 24

# gemm(a, b) -> a @ b^T over the last two axes, for stacked
# (n, M, D) x (n, R, D) -> (n, M, R) operands; backends supply the
# matmul (numpy BLAS, torch / GPU) and this module everything else
BatchedGemm = Callable[[np.ndarray, np.ndarray], np.ndarray]


def numpy_batched_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The numpy implementation of the :data:`BatchedGemm` contract."""
    return np.matmul(a, b.swapaxes(-1, -2))


@dataclass(frozen=True)
class PlaneSpec:
    """Derived plane-schedule constants for a (magnitude_bits, group)
    pair — everything the packed kernels need besides the data."""

    magnitude_bits: int
    group: int
    # (count of magnitude planes, lowest plane) per DPU cycle
    cycle_groups: tuple[tuple[int, int], ...]
    # the cycles that carry magnitude planes, in schedule order
    mag_groups: tuple[tuple[int, int], ...]
    full_cycles: int
    group_max: int

    @property
    def n_groups(self) -> int:
        return len(self.mag_groups)


_SPECS: dict[tuple[int, int], PlaneSpec] = {}


def plane_spec(magnitude_bits: int, group: int) -> PlaneSpec:
    """Memoized :class:`PlaneSpec` for a schedule shape."""
    key = (magnitude_bits, group)
    spec = _SPECS.get(key)
    if spec is None:
        schedule = _plane_schedule(magnitude_bits, group)
        cycle_groups = []
        for chunk in schedule:
            planes = [p for p in chunk if p >= 0]
            cycle_groups.append((len(planes), planes[-1] if planes else 0))
        mag_groups = tuple((n, lo) for n, lo in cycle_groups if n)
        group_max = max((((1 << n) - 1) << lo for n, lo in mag_groups),
                        default=0)
        spec = PlaneSpec(magnitude_bits, group, tuple(cycle_groups),
                         mag_groups, len(schedule), group_max)
        _SPECS[key] = spec
    return spec


def pack_planes(k: np.ndarray, spec: PlaneSpec) -> np.ndarray:
    """Pack a key matrix into its plane-group stack.

    Returns ``(n_groups + 1, s_k, dim)``: one per-cycle plane-group
    value matrix per magnitude cycle, the sign plane last.  Stored in
    float32 whenever plane values fit its exact-integer window (always
    true for magnitude_bits < 24) so cached stacks feed float32 GEMMs
    without conversion; the float64 upcast for huge-query chunks is
    exact either way.
    """
    k = np.asarray(k, dtype=np.int64)
    signs = np.sign(k)
    # sign bit above the magnitudes; masking matches the reference,
    # which only ever reads the magnitude_bits planes of an
    # out-of-range key
    field_mask = (np.int64(1) << spec.magnitude_bits) - 1
    words = np.where(signs < 0, np.int64(1) << spec.magnitude_bits,
                     np.int64(0)) | (np.abs(k) & field_mask)
    dtype = np.float32 if spec.group_max < _F32_EXACT else np.float64
    s_k, dim = k.shape
    stacked = np.empty((spec.n_groups + 1, s_k, dim), dtype=dtype)
    for index, (n, lo) in enumerate(spec.mag_groups):
        field = (words >> lo) & ((np.int64(1) << n) - 1)
        np.multiply(signs * field, np.int64(1) << lo,
                    out=stacked[index], casting="unsafe")
    stacked[spec.n_groups] = signs
    return stacked


@dataclass
class _CacheEntry:
    spec: PlaneSpec
    keys: np.ndarray      # int64 copy of the packed K, for validation
    stacked: np.ndarray   # pack_planes(keys, spec)


class PlaneGroupCache:
    """Pack-once plane-group cache keyed by stream/layer/head identity.

    ``planes_for(key, k, spec)`` returns the packed stack for ``k``,
    reusing a cached stack when the key matrix is unchanged and
    packing only the new suffix rows when K merely grew (the decode
    case).  Reuse is gated on exact ``array_equal`` prefix
    validation — any other change (re-quantization, truncation,
    preemption swap-in) is a miss and repacks, so stale planes are
    impossible by construction.  Entries are LRU-bounded.

    ``counters`` optionally mirrors the tallies into live metrics: a
    mapping with ``"hit"``/``"extend"``/``"miss"`` values exposing
    ``inc()`` (:class:`repro.obs.Counter` instances in practice — the
    serving engine binds ``repro_pack_cache_events_total`` series and
    hands them in, keeping this module free of any obs import).
    """

    def __init__(self, max_entries: int = 256, counters=None):
        self.max_entries = max_entries
        self._entries: OrderedDict[Any, _CacheEntry] = OrderedDict()
        self.hits = 0
        self.extended = 0
        self.misses = 0
        self.counters = counters

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters (a fresh cache)."""
        self._entries.clear()
        self.hits = self.extended = self.misses = 0

    def stats(self) -> dict[str, int]:
        """Counters: exact hits, suffix extensions, full repacks."""
        return {"hits": self.hits, "extended": self.extended,
                "misses": self.misses, "entries": len(self._entries)}

    def planes_for(self, key: Any, k: np.ndarray,
                   spec: PlaneSpec) -> np.ndarray:
        k = np.asarray(k, dtype=np.int64)
        entry = self._entries.get(key)
        if (entry is not None and entry.spec is spec
                and k.ndim == 2 and entry.keys.shape[1] == k.shape[1]):
            old_rows = entry.keys.shape[0]
            if old_rows == k.shape[0] and np.array_equal(entry.keys, k):
                self.hits += 1
                if self.counters is not None:
                    self.counters["hit"].inc()
                self._entries.move_to_end(key)
                return entry.stacked
            if 0 < old_rows < k.shape[0] and np.array_equal(
                    entry.keys, k[:old_rows]):
                suffix = pack_planes(k[old_rows:], spec)
                entry.stacked = np.concatenate(
                    [entry.stacked, suffix], axis=1)
                entry.keys = k.copy()
                self.extended += 1
                if self.counters is not None:
                    self.counters["extend"].inc()
                self._entries.move_to_end(key)
                return entry.stacked
        self.misses += 1
        if self.counters is not None:
            self.counters["miss"].inc()
        stacked = pack_planes(k, spec)
        self._entries[key] = _CacheEntry(spec=spec, keys=k.copy(),
                                         stacked=stacked)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return stacked


@dataclass
class _Prepared:
    index: int
    job: Any
    q: np.ndarray
    k: np.ndarray
    qmax: int


def _empty_result(job, s_q: int, s_k: int):
    cycles = np.zeros((s_q, s_k), dtype=np.int64)
    pruned = np.zeros((s_q, s_k), dtype=bool)
    scores = np.zeros((s_q, s_k), dtype=np.float64)
    if job.valid is not None:
        cycles = np.where(job.valid, cycles, 0)
    return cycles, pruned, scores


def fused_matrix_many(jobs, gemm: BatchedGemm,
                      cache: PlaneGroupCache | None = None) -> list:
    """Evaluate a batch of kernel jobs via banded block-diagonal GEMMs.

    Returns one ``(cycles, pruned, scores)`` triple per job, in input
    order, bit-identical to calling the packed ``matrix`` per job.
    """
    jobs = list(jobs)
    results: list = [None] * len(jobs)

    # group by everything the plane schedule and scan must share
    groups: dict[tuple, list[_Prepared]] = {}
    for index, job in enumerate(jobs):
        q = np.asarray(job.q, dtype=np.int64)
        k = np.asarray(job.k, dtype=np.int64)
        s_q, s_k = q.shape[0], k.shape[0]
        if s_q == 0 or s_k == 0:
            results[index] = _empty_result(job, s_q, s_k)
            continue
        prep = _Prepared(index, job, q, k,
                         int(np.abs(q).max()) if q.size else 0)
        gkey = (q.shape[1], job.magnitude_bits, job.group,
                float(job.margin_scale))
        groups.setdefault(gkey, []).append(prep)

    for (dim, magnitude_bits, group, margin_scale), preps in \
            groups.items():
        spec = plane_spec(magnitude_bits, group)
        # pow2 shape bands bound padding waste; ascending S_k order
        # keeps same-key growing-K jobs hitting the pack cache in
        # prefix order
        bands: dict[tuple[int, int], list[_Prepared]] = {}
        for prep in preps:
            bkey = (1 << (prep.q.shape[0] - 1).bit_length(),
                    1 << (prep.k.shape[0] - 1).bit_length())
            bands.setdefault(bkey, []).append(prep)
        staged: list[_StagedChunk] = []
        for bkey in sorted(bands, key=lambda b: (b[1], b[0])):
            band = bands[bkey]
            s_q_pad = max(p.q.shape[0] for p in band)
            s_k_pad = max(p.k.shape[0] for p in band)
            rows_pad = (spec.n_groups + 1) * s_k_pad
            macs = s_q_pad * max(dim, 1) * (rows_pad + s_k_pad)
            elements = max(rows_pad * max(dim, 1), 1)
            per_chunk = max(1, min(_MAX_CHUNK_MACS // max(macs, 1),
                                   _MAX_CHUNK_ELEMENTS // elements))
            for start in range(0, len(band), per_chunk):
                staged.append(_stage_chunk(
                    band[start:start + per_chunk], spec, dim,
                    s_q_pad, s_k_pad, gemm, cache))
        # one margin/termination scan over every chunk's concatenated
        # (padded) score lanes — the scan cost no longer multiplies
        # with the number of shape bands
        _scan_group(staged, spec, margin_scale, results)
    return results


def _job_planes(prep: _Prepared, spec: PlaneSpec,
                cache: PlaneGroupCache | None) -> np.ndarray:
    key = getattr(prep.job, "pack_key", None)
    if cache is not None and key is not None:
        return cache.planes_for(key, prep.k, spec)
    return pack_planes(prep.k, spec)


@dataclass
class _StagedChunk:
    preps: list[_Prepared]
    s_q_pad: int
    s_k_pad: int
    fused: np.ndarray       # (n, s_q_pad, n_groups + 1, s_k_pad)
    positive: np.ndarray    # (n, s_q_pad, s_k_pad), gemm dtype
    thresholds: np.ndarray  # (n,), float64
    qmax: int


def _stage_chunk(chunk: list[_Prepared], spec: PlaneSpec, dim: int,
                 s_q_pad: int, s_k_pad: int, gemm: BatchedGemm,
                 cache: PlaneGroupCache | None) -> _StagedChunk:
    n = len(chunk)
    n_groups = spec.n_groups
    rows_pad = (n_groups + 1) * s_k_pad
    qmax = max(p.qmax for p in chunk)
    # max(..., 2) also covers the |q|@|s| + q@s sum inside `positive`
    f32_ok = qmax * max(spec.group_max, 2) * max(dim, 1) < _F32_EXACT
    gemm_dtype = np.float32 if f32_ok else np.float64

    use_cache = cache is not None and any(
        getattr(p.job, "pack_key", None) is not None for p in chunk)
    if n == 1 and chunk[0].q.shape[0] == s_q_pad \
            and chunk[0].k.shape[0] == s_k_pad:
        # solo fast path: no padding, the plane stack feeds the GEMM
        # as a reshape view instead of a copy
        stacked = _job_planes(chunk[0], spec, cache)
        if stacked.dtype != gemm_dtype:
            stacked = stacked.astype(gemm_dtype)
        q_stack = chunk[0].q.astype(gemm_dtype)[None]
        plane_stack = stacked.reshape(1, rows_pad, dim)
        abs_sign_stack = np.abs(stacked[n_groups])[None]
    elif use_cache:
        # cached path: per-job plane stacks come from the pack-once
        # cache (exact hit or suffix extension) and are copied into
        # the padded band
        q_stack = np.zeros((n, s_q_pad, dim), dtype=gemm_dtype)
        plane_stack = np.zeros((n, rows_pad, dim), dtype=gemm_dtype)
        abs_sign_stack = np.zeros((n, s_k_pad, dim), dtype=gemm_dtype)
        for i, prep in enumerate(chunk):
            s_q, s_k = prep.q.shape[0], prep.k.shape[0]
            stacked = _job_planes(prep, spec, cache)
            q_stack[i, :s_q] = prep.q
            view = plane_stack[i].reshape(n_groups + 1, s_k_pad, dim)
            view[:, :s_k] = stacked
            abs_sign_stack[i, :s_k] = np.abs(stacked[n_groups])
    else:
        # cacheless path: pack the whole padded band in one set of
        # vectorized plane extractions instead of per-job passes
        # (zero-padded K rows pack to all-zero planes, so padding
        # falls out of the same ops)
        # int32 staging halves pack bandwidth, but only while the
        # downcast can't clip sign or masked magnitude bits
        kmax = max(max(int(p.k.max()), -int(p.k.min()))
                   if p.k.size else 0 for p in chunk)
        key_dtype = (np.int32 if spec.magnitude_bits <= 24
                     and kmax < _I32_SAFE else np.int64)
        q_stack = np.zeros((n, s_q_pad, dim), dtype=gemm_dtype)
        k_stack = np.zeros((n, s_k_pad, dim), dtype=key_dtype)
        for i, prep in enumerate(chunk):
            q_stack[i, :prep.q.shape[0]] = prep.q
            k_stack[i, :prep.k.shape[0]] = prep.k
        signs = np.sign(k_stack)
        field_mask = key_dtype((1 << spec.magnitude_bits) - 1)
        words = np.where(signs < 0,
                         key_dtype(1 << spec.magnitude_bits),
                         key_dtype(0)) | (np.abs(k_stack) & field_mask)
        plane_stack = np.empty((n, rows_pad, dim), dtype=gemm_dtype)
        view = plane_stack.reshape(n, n_groups + 1, s_k_pad, dim)
        field = np.empty_like(words)
        for idx, (n_planes, lo) in enumerate(spec.mag_groups):
            np.right_shift(words, lo, out=field)
            np.bitwise_and(field, key_dtype((1 << n_planes) - 1),
                           out=field)
            np.multiply(field, signs, out=field)
            np.multiply(field, key_dtype(1) << lo,
                        out=view[:, idx], casting="unsafe")
        view[:, n_groups] = signs
        abs_sign_stack = np.abs(signs).astype(gemm_dtype)

    big = gemm(q_stack, plane_stack)
    abs_big = gemm(np.abs(q_stack), abs_sign_stack)
    fused = big.reshape(n, s_q_pad, n_groups + 1, s_k_pad)

    # margin base: sum of q*sign over dims where the product can push
    # the score up = (|q| @ |s|^T + q @ s^T) / 2, all integer-exact
    positive = (abs_big + fused[:, :, n_groups]) * 0.5

    thresholds = np.array([float(p.job.threshold) for p in chunk])
    return _StagedChunk(chunk, s_q_pad, s_k_pad, fused, positive,
                        thresholds, qmax)


def _scan_group(staged: list[_StagedChunk], spec: PlaneSpec,
                margin_scale: float, results: list) -> None:
    n_groups = spec.n_groups
    qmax = max(st.qmax for st in staged)
    dim = staged[0].preps[0].q.shape[1]
    margin_bound = (qmax * max(dim, 1)
                    * max((1 << spec.magnitude_bits) - 1, 1))
    int_scan = (margin_scale == 1.0 and margin_bound < _I32_SAFE)
    if int_scan:
        for st in staged:
            if not (np.isfinite(st.thresholds).all()
                    and (np.abs(st.thresholds) < _I32_SAFE).all()):
                int_scan = False
                break
    if int_scan:
        scan_dtype = np.int32
    else:
        scan_dtype = np.float64

    # concatenate every chunk's (padded) score lanes into flat scan
    # arrays: one fused cast-copy per plane row per chunk, then a
    # single scan regardless of how many shape bands the group split
    # into
    total = sum(len(st.preps) * st.s_q_pad * st.s_k_pad
                for st in staged)
    plane_flat = np.empty((n_groups, total), dtype=scan_dtype)
    positive_flat = np.empty(total, dtype=scan_dtype)
    th_flat = np.empty(total, dtype=scan_dtype)
    offset = 0
    for st in staged:
        n, sqp, skp = len(st.preps), st.s_q_pad, st.s_k_pad
        pairs = n * sqp * skp
        shape = (n, sqp, skp)
        for g in range(n_groups):
            np.copyto(plane_flat[g, offset:offset + pairs]
                      .reshape(shape), st.fused[:, :, g, :],
                      casting="unsafe")
        np.copyto(positive_flat[offset:offset + pairs].reshape(shape),
                  st.positive, casting="unsafe")
        if int_scan:
            # lhs is an exact integer, so lhs < th  <=>  lhs < ceil(th)
            th_scan = np.ceil(st.thresholds).astype(np.int32)
        else:
            th_scan = st.thresholds
        np.copyto(th_flat[offset:offset + pairs].reshape(shape),
                  th_scan[:, None, None], casting="unsafe")
        offset += pairs

    partial = np.zeros(total, dtype=scan_dtype)
    margin_buf = np.empty(total, dtype=scan_dtype)
    below = np.empty(total, dtype=bool)
    terminated = np.zeros(total, dtype=bool)
    terminated_cycles = np.zeros(total, dtype=np.int8)
    remaining = spec.magnitude_bits
    cursor = 0
    for cycle_index, (n_planes, _) in enumerate(spec.cycle_groups,
                                                start=1):
        if n_planes:
            np.add(partial, plane_flat[cursor], out=partial)
            cursor += 1
            remaining -= n_planes
        if cycle_index == spec.full_cycles:
            break
        np.multiply(positive_flat, (1 << remaining) - 1,
                    out=margin_buf)
        if margin_scale != 1.0:
            np.multiply(margin_buf, margin_scale, out=margin_buf)
        np.add(margin_buf, partial, out=margin_buf)
        np.less(margin_buf, th_flat, out=below)
        np.logical_or(terminated, below, out=terminated)
        # a score terminated by cycle c contributes 1 for every later
        # boundary, so cycles = full - sum(terminated-by) recovers the
        # first-termination cycle (and full for survivors)
        np.add(terminated_cycles, terminated, out=terminated_cycles,
               casting="unsafe")

    offset = 0
    for st in staged:
        sqp, skp = st.s_q_pad, st.s_k_pad
        for i, prep in enumerate(st.preps):
            s_q, s_k = prep.q.shape[0], prep.k.shape[0]
            threshold = float(prep.job.threshold)
            base = offset + i * sqp * skp
            tile = slice(base, base + sqp * skp)
            scores = (partial[tile].reshape(sqp, skp)[:s_q, :s_k]
                      .astype(np.float64))
            cycles = (spec.full_cycles
                      - terminated_cycles[tile].reshape(sqp, skp)
                      [:s_q, :s_k]).astype(np.int64)
            pruned = (terminated[tile].reshape(sqp, skp)[:s_q, :s_k]
                      | (scores < threshold))
            if prep.job.valid is not None:
                cycles = np.where(prep.job.valid, cycles, 0)
            results[prep.index] = (cycles, pruned, scores)
        offset += len(st.preps) * sqp * skp


__all__ = ["PlaneSpec", "plane_spec", "pack_planes", "PlaneGroupCache",
           "fused_matrix_many", "numpy_batched_gemm", "BatchedGemm"]
