"""``torch``: optional torch-matmul backend (GPU-capable).

Registers only when :mod:`torch` imports — environments without it
simply don't list the backend, mirroring the numba pattern.  Install
with the ``.[torch]`` extra.

The plane-group decomposition, pack-once caches, shape banding, and
margin scan are all shared with ``numpy-packed`` via
:mod:`repro.hw.backends.packed_common`; only the batched GEMM runs
through torch, on ``$REPRO_TORCH_DEVICE`` (default ``cuda`` when
available, else ``cpu``).  Exactness still holds: operands are exact
integers inside the float32/float64 windows, and TF32 matmul
downcasting — which would destroy the 24-bit window on Ampere+ GPUs —
is explicitly disabled, so results stay bit-identical to the scalar
trace and every other backend.  Plane caches live CPU-side (numpy);
operands transfer per call.
"""

from __future__ import annotations

import os

import numpy as np
import torch

from . import KernelJob, register_backend
from .packed_common import fused_matrix_many

# float32 exactness relies on true fp32 accumulation; TF32's 10-bit
# mantissa would silently break the 2^24 exact-integer window
torch.backends.cuda.matmul.allow_tf32 = False

_DEVICE = torch.device(
    os.environ.get("REPRO_TORCH_DEVICE")
    or ("cuda" if torch.cuda.is_available() else "cpu"))


def torch_batched_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """:data:`~repro.hw.backends.packed_common.BatchedGemm` via torch:
    stacked ``a @ b^T`` over the last two axes."""
    ta = torch.from_numpy(np.ascontiguousarray(a)).to(_DEVICE)
    tb = torch.from_numpy(np.ascontiguousarray(b)).to(_DEVICE)
    out = torch.matmul(ta, tb.transpose(-1, -2))
    return out.cpu().numpy()


class TorchBackend:
    """Plane-group kernel with torch batched matmuls behind the
    :class:`KernelBackend` protocol."""

    name = "torch"
    description = ("plane-group kernel over torch batched matmuls "
                   f"(device={_DEVICE.type}; registered only when "
                   "torch imports)")

    @staticmethod
    def matrix(q, k, threshold, magnitude_bits, group, valid=None,
               margin_scale=1.0):
        job = KernelJob(q=q, k=k, threshold=threshold,
                        magnitude_bits=magnitude_bits, group=group,
                        valid=valid, margin_scale=margin_scale)
        return fused_matrix_many([job], torch_batched_gemm)[0]

    @staticmethod
    def matrix_many(jobs, cache=None):
        return fused_matrix_many(jobs, torch_batched_gemm, cache=cache)


BACKEND = register_backend(TorchBackend())
