"""``numpy-ref``: the reference vectorized bit-plane kernel.

This is the original hot-path implementation from
``repro.hw.bitserial`` moved behind the backend interface: one batched
plane-contribution einsum, a grouped cumulative sum for the partial
sums, and a closed-form conservative margin per plane group.  It
defines the semantics every other backend must reproduce bit-for-bit,
so keep it simple and obviously correct — performance work belongs in
``numpy-packed``.
"""

from __future__ import annotations

import numpy as np

from ..bitserial import _plane_schedule
from . import register_backend


def matrix(q, k, threshold: float, magnitude_bits: int, group: int,
           valid: np.ndarray | None = None, margin_scale: float = 1.0
           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Early-termination cycle counts for a whole score tile (see
    :func:`repro.hw.bitserial.bitserial_cycles_matrix` for the full
    contract)."""
    q = np.asarray(q, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    signs = np.sign(k)
    magnitudes = np.abs(k)
    qf = q.astype(np.float64)

    schedule = _plane_schedule(magnitude_bits, group)
    full_cycles = len(schedule)

    # one weighted sign-plane tensor per magnitude plane, MSB..LSB:
    # planes[p] = signs * bit_p(k) * 2^p  -> contribution = q @ planes[p].T
    weights = (1 << np.arange(magnitude_bits - 1, -1, -1,
                              dtype=np.int64))
    bits = (magnitudes[None, :, :] >> np.arange(
        magnitude_bits - 1, -1, -1)[:, None, None]) & 1
    plane_keys = (signs[None, :, :] * bits
                  * weights[:, None, None]).astype(np.float64)
    # (planes, S_q, S_k) contributions in ONE batched matmul pass
    contributions = np.einsum("qd,pkd->pqk", qf, plane_keys,
                              optimize=True)

    # exact scores: sum of all plane contributions (integers in f64)
    scores = contributions.sum(axis=0)

    # largest possible remaining contribution per unit magnitude:
    # only elements with q_i * sign(k_i) > 0 can push the sum up
    positive = (np.maximum(qf, 0.0) @ np.maximum(signs, 0).T
                + np.maximum(-qf, 0.0) @ np.maximum(-signs, 0).T)

    # grouped cumulative partial sums + margins, one pass per cycle
    cycles = np.full(scores.shape, full_cycles, dtype=np.int64)
    terminated = np.zeros(scores.shape, dtype=bool)
    partial = np.zeros_like(scores)
    plane_cursor = 0
    remaining = magnitude_bits
    for cycle_index, chunk in enumerate(schedule, start=1):
        magnitude_planes = sum(1 for plane in chunk if plane >= 0)
        if magnitude_planes:
            stop = plane_cursor + magnitude_planes
            partial = partial + contributions[plane_cursor:stop].sum(axis=0)
            plane_cursor = stop
            remaining -= magnitude_planes
        if cycle_index == full_cycles:
            break
        margin = positive * ((1 << remaining) - 1) * margin_scale
        newly = ~terminated & (partial + margin < threshold)
        if newly.any():
            cycles[newly] = cycle_index
            terminated |= newly

    pruned = terminated | (scores < threshold)
    if valid is not None:
        cycles = np.where(valid, cycles, 0)
    return cycles, pruned, scores


class NumpyReferenceBackend:
    """Reference einsum kernel behind the :class:`KernelBackend`
    protocol."""

    name = "numpy-ref"
    description = ("reference O(bit-planes) einsum kernel "
                   "(defines the semantics)")

    @staticmethod
    def matrix(q, k, threshold, magnitude_bits, group, valid=None,
               margin_scale=1.0):
        return matrix(q, k, threshold, magnitude_bits, group,
                      valid=valid, margin_scale=margin_scale)


BACKEND = register_backend(NumpyReferenceBackend())
