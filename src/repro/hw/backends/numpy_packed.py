"""``numpy-packed``: the packed-bitplane fast path.

Same semantics as ``numpy-ref``, restructured around the shared
machinery in :mod:`repro.hw.backends.packed_common`:

1. **Packed sign-magnitude words + a per-key plane cache.**  Keys are
   packed into sign-magnitude words (sign bit above the magnitude
   field) once, and each DPU cycle's plane group is sliced out of the
   words as one integer field — ``sign * ((mag >> lo) & mask)``
   scaled by ``2^lo`` — so the kernel touches O(cycles) small key
   matrices instead of O(bit-planes) full plane tensors.  With a
   :class:`~repro.hw.backends.PlaneGroupCache` the pack happens once
   per key matrix and decode steps append only the new suffix rows.

2. **Fused GEMMs.**  All per-cycle plane groups (plus the sign plane
   needed for the margin) stack into a single
   ``(cycles+1) * S_k x D`` operand, so one tile needs exactly two
   matrix products — and ``matrix_many`` goes further, stacking every
   job that shares a head-dim/plane schedule into one banded
   block-diagonal batched GEMM, amortizing per-call BLAS and Python
   overhead across the many small tiles of a serving step.  When every
   product provably fits float32's 24-bit exact-integer window the
   GEMMs run in float32 at twice the dgemm throughput — the
   power-of-two plane scaling only shifts the exponent, so exactness
   is preserved and results stay bit-identical.

3. **Integer margin scan.**  The margin/termination sweep — the other
   half of the runtime — runs in int32 whenever partial sums, margins
   and the threshold provably fit, halving the memory traffic of the
   float64 passes.  A cycle count falls out of a running
   "terminated-by-cycle" counter instead of per-cycle fancy indexing.

Anything outside the provable-exactness windows (huge queries,
``margin_scale != 1``, non-finite thresholds) falls back to float64
passes that replicate the reference operation order exactly.
"""

from __future__ import annotations

import numpy as np

from . import KernelJob, register_backend
from .packed_common import fused_matrix_many, numpy_batched_gemm


def matrix(q, k, threshold: float, magnitude_bits: int, group: int,
           valid: np.ndarray | None = None, margin_scale: float = 1.0
           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Packed-bitplane evaluation of a whole score tile (contract:
    :func:`repro.hw.bitserial.bitserial_cycles_matrix`)."""
    job = KernelJob(q=q, k=k, threshold=threshold,
                    magnitude_bits=magnitude_bits, group=group,
                    valid=valid, margin_scale=margin_scale)
    return fused_matrix_many([job], numpy_batched_gemm)[0]


class NumpyPackedBackend:
    """Packed-bitplane fast path behind the :class:`KernelBackend`
    protocol."""

    name = "numpy-packed"
    description = ("packed plane-group cache + fused GEMM + integer "
                   "margin scan (>=2x numpy-ref at paper-scale tiles; "
                   "batched matrix_many fuses whole serving steps)")

    @staticmethod
    def matrix(q, k, threshold, magnitude_bits, group, valid=None,
               margin_scale=1.0):
        return matrix(q, k, threshold, magnitude_bits, group,
                      valid=valid, margin_scale=margin_scale)

    @staticmethod
    def matrix_many(jobs, cache=None):
        return fused_matrix_many(jobs, numpy_batched_gemm, cache=cache)


BACKEND = register_backend(NumpyPackedBackend())
