"""``numpy-packed``: the packed-bitplane fast path.

Same semantics as ``numpy-ref``, restructured around three ideas:

1. **Packed sign-magnitude words + a per-key plane cache.**  Keys are
   packed into sign-magnitude words (sign bit above the magnitude
   field) once, and each DPU cycle's plane group is sliced out of the
   words as one integer field — ``sign * ((mag >> lo) & mask)``
   scaled by ``2^lo`` — so the kernel touches O(cycles) small key
   matrices instead of O(bit-planes) full plane tensors.

2. **One fused GEMM.**  All per-cycle plane groups (plus the sign
   plane needed for the margin) stack into a single
   ``(cycles+1) * S_k x D`` operand, so the whole tile needs exactly
   two matrix products.  When every product provably fits float32's
   24-bit exact-integer window the GEMM runs in float32 at twice the
   dgemm throughput — the power-of-two plane scaling only shifts the
   exponent, so exactness is preserved and results stay bit-identical.

3. **Integer margin scan.**  The margin/termination sweep — the other
   half of the runtime — runs in int32 whenever partial sums, margins
   and the threshold provably fit, halving the memory traffic of the
   float64 passes.  A cycle count falls out of a running
   "terminated-by-cycle" counter instead of per-cycle fancy indexing.

Anything outside the provable-exactness windows (huge queries,
``margin_scale != 1``, non-finite thresholds) falls back to float64
passes that replicate the reference operation order exactly.
"""

from __future__ import annotations

import numpy as np

from ..bitserial import _plane_schedule
from . import register_backend

# float32 keeps integers exact below 2^24; int32 is safe while
# |partial| + |margin| stays below 2^31 (we require < 2^30 each)
_F32_EXACT = 1 << 24
_I32_SAFE = 1 << 30


def matrix(q, k, threshold: float, magnitude_bits: int, group: int,
           valid: np.ndarray | None = None, margin_scale: float = 1.0
           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Packed-bitplane evaluation of a whole score tile (contract:
    :func:`repro.hw.bitserial.bitserial_cycles_matrix`)."""
    q = np.asarray(q, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    signs = np.sign(k)
    schedule = _plane_schedule(magnitude_bits, group)
    full_cycles = len(schedule)
    s_q, s_k = q.shape[0], k.shape[0]
    dim = q.shape[1] if q.ndim == 2 else 0
    qmax = int(np.abs(q).max()) if q.size else 0

    # pack keys as sign-magnitude words: sign bit above the magnitudes;
    # masking matches the reference, which only ever reads the
    # magnitude_bits planes of an out-of-range key
    field_mask = (np.int64(1) << magnitude_bits) - 1
    words = np.where(signs < 0, np.int64(1) << magnitude_bits,
                     np.int64(0)) | (np.abs(k) & field_mask)

    # (count of magnitude planes, lowest plane) per DPU cycle; chunks
    # from the schedule cover contiguous planes [hi..lo]
    cycle_groups: list[tuple[int, int]] = []
    for chunk in schedule:
        planes = [p for p in chunk if p >= 0]
        cycle_groups.append((len(planes), planes[-1] if planes else 0))
    mag_groups = [(n, lo) for n, lo in cycle_groups if n]
    n_groups = len(mag_groups)

    # fused GEMM operand: per-cycle plane-group caches + the sign plane
    group_max = max((((1 << n) - 1) << lo for n, lo in mag_groups),
                    default=0)
    # max(..., 2) also covers the |q|@|s| + q@s sum inside `positive`
    f32_ok = qmax * max(group_max, 2) * max(dim, 1) < _F32_EXACT
    gemm_dtype = np.float32 if f32_ok else np.float64
    stacked = np.empty((n_groups + 1, s_k, dim), dtype=gemm_dtype)
    for index, (n, lo) in enumerate(mag_groups):
        field = (words >> lo) & ((np.int64(1) << n) - 1)
        np.multiply(signs * field, np.int64(1) << lo,
                    out=stacked[index], casting="unsafe")
    stacked[n_groups] = signs

    flat = stacked.reshape((n_groups + 1) * s_k, dim)
    fused = (q.astype(gemm_dtype) @ flat.T).reshape(s_q, n_groups + 1,
                                                    s_k)
    abs_qs = np.abs(q).astype(gemm_dtype) @ np.abs(stacked[n_groups]).T

    # margin base: sum of q*sign over dims where the product can push
    # the score up = (|q| @ |s|^T + q @ s^T) / 2, all integer-exact
    positive = ((abs_qs + fused[:, n_groups]) * 0.5
                ).astype(np.float64, copy=False)

    # pick the scan dtype: int32 passes whenever every quantity fits
    margin_bound = qmax * max(dim, 1) * max((1 << magnitude_bits) - 1, 1)
    int_scan = (margin_scale == 1.0 and np.isfinite(threshold)
                and margin_bound < _I32_SAFE
                and abs(threshold) < _I32_SAFE)
    if int_scan:
        scan_dtype = np.int32
        # lhs is an exact integer, so lhs < th  <=>  lhs < ceil(th)
        scan_threshold = int(np.ceil(threshold))
    else:
        scan_dtype = np.float64
        scan_threshold = float(threshold)
    plane_sums = fused[:, :n_groups].astype(scan_dtype, copy=False)
    positive_scan = positive.astype(scan_dtype, copy=False)

    partial = np.zeros((s_q, s_k), dtype=scan_dtype)
    margin_buf = np.empty((s_q, s_k), dtype=scan_dtype)
    below = np.empty((s_q, s_k), dtype=bool)
    terminated = np.zeros((s_q, s_k), dtype=bool)
    terminated_cycles = np.zeros((s_q, s_k), dtype=np.int8)
    remaining = magnitude_bits
    cursor = 0
    for cycle_index, (n, _) in enumerate(cycle_groups, start=1):
        if n:
            np.add(partial, plane_sums[:, cursor], out=partial)
            cursor += 1
            remaining -= n
        if cycle_index == full_cycles:
            break
        np.multiply(positive_scan, (1 << remaining) - 1, out=margin_buf)
        if margin_scale != 1.0:
            np.multiply(margin_buf, margin_scale, out=margin_buf)
        np.add(margin_buf, partial, out=margin_buf)
        np.less(margin_buf, scan_threshold, out=below)
        np.logical_or(terminated, below, out=terminated)
        # a score terminated by cycle c contributes 1 for every later
        # boundary, so cycles = full - sum(terminated-by) recovers the
        # first-termination cycle (and full for survivors)
        np.add(terminated_cycles, terminated, out=terminated_cycles,
               casting="unsafe")

    scores = partial.astype(np.float64, copy=False)
    cycles = (full_cycles - terminated_cycles).astype(np.int64)
    pruned = terminated | (scores < threshold)
    if valid is not None:
        cycles = np.where(valid, cycles, 0)
    return cycles, pruned, scores


class NumpyPackedBackend:
    """Packed-bitplane fast path behind the :class:`KernelBackend`
    protocol."""

    name = "numpy-packed"
    description = ("packed plane-group cache + fused GEMM + integer "
                   "margin scan (>=2x numpy-ref at paper-scale tiles)")

    @staticmethod
    def matrix(q, k, threshold, magnitude_bits, group, valid=None,
               margin_scale=1.0):
        return matrix(q, k, threshold, magnitude_bits, group,
                      valid=valid, margin_scale=margin_scale)


BACKEND = register_backend(NumpyPackedBackend())
