"""``numba``: optional JIT per-pair kernel with true early exit.

Importing this module requires :mod:`numba`; the backends package
imports it inside a ``try`` so environments without numba simply don't
register the backend (``get_backend("numba")`` then raises a KeyError
naming the backends that *are* available, and the conformance tests
skip).

Unlike the numpy backends — which always evaluate every plane group
for every score and only *count* the early-termination cycle — the JIT
kernel walks each (query, key) pair cycle by cycle and genuinely stops
at the termination boundary, so its work scales with the pruning rate
the same way the hardware's would.  The outer query-row loop runs
under ``parallel=True`` (``prange``): rows are fully independent and
each pair's float64 operations keep the reference kernel's exact
order, so threading changes wall-clock, never bits.

Set ``REPRO_NUMBA_CACHE`` to a directory to persist the JIT artifacts
across processes (it seeds ``NUMBA_CACHE_DIR`` and turns on
``cache=True``), so sweep workers and repeat benchmark runs skip the
multi-second compile instead of paying it per process.
"""

from __future__ import annotations

import os

_CACHE_DIR = os.environ.get("REPRO_NUMBA_CACHE")
if _CACHE_DIR:
    # must land before numba first reads its config
    os.makedirs(_CACHE_DIR, exist_ok=True)
    os.environ.setdefault("NUMBA_CACHE_DIR", _CACHE_DIR)

import numba                             # noqa: E402
import numpy as np                       # noqa: E402

from ..bitserial import _plane_schedule  # noqa: E402
from . import register_backend           # noqa: E402


@numba.njit(cache=bool(_CACHE_DIR), parallel=True)
def _pair_kernel(q, signs, magnitudes, threshold, group_counts,
                 group_los, full_cycles, magnitude_bits, margin_scale,
                 cycles, pruned, scores):
    s_q = q.shape[0]
    s_k = signs.shape[0]
    dim = q.shape[1]
    for i in numba.prange(s_q):
        for j in range(s_k):
            positive = 0.0
            score = 0.0
            for d in range(dim):
                value = float(q[i, d] * signs[j, d])
                if value > 0.0:
                    positive += value
                score += value * magnitudes[j, d]
            partial = 0.0
            remaining = magnitude_bits
            terminated = False
            spent = full_cycles
            for c in range(full_cycles):
                planes = group_counts[c]
                if planes > 0:
                    lo = group_los[c]
                    contribution = 0.0
                    for d in range(dim):
                        field = (magnitudes[j, d] >> lo) & ((1 << planes)
                                                            - 1)
                        contribution += float(q[i, d] * signs[j, d]
                                              * field)
                    partial += contribution * float(1 << lo)
                    remaining -= planes
                if c + 1 == full_cycles:
                    break
                margin = positive * ((1 << remaining) - 1) * margin_scale
                if not terminated and partial + margin < threshold:
                    terminated = True
                    spent = c + 1
                    break
            cycles[i, j] = spent
            pruned[i, j] = terminated or score < threshold
            scores[i, j] = score


def matrix(q, k, threshold: float, magnitude_bits: int, group: int,
           valid: np.ndarray | None = None, margin_scale: float = 1.0
           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    q = np.ascontiguousarray(np.asarray(q, dtype=np.int64))
    k = np.asarray(k, dtype=np.int64)
    signs = np.ascontiguousarray(np.sign(k))
    # the reference only ever reads the magnitude_bits planes, so mask
    # out-of-range keys the same way
    magnitudes = np.ascontiguousarray(
        np.abs(k) & ((np.int64(1) << magnitude_bits) - 1))
    schedule = _plane_schedule(magnitude_bits, group)
    full_cycles = len(schedule)
    group_counts = np.empty(full_cycles, dtype=np.int64)
    group_los = np.empty(full_cycles, dtype=np.int64)
    for index, chunk in enumerate(schedule):
        planes = [p for p in chunk if p >= 0]
        group_counts[index] = len(planes)
        group_los[index] = planes[-1] if planes else 0

    shape = (q.shape[0], k.shape[0])
    cycles = np.empty(shape, dtype=np.int64)
    pruned = np.empty(shape, dtype=np.bool_)
    scores = np.empty(shape, dtype=np.float64)
    _pair_kernel(q, signs, magnitudes, float(threshold), group_counts,
                 group_los, full_cycles, magnitude_bits,
                 float(margin_scale), cycles, pruned, scores)
    if valid is not None:
        cycles = np.where(valid, cycles, 0)
    return cycles, pruned, scores


class NumbaBackend:
    """JIT per-pair kernel behind the :class:`KernelBackend`
    protocol."""

    name = "numba"
    description = ("optional JIT per-pair kernel with real per-score "
                   "early exit, prange-parallel query rows, and a "
                   "persistent compile cache via $REPRO_NUMBA_CACHE "
                   "(registered only when numba imports)")

    @staticmethod
    def matrix(q, k, threshold, magnitude_bits, group, valid=None,
               margin_scale=1.0):
        return matrix(q, k, threshold, magnitude_bits, group,
                      valid=valid, margin_scale=margin_scale)


BACKEND = register_backend(NumbaBackend())
