"""Pluggable bit-serial kernel backends.

Every hardware experiment funnels through one kernel — the
early-termination Q·K cycle-count matrix — so this package puts that
kernel behind a registry of interchangeable backends.  The contract is
the :class:`KernelBackend` protocol: given the same
``(q, k, threshold, magnitude_bits, group, valid, margin_scale)``
inputs, every backend must return ``(cycles, pruned, scores)``
**bit-identical** to the scalar reference trace
(:func:`repro.hw.bitserial.bitserial_dot_product`); the conformance
matrix in ``tests/test_backends.py`` pins this for every registered
backend.

Shipped backends:

``numpy-ref``
    the original O(bit-planes) einsum kernel — the reference
    semantics, and the default.
``numpy-packed``
    the fast path: sign-magnitude key planes packed into per-cycle
    plane-group words, one fused GEMM over the per-key plane cache,
    and an integer scan for the margin/termination sweep.  ≥2x the
    reference at paper-scale tiles (S=512-1280), pinned by
    ``benchmarks/test_kernel_micro.py``.
``numba``
    optional JIT per-pair kernel with true per-score early exit;
    auto-registered only when :mod:`numba` imports.
``torch``
    optional torch backend running the same plane-group decomposition
    through (GPU-capable) torch matmuls; auto-registered only when
    :mod:`torch` imports.

Selection precedence: an explicit ``backend=`` argument
(``TileSimulator``, ``bitserial_cycles_matrix``), then
``TileConfig.kernel_backend``, then the ``REPRO_KERNEL_BACKEND``
environment variable, then :data:`DEFAULT_BACKEND`.

Beyond per-tile ``matrix`` calls, backends may implement a batched
``matrix_many`` entry point taking a list of :class:`KernelJob` and
returning one ``(cycles, pruned, scores)`` triple per job.  The
serving regime issues many small tiles per step (one per
stream/layer/head), and a fused implementation can amortize per-call
pack/GEMM overhead across them; ``numpy-packed`` and ``torch`` fuse
all jobs sharing a head-dim into single GEMMs.  Backends without
``matrix_many`` are driven through :func:`run_many`, which falls back
to a per-job ``matrix`` loop — results are bit-identical either way,
pinned by ``tests/test_fused.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

ENV_VAR = "REPRO_KERNEL_BACKEND"
DEFAULT_BACKEND = "numpy-ref"


@dataclass(frozen=True, eq=False)
class KernelJob:
    """One score-tile evaluation request for the batched kernel tier.

    Mirrors the argument list of :meth:`KernelBackend.matrix`, plus an
    optional ``pack_key``: a hashable identity (stream/layer/head) for
    the key matrix, letting pack-once plane caches reuse packed planes
    across decode steps where K only grows by a suffix.  ``None``
    means "don't cache".
    """

    q: Any
    k: Any
    threshold: float
    magnitude_bits: int
    group: int
    valid: np.ndarray | None = None
    margin_scale: float = 1.0
    pack_key: Any = None


@runtime_checkable
class KernelBackend(Protocol):
    """The backend contract: the exact semantics of the reference
    bit-serial kernel, exposed as a ``matrix`` method.

    ``matrix`` evaluates a whole S_q x S_k score tile and returns
    ``(cycles, pruned, scores)`` with the meaning documented on
    :func:`repro.hw.bitserial.bitserial_cycles_matrix`.  Results must
    be bit-identical to the scalar trace for every input in the
    integer-exact domain (scores within float64's 2**53 window).
    """

    name: str
    description: str

    def matrix(self, q, k, threshold: float, magnitude_bits: int,
               group: int, valid: np.ndarray | None = None,
               margin_scale: float = 1.0
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ...

    # Optional batched tier.  Backends may omit this — run_many()
    # falls back to a per-job matrix loop — but implementations must
    # stay bit-identical to that loop for every job mix.
    # def matrix_many(self, jobs, cache=None): ...


def matrix_many_loop(backend: KernelBackend, jobs, cache=None):
    """Reference ``matrix_many``: a per-job ``matrix`` loop.

    Defines the semantics every fused implementation must reproduce
    bit-for-bit.  ``cache`` is accepted for signature compatibility;
    the loop path re-packs per call and ignores it.
    """
    return [backend.matrix(job.q, job.k, job.threshold,
                           job.magnitude_bits, job.group,
                           valid=job.valid,
                           margin_scale=job.margin_scale)
            for job in jobs]


def run_many(backend: KernelBackend, jobs, cache=None):
    """Evaluate a batch of :class:`KernelJob` on ``backend``.

    Dispatches to the backend's fused ``matrix_many`` when it has one,
    else to the per-job loop — callers get identical results either
    way and never need to feature-test the backend.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    fused = getattr(backend, "matrix_many", None)
    if fused is None:
        return matrix_many_loop(backend, jobs, cache=cache)
    return fused(jobs, cache=cache)


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend,
                     replace: bool = False) -> KernelBackend:
    """Add a backend to the registry under ``backend.name``.

    Re-registering an existing name raises unless ``replace=True`` —
    a silent override would make "which kernel ran?" unanswerable.
    """
    name = backend.name
    if not replace and name in _REGISTRY:
        raise ValueError(f"kernel backend {name!r} is already "
                         "registered (pass replace=True to override)")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (test helper; unknown names are a no-op)."""
    _REGISTRY.pop(name, None)


def list_backends() -> list[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


def resolve_backend_name(name: str | None = None) -> str:
    """Apply the selection precedence: explicit name, then the
    ``REPRO_KERNEL_BACKEND`` environment variable, then the default."""
    if name:
        return name
    return os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def get_backend(name: str | None = None) -> KernelBackend:
    """Look up a backend; ``None`` resolves env var / default.

    Raises ``KeyError`` naming the valid choices for a typo'd or
    unavailable backend (e.g. ``numba`` without numba installed).
    """
    resolved = resolve_backend_name(name)
    try:
        return _REGISTRY[resolved]
    except KeyError:
        raise KeyError(
            f"unknown kernel backend {resolved!r}; registered backends: "
            f"{', '.join(list_backends())} (selected via backend= / "
            f"TileConfig.kernel_backend / ${ENV_VAR})") from None


# -- built-in backends ------------------------------------------------------
# numpy backends always register; the numba backend registers itself only
# when numba imports, so environments without it just don't list it.
from . import numpy_ref       # noqa: E402,F401  (registers numpy-ref)
from . import numpy_packed    # noqa: E402,F401  (registers numpy-packed)

try:
    from . import numba_jit   # noqa: E402,F401  (registers numba)
except ImportError:           # pragma: no cover - numba is optional
    numba_jit = None

try:
    from . import torch_gemm  # noqa: E402,F401  (registers torch)
except ImportError:           # pragma: no cover - torch is optional
    torch_gemm = None

from .packed_common import PlaneGroupCache  # noqa: E402

__all__ = ["KernelBackend", "KernelJob", "PlaneGroupCache",
           "register_backend", "unregister_backend",
           "get_backend", "list_backends", "resolve_backend_name",
           "run_many", "matrix_many_loop",
           "ENV_VAR", "DEFAULT_BACKEND"]
