"""Pluggable bit-serial kernel backends.

Every hardware experiment funnels through one kernel — the
early-termination Q·K cycle-count matrix — so this package puts that
kernel behind a registry of interchangeable backends.  The contract is
the :class:`KernelBackend` protocol: given the same
``(q, k, threshold, magnitude_bits, group, valid, margin_scale)``
inputs, every backend must return ``(cycles, pruned, scores)``
**bit-identical** to the scalar reference trace
(:func:`repro.hw.bitserial.bitserial_dot_product`); the conformance
matrix in ``tests/test_backends.py`` pins this for every registered
backend.

Shipped backends:

``numpy-ref``
    the original O(bit-planes) einsum kernel — the reference
    semantics, and the default.
``numpy-packed``
    the fast path: sign-magnitude key planes packed into per-cycle
    plane-group words, one fused GEMM over the per-key plane cache,
    and an integer scan for the margin/termination sweep.  ≥2x the
    reference at paper-scale tiles (S=512-1280), pinned by
    ``benchmarks/test_kernel_micro.py``.
``numba``
    optional JIT per-pair kernel with true per-score early exit;
    auto-registered only when :mod:`numba` imports.

Selection precedence: an explicit ``backend=`` argument
(``TileSimulator``, ``bitserial_cycles_matrix``), then
``TileConfig.kernel_backend``, then the ``REPRO_KERNEL_BACKEND``
environment variable, then :data:`DEFAULT_BACKEND`.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np

ENV_VAR = "REPRO_KERNEL_BACKEND"
DEFAULT_BACKEND = "numpy-ref"


@runtime_checkable
class KernelBackend(Protocol):
    """The backend contract: the exact semantics of the reference
    bit-serial kernel, exposed as a ``matrix`` method.

    ``matrix`` evaluates a whole S_q x S_k score tile and returns
    ``(cycles, pruned, scores)`` with the meaning documented on
    :func:`repro.hw.bitserial.bitserial_cycles_matrix`.  Results must
    be bit-identical to the scalar trace for every input in the
    integer-exact domain (scores within float64's 2**53 window).
    """

    name: str
    description: str

    def matrix(self, q, k, threshold: float, magnitude_bits: int,
               group: int, valid: np.ndarray | None = None,
               margin_scale: float = 1.0
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ...


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend,
                     replace: bool = False) -> KernelBackend:
    """Add a backend to the registry under ``backend.name``.

    Re-registering an existing name raises unless ``replace=True`` —
    a silent override would make "which kernel ran?" unanswerable.
    """
    name = backend.name
    if not replace and name in _REGISTRY:
        raise ValueError(f"kernel backend {name!r} is already "
                         "registered (pass replace=True to override)")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (test helper; unknown names are a no-op)."""
    _REGISTRY.pop(name, None)


def list_backends() -> list[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


def resolve_backend_name(name: str | None = None) -> str:
    """Apply the selection precedence: explicit name, then the
    ``REPRO_KERNEL_BACKEND`` environment variable, then the default."""
    if name:
        return name
    return os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def get_backend(name: str | None = None) -> KernelBackend:
    """Look up a backend; ``None`` resolves env var / default.

    Raises ``KeyError`` naming the valid choices for a typo'd or
    unavailable backend (e.g. ``numba`` without numba installed).
    """
    resolved = resolve_backend_name(name)
    try:
        return _REGISTRY[resolved]
    except KeyError:
        raise KeyError(
            f"unknown kernel backend {resolved!r}; registered backends: "
            f"{', '.join(list_backends())} (selected via backend= / "
            f"TileConfig.kernel_backend / ${ENV_VAR})") from None


# -- built-in backends ------------------------------------------------------
# numpy backends always register; the numba backend registers itself only
# when numba imports, so environments without it just don't list it.
from . import numpy_ref       # noqa: E402,F401  (registers numpy-ref)
from . import numpy_packed    # noqa: E402,F401  (registers numpy-packed)

try:
    from . import numba_jit   # noqa: E402,F401  (registers numba)
except ImportError:           # pragma: no cover - numba is optional
    numba_jit = None

__all__ = ["KernelBackend", "register_backend", "unregister_backend",
           "get_backend", "list_backends", "resolve_backend_name",
           "ENV_VAR", "DEFAULT_BACKEND"]
