"""Tile microarchitecture configurations (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TileConfig:
    name: str
    num_qk_dpus: int            # N_QK — bit-serial QK DPU lanes
    serial_bits: int            # B — bit-planes per cycle (12 = parallel)
    qk_bits: int = 12           # QK datapath width incl. sign
    dim: int = 64               # D — head dimension of the datapath
    key_buffer_kb: int = 48
    value_buffer_kb: int = 64
    frequency_ghz: float = 0.8
    runtime_pruning: bool = True      # back end skips pruned scores
    early_termination: bool = True    # front end stops below-Th scores
    softmax_latency: int = 3          # V-PU per-row pipeline overhead
    vpu_cycles_per_score: int = 1     # V-PU cycles per surviving score
    # kernel backend evaluating this tile's Q·K schedule (registry name
    # from repro.hw.backends); None follows $REPRO_KERNEL_BACKEND
    kernel_backend: str | None = None

    @property
    def magnitude_bits(self) -> int:
        return self.qk_bits - 1

    @property
    def qk_bit_format(self) -> str:
        return f"{self.qk_bits}x{self.serial_bits}"

    def full_score_cycles(self) -> int:
        from .bitserial import serial_cycle_count
        return serial_cycle_count(self.qk_bits, self.serial_bits)


AE_LEOPARD = TileConfig(name="AE-LeOPArd", num_qk_dpus=6, serial_bits=2)
HP_LEOPARD = TileConfig(name="HP-LeOPArd", num_qk_dpus=8, serial_bits=2)


def baseline_like(config: TileConfig) -> TileConfig:
    """The non-pruning baseline tile: one bit-parallel QK unit with the
    same datapath width, buffers and frequency — iso-area with the AE
    design point (one 12x12 array == six 12x2 arrays)."""
    return replace(config, name="Baseline", num_qk_dpus=1,
                   serial_bits=config.qk_bits, runtime_pruning=False,
                   early_termination=False)
