"""Event-level tile energy model (65 nm-flavored constants).

Per-event energies are picked so the *baseline* tile spends >65% of its
energy in the back end (softmax + xV + value memory), matching the
paper's Fig. 11 attribution: runtime pruning removes back-end work,
bit-serial early termination then removes front-end (QK compute + key
memory) work on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import TileConfig
from .tile import TileCounters

# pJ per event (D-wide datapath folded into the constants)
E_QK_MAC_BIT = 0.10      # one bit-plane MAC'd across D lanes
E_QK_LATCH = 0.055       # per DPU-cycle partial-sum latching
E_KEY_SRAM_BIT = 0.0833  # one key bit-plane (D wide) read
E_SOFTMAX_EXP = 1.2      # per surviving score
E_SOFTMAX_NORM = 6.0     # per query row
E_V_MAC = 2.0            # 12-bit x 12-bit MAC across D, per survivor
E_VALUE_SRAM = 2.0       # value-vector read, per survivor
P_LEAK_BASE = 0.05       # per tile-cycle
P_LEAK_PER_DPU = 0.01    # per tile-cycle per QK DPU


@dataclass(frozen=True)
class EnergyBreakdown:
    qk_compute: float
    key_memory: float
    softmax: float
    v_compute: float
    value_memory: float
    leakage: float

    @property
    def frontend(self) -> float:
        return self.qk_compute + self.key_memory

    @property
    def backend(self) -> float:
        return self.softmax + self.v_compute + self.value_memory

    @property
    def total(self) -> float:
        return self.frontend + self.backend + self.leakage


class EnergyModel:
    def breakdown(self, counters: TileCounters,
                  config: TileConfig) -> EnergyBreakdown:
        return EnergyBreakdown(
            qk_compute=(counters.qk_bits_processed * E_QK_MAC_BIT
                        + counters.qk_lane_cycles * E_QK_LATCH),
            key_memory=counters.qk_bits_processed * E_KEY_SRAM_BIT,
            softmax=(counters.survivors * E_SOFTMAX_EXP
                     + counters.rows * E_SOFTMAX_NORM),
            v_compute=counters.survivors * E_V_MAC,
            value_memory=counters.survivors * E_VALUE_SRAM,
            leakage=counters.runtime_cycles * (
                P_LEAK_BASE + P_LEAK_PER_DPU * config.num_qk_dpus),
        )

    def total(self, counters: TileCounters, config: TileConfig) -> float:
        return self.breakdown(counters, config).total
