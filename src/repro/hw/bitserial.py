"""Sign-magnitude bit-serial Q·K kernels with early termination
(paper §3.2, Fig. 3).

Two entry points into the same hardware semantics:

* ``bitserial_dot_product`` — the scalar reference trace, kept for the
  walkthrough/exactness demos.  One Python iteration per cycle, full
  per-cycle history.  This trace *defines* the semantics every matrix
  backend must reproduce bit-for-bit.
* ``bitserial_cycles_matrix`` — the hot path.  Evaluates an entire
  S_q x S_k score tile through a pluggable kernel backend
  (:mod:`repro.hw.backends`): ``numpy-ref`` is the original
  O(bit-planes) einsum kernel, ``numpy-packed`` the packed-bitplane
  fast path, ``numba`` an optional JIT kernel.  Select with the
  ``backend=`` argument, ``TileConfig.kernel_backend``, or the
  ``REPRO_KERNEL_BACKEND`` environment variable.

Semantics: keys are sign-magnitude with ``magnitude_bits`` magnitude
bits, processed MSB-first in groups of ``group`` bit-planes per cycle;
the sign plane is consumed in the first cycle.  After each cycle the
DPU knows the partial sum P and a conservative margin M (the largest
value the unprocessed low-order bits could still add).  If
``P + M < threshold`` the score can never survive pruning, and the
DPU terminates early — provably without changing the prune decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def serial_cycle_count(total_bits: int, group: int) -> int:
    """Cycles to process ``total_bits`` bit-planes (sign included),
    ``group`` planes per cycle."""
    return math.ceil(total_bits / group)


def _plane_schedule(magnitude_bits: int, group: int) -> list[list[int]]:
    """Chunk the plane sequence [sign, MSB..LSB] into per-cycle groups.

    Planes are encoded as -1 for the sign plane and p for the magnitude
    plane of weight 2**p.
    """
    planes = [-1] + list(range(magnitude_bits - 1, -1, -1))
    return [planes[i:i + group] for i in range(0, len(planes), group)]


# ---------------------------------------------------------------------------
# scalar reference trace
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CycleStep:
    cycle: int
    partial_sum: float
    margin: float
    terminated: bool


@dataclass(frozen=True)
class BitSerialTrace:
    cycles: int
    early_terminated: bool
    pruned: bool
    exact_value: float
    history: tuple[CycleStep, ...]


def bitserial_dot_product(q, k, threshold: float, magnitude_bits: int,
                          group: int = 1) -> BitSerialTrace:
    """Reference scalar trace of one dot product's bit-serial schedule."""
    q = np.asarray(q, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    signs = np.sign(k)
    magnitudes = np.abs(k)
    exact = float(q @ k)
    schedule = _plane_schedule(magnitude_bits, group)
    full_cycles = len(schedule)
    # max positive contribution per remaining magnitude unit
    positive = float(np.maximum(q * signs, 0).sum())

    partial = 0.0
    remaining = magnitude_bits
    history: list[CycleStep] = []
    for cycle_index, chunk in enumerate(schedule, start=1):
        for plane in chunk:
            if plane < 0:
                continue  # sign plane: no arithmetic contribution
            bit = (magnitudes >> plane) & 1
            partial += float(q @ (signs * bit)) * (1 << plane)
            remaining -= 1
        margin = positive * ((1 << remaining) - 1)
        terminated = (cycle_index < full_cycles
                      and partial + margin < threshold)
        history.append(CycleStep(cycle_index, partial, margin, terminated))
        if terminated:
            return BitSerialTrace(
                cycles=cycle_index, early_terminated=True, pruned=True,
                exact_value=exact, history=tuple(history))
    return BitSerialTrace(
        cycles=full_cycles, early_terminated=False,
        pruned=exact < threshold, exact_value=exact,
        history=tuple(history))


# ---------------------------------------------------------------------------
# vectorized bit-plane kernel (the hot path, backend-dispatched)
# ---------------------------------------------------------------------------

def bitserial_cycles_matrix(q, k, threshold: float, magnitude_bits: int,
                            group: int, valid: np.ndarray | None = None,
                            margin_scale: float = 1.0,
                            backend: str | None = None
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Early-termination cycle counts for a whole score tile.

    ``q``: (S_q, D) integer queries (full precision, bit-parallel);
    ``k``: (S_k, D) integer keys (sign-magnitude, bit-serial).

    Returns ``(cycles, pruned, scores)``:

    * ``cycles[i, j]`` — DPU cycles spent on score (i, j); pruned
      scores terminate as soon as partial-sum + margin drops below the
      threshold, surviving scores take the full schedule.  Positions
      where ``valid`` is False report 0 cycles.
    * ``pruned[i, j]`` — the prune decision.  With the conservative
      margin (``margin_scale=1``) it equals ``scores < threshold``
      exactly; smaller margins terminate earlier but may wrongly prune.
    * ``scores`` — the exact integer dot products, as float64.

    ``backend`` picks the kernel implementation by registry name
    (:mod:`repro.hw.backends`); ``None`` follows the
    ``REPRO_KERNEL_BACKEND`` environment variable and defaults to the
    ``numpy-ref`` reference kernel.  Every registered backend returns
    bit-identical results on integer inputs whose scores stay inside
    float64's exact-integer window.
    """
    from .backends import get_backend

    return get_backend(backend).matrix(
        q, k, threshold, magnitude_bits, group, valid=valid,
        margin_scale=margin_scale)
