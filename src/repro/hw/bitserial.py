"""Sign-magnitude bit-serial Q·K kernels with early termination
(paper §3.2, Fig. 3).

Two implementations of the same hardware semantics:

* ``bitserial_dot_product`` — the scalar reference trace, kept for the
  walkthrough/exactness demos.  One Python iteration per cycle, full
  per-cycle history.
* ``bitserial_cycles_matrix`` — the hot path.  Evaluates an entire
  S_q x S_k score tile in **O(bit-planes) numpy passes**: one batched
  plane-contribution einsum, a grouped cumulative sum for the partial
  sums, and a closed-form conservative margin per plane group.  No
  per-element Python looping anywhere.

Semantics: keys are sign-magnitude with ``magnitude_bits`` magnitude
bits, processed MSB-first in groups of ``group`` bit-planes per cycle;
the sign plane is consumed in the first cycle.  After each cycle the
DPU knows the partial sum P and a conservative margin M (the largest
value the unprocessed low-order bits could still add).  If
``P + M < threshold`` the score can never survive pruning, and the
DPU terminates early — provably without changing the prune decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def serial_cycle_count(total_bits: int, group: int) -> int:
    """Cycles to process ``total_bits`` bit-planes (sign included),
    ``group`` planes per cycle."""
    return math.ceil(total_bits / group)


def _plane_schedule(magnitude_bits: int, group: int) -> list[list[int]]:
    """Chunk the plane sequence [sign, MSB..LSB] into per-cycle groups.

    Planes are encoded as -1 for the sign plane and p for the magnitude
    plane of weight 2**p.
    """
    planes = [-1] + list(range(magnitude_bits - 1, -1, -1))
    return [planes[i:i + group] for i in range(0, len(planes), group)]


# ---------------------------------------------------------------------------
# scalar reference trace
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CycleStep:
    cycle: int
    partial_sum: float
    margin: float
    terminated: bool


@dataclass(frozen=True)
class BitSerialTrace:
    cycles: int
    early_terminated: bool
    pruned: bool
    exact_value: float
    history: tuple[CycleStep, ...]


def bitserial_dot_product(q, k, threshold: float, magnitude_bits: int,
                          group: int = 1) -> BitSerialTrace:
    """Reference scalar trace of one dot product's bit-serial schedule."""
    q = np.asarray(q, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    signs = np.sign(k)
    magnitudes = np.abs(k)
    exact = float(q @ k)
    schedule = _plane_schedule(magnitude_bits, group)
    full_cycles = len(schedule)
    # max positive contribution per remaining magnitude unit
    positive = float(np.maximum(q * signs, 0).sum())

    partial = 0.0
    remaining = magnitude_bits
    history: list[CycleStep] = []
    for cycle_index, chunk in enumerate(schedule, start=1):
        for plane in chunk:
            if plane < 0:
                continue  # sign plane: no arithmetic contribution
            bit = (magnitudes >> plane) & 1
            partial += float(q @ (signs * bit)) * (1 << plane)
            remaining -= 1
        margin = positive * ((1 << remaining) - 1)
        terminated = (cycle_index < full_cycles
                      and partial + margin < threshold)
        history.append(CycleStep(cycle_index, partial, margin, terminated))
        if terminated:
            return BitSerialTrace(
                cycles=cycle_index, early_terminated=True, pruned=True,
                exact_value=exact, history=tuple(history))
    return BitSerialTrace(
        cycles=full_cycles, early_terminated=False,
        pruned=exact < threshold, exact_value=exact,
        history=tuple(history))


# ---------------------------------------------------------------------------
# vectorized bit-plane kernel (the hot path)
# ---------------------------------------------------------------------------

def bitserial_cycles_matrix(q, k, threshold: float, magnitude_bits: int,
                            group: int, valid: np.ndarray | None = None,
                            margin_scale: float = 1.0
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Early-termination cycle counts for a whole score tile.

    ``q``: (S_q, D) integer queries (full precision, bit-parallel);
    ``k``: (S_k, D) integer keys (sign-magnitude, bit-serial).

    Returns ``(cycles, pruned, scores)``:

    * ``cycles[i, j]`` — DPU cycles spent on score (i, j); pruned
      scores terminate as soon as partial-sum + margin drops below the
      threshold, surviving scores take the full schedule.
    * ``pruned[i, j]`` — the prune decision.  With the conservative
      margin (``margin_scale=1``) it equals ``scores < threshold``
      exactly; smaller margins terminate earlier but may wrongly prune.
    * ``scores`` — the exact integer dot products, as float64.

    Complexity: O(bit-planes) whole-matrix numpy passes — one stacked
    einsum for all plane contributions, then one (cycles, S_q, S_k)
    cumulative pass for partial sums, margins and first-termination
    search.  Zero Python-level per-element work.
    """
    q = np.asarray(q, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    signs = np.sign(k)
    magnitudes = np.abs(k)
    qf = q.astype(np.float64)

    schedule = _plane_schedule(magnitude_bits, group)
    full_cycles = len(schedule)

    # one weighted sign-plane tensor per magnitude plane, MSB..LSB:
    # planes[p] = signs * bit_p(k) * 2^p  -> contribution = q @ planes[p].T
    weights = (1 << np.arange(magnitude_bits - 1, -1, -1,
                              dtype=np.int64))
    bits = (magnitudes[None, :, :] >> np.arange(
        magnitude_bits - 1, -1, -1)[:, None, None]) & 1
    plane_keys = (signs[None, :, :] * bits
                  * weights[:, None, None]).astype(np.float64)
    # (planes, S_q, S_k) contributions in ONE batched matmul pass
    contributions = np.einsum("qd,pkd->pqk", qf, plane_keys,
                              optimize=True)

    # exact scores: sum of all plane contributions (integers in f64)
    scores = contributions.sum(axis=0)

    # largest possible remaining contribution per unit magnitude:
    # only elements with q_i * sign(k_i) > 0 can push the sum up
    positive = (np.maximum(qf, 0.0) @ np.maximum(signs, 0).T
                + np.maximum(-qf, 0.0) @ np.maximum(-signs, 0).T)

    # grouped cumulative partial sums + margins, one pass per cycle
    cycles = np.full(scores.shape, full_cycles, dtype=np.int64)
    terminated = np.zeros(scores.shape, dtype=bool)
    partial = np.zeros_like(scores)
    plane_cursor = 0
    remaining = magnitude_bits
    for cycle_index, chunk in enumerate(schedule, start=1):
        magnitude_planes = sum(1 for plane in chunk if plane >= 0)
        if magnitude_planes:
            stop = plane_cursor + magnitude_planes
            partial = partial + contributions[plane_cursor:stop].sum(axis=0)
            plane_cursor = stop
            remaining -= magnitude_planes
        if cycle_index == full_cycles:
            break
        margin = positive * ((1 << remaining) - 1) * margin_scale
        newly = ~terminated & (partial + margin < threshold)
        if newly.any():
            cycles[newly] = cycle_index
            terminated |= newly

    pruned = terminated | (scores < threshold)
    if valid is not None:
        cycles = np.where(valid, cycles, 0)
    return cycles, pruned, scores
