"""Hardware job extraction: attention records -> quantized tile jobs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

DEFAULT_MAGNITUDE_BITS = 11


def _quantize(values: np.ndarray, magnitude_bits: int
              ) -> tuple[np.ndarray, float]:
    """Symmetric sign-magnitude quantization to ``magnitude_bits``."""
    peak = float(np.abs(values).max())
    if peak <= 0.0:
        return np.zeros(values.shape, dtype=np.int64), 1.0
    scale = ((1 << magnitude_bits) - 1) / peak
    return np.round(values * scale).astype(np.int64), scale


@dataclass
class HeadJob:
    """One (layer, head, sequence) attention tile job.

    ``queries``/``keys``/``threshold`` are in the tile's native 12-bit
    integer domain; the float originals are kept so simulators can
    requantize for narrower datapaths (e.g. the 9-bit Table-2 variant).
    """

    queries: np.ndarray          # (S_q, D) int64
    keys: np.ndarray             # (S_k, D) int64
    threshold: float             # integer-score domain
    valid: np.ndarray            # (S_q, S_k) bool
    q_float: np.ndarray | None = None
    k_float: np.ndarray | None = None
    threshold_float: float | None = None
    layer_index: int = 0
    head: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, int]:
        return self.queries.shape[0], self.keys.shape[0]

    def quantized_for(self, magnitude_bits: int
                      ) -> tuple[np.ndarray, np.ndarray, float]:
        """(queries, keys, threshold) at the requested precision."""
        if magnitude_bits == DEFAULT_MAGNITUDE_BITS or self.q_float is None:
            return self.queries, self.keys, self.threshold
        q, sq = _quantize(self.q_float, magnitude_bits)
        k, sk = _quantize(self.k_float, magnitude_bits)
        return q, k, float(self.threshold_float) * sq * sk


def job_from_arrays(q: np.ndarray, k: np.ndarray, threshold: float,
                    valid: np.ndarray | None = None,
                    magnitude_bits: int = DEFAULT_MAGNITUDE_BITS,
                    layer_index: int = 0, head: int = 0) -> HeadJob:
    """Build a tile job from float Q, K and a float threshold, such that
    integer scores ~ float scores * (scale_q * scale_k)."""
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    qi, sq = _quantize(q, magnitude_bits)
    ki, sk = _quantize(k, magnitude_bits)
    if valid is None:
        valid = np.ones((q.shape[0], k.shape[0]), dtype=bool)
    return HeadJob(
        queries=qi, keys=ki, threshold=float(threshold) * sq * sk,
        valid=np.asarray(valid, dtype=bool),
        q_float=q, k_float=k, threshold_float=float(threshold),
        layer_index=layer_index, head=head,
    )


def jobs_from_records(records, pack_group=None) -> list[HeadJob]:
    """Flatten captured attention records into per-(batch, head) jobs.

    Records must have been captured with ``record_qk=True`` so the
    actual Q/K activations are available (the recorded scores already
    include the 1/sqrt(d) scale, and so do the stored queries).

    Each job carries a ``pack_key`` — ``(pack_group, layer, batch,
    head)`` — identifying its key matrix for the pack-once plane
    caches: across the decode records of one stream the same key sees
    K grow by a suffix, so packed planes are reused instead of rebuilt
    per step.  Pass a stable ``pack_group`` (e.g. a stream id) when
    jobs from different calls should share cache entries; the default
    ``None`` still distinguishes layers/heads within one call.
    """
    jobs: list[HeadJob] = []
    for record in records:
        if record.queries is None or record.keys is None:
            raise ValueError(
                "record captured without record_qk=True; hardware jobs "
                "need the Q/K activations")
        batch, heads = record.queries.shape[:2]
        for b in range(batch):
            valid = None if record.valid is None else record.valid[b]
            for h in range(heads):
                job = job_from_arrays(
                    record.queries[b, h], record.keys[b, h],
                    record.threshold, valid,
                    layer_index=record.layer_index, head=h)
                job.metadata["pack_key"] = (
                    pack_group, record.layer_index, b, h)
                jobs.append(job)
    return jobs
