"""Tile area model (paper Fig. 12 / Table 2).

Component areas are parameterized by the config so the paper's
iso-area claim falls out structurally: the baseline's single 12x12
bit-parallel QK array occupies exactly the area of AE-LeOPArd's six
12x2 bit-serial DPUs (144 bit-products each); HP's eight DPUs cost
~13% more tile area.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import TileConfig

# calibrated to a ~3.2 mm^2 65 nm AE tile with the paper's shares:
# qk_logic 38%, softmax 13%, v_logic 15%, key buffer 16%, value 18%
A_QK_PER_BITPRODUCT = 0.38 * 3.2 / (6 * 12 * 2)   # mm^2 per bit-product
A_SOFTMAX = 0.13 * 3.2
A_V_LOGIC = 0.15 * 3.2
A_KEY_BUFFER_PER_KB = 0.16 * 3.2 / 48             # banked for bit-serial
A_VALUE_BUFFER_PER_KB = 0.18 * 3.2 / 64


@dataclass(frozen=True)
class AreaBreakdown:
    qk_logic: float
    softmax: float
    v_logic: float
    key_buffer: float
    value_buffer: float

    @property
    def total_mm2(self) -> float:
        return (self.qk_logic + self.softmax + self.v_logic
                + self.key_buffer + self.value_buffer)

    def shares(self) -> dict[str, float]:
        total = self.total_mm2
        return {
            "qk_logic": self.qk_logic / total,
            "softmax": self.softmax / total,
            "v_logic": self.v_logic / total,
            "key_buffer": self.key_buffer / total,
            "value_buffer": self.value_buffer / total,
        }


class AreaModel:
    def tile_area(self, config: TileConfig) -> AreaBreakdown:
        bit_products = (config.num_qk_dpus * config.qk_bits
                        * config.serial_bits)
        # the key buffer holds keys at the datapath's bit width
        key_kb = config.key_buffer_kb * config.qk_bits / 12
        return AreaBreakdown(
            qk_logic=A_QK_PER_BITPRODUCT * bit_products,
            softmax=A_SOFTMAX,
            v_logic=A_V_LOGIC,
            key_buffer=A_KEY_BUFFER_PER_KB * key_kb,
            value_buffer=A_VALUE_BUFFER_PER_KB * config.value_buffer_kb,
        )
