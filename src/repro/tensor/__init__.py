"""Numpy autograd tensor and functional ops."""

from . import functional
from .tensor import Tensor, concatenate, grad_enabled, no_grad, stack

__all__ = ["Tensor", "functional", "no_grad", "grad_enabled", "stack",
           "concatenate"]
