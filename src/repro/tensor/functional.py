"""Fused functional ops with hand-written backward passes.

These are the hot ops of the transformer forward/backward; each one is
a handful of whole-array numpy expressions rather than a chain of
primitive autograd nodes.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, stable_sigmoid


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        x._accumulate(out * (grad - dot))

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z

    def backward(grad):
        soft = np.exp(out)
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean negative log-likelihood over the last axis of ``logits``.

    ``logits``: (..., C); ``labels``: (...) integer classes.
    """
    labels = np.asarray(labels)
    logp = log_softmax(logits, axis=-1)
    flat = logp.reshape((-1, logits.shape[-1]))
    flat_labels = labels.reshape(-1)
    if ignore_index is not None:
        keep = flat_labels != ignore_index
        index = np.nonzero(keep)[0]
        picked = flat[index, flat_labels[index]]
        count = max(int(keep.sum()), 1)
    else:
        picked = flat[np.arange(flat_labels.size), flat_labels]
        count = flat_labels.size
    return -picked.sum() * (1.0 / count)


def gelu(x: Tensor) -> Tensor:
    # tanh approximation (Hendrycks & Gimpel); cubes/squares are spelled
    # as multiplies — numpy's float pow is ~70x slower elementwise and
    # this sits on the hot path of every FFN
    c = np.sqrt(2.0 / np.pi)
    square = x.data * x.data
    u = c * (x.data + 0.044715 * (square * x.data))
    t = np.tanh(u)
    out = 0.5 * x.data * (1.0 + t)

    def backward(grad):
        du = c * (1.0 + 3 * 0.044715 * square)
        dt = (1.0 - t * t) * du
        x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    return Tensor._make(out, (x,), backward)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup: (V, D) table gathered with integer ``indices``."""
    indices = np.asarray(indices)
    out = table.data[indices]

    def backward(grad):
        full = np.zeros_like(table.data)
        np.add.at(full, indices.reshape(-1),
                  grad.reshape(-1, table.data.shape[-1]))
        table._accumulate(full)

    return Tensor._make(out, (table,), backward)


def layer_norm(x: Tensor, gain: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    # reuse the centered activations for the variance instead of a
    # second mean pass inside np.var — this op runs five times per block
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    norm = centered * inv
    out = norm * gain.data + bias.data

    def backward(grad):
        axes = tuple(range(grad.ndim - 1))
        if gain.requires_grad:
            gain._accumulate((grad * norm).sum(axis=axes))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            g = grad * gain.data
            n = x.data.shape[-1]
            gm = g.mean(axis=-1, keepdims=True)
            gnm = (g * norm).mean(axis=-1, keepdims=True)
            x._accumulate(inv * (g - gm - norm * gnm))

    return Tensor._make(out, (x, gain, bias), backward)


def where(condition: np.ndarray, a: Tensor, b) -> Tensor:
    """Select from ``a`` where ``condition`` else constant/tensor ``b``."""
    condition = np.asarray(condition)
    b_tensor = b if isinstance(b, Tensor) else Tensor(np.asarray(b))
    out = np.where(condition, a.data, b_tensor.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(np.where(condition, grad, 0.0))
        if b_tensor.requires_grad:
            b_tensor._accumulate(np.where(condition, 0.0, grad))

    return Tensor._make(out, (a, b_tensor), backward)


def softplus(x: Tensor) -> Tensor:
    # numerically-stable log(1 + exp(x))
    out = np.logaddexp(0.0, x.data)

    def backward(grad):
        x._accumulate(grad * stable_sigmoid(x.data))

    return Tensor._make(out, (x,), backward)
