"""Reverse-mode autograd over numpy arrays.

Design goals, in order: (1) correctness of gradients, (2) throughput —
every op is a whole-array numpy expression, graph bookkeeping is O(1)
per op, and a global no-grad mode lets inference skip the tape
entirely.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference / measurement paths)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum out prepended axes
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum axes that were broadcast from 1
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value
    return np.asarray(value, dtype=np.float64)


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """1 / (1 + exp(-x)) without overflow warnings for large |x|."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class Tensor:
    """A numpy array plus an optional place on the autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Sequence["Tensor"] = ()

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        if grad is None:
            grad = np.ones_like(self.data)
        # topological order via iterative DFS
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def __float__(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other):
        return Tensor(other) - self

    def __mul__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * data / other.data)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor(other) / self

    def __pow__(self, exponent: float):
        data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other):
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(g)
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(g)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int):
        data = np.swapaxes(self.data, a, b)

        def backward(grad):
            self._accumulate(np.swapaxes(grad, a, b))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index):
        data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions & elementwise
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in np.atleast_1d(axis)])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False):
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            ref = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                ref = np.expand_dims(ref, axis)
            mask = (self.data == ref)
            mask = mask / mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward)

    def exp(self):
        data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self):
        data = np.log(self.data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def tanh(self):
        data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self):
        data = stable_sigmoid(self.data)

        def backward(grad):
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self):
        data = np.maximum(self.data, 0.0)

        def backward(grad):
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def sqrt(self):
        data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / data)

        return Tensor._make(data, (self,), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)
