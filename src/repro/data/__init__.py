"""Synthetic task generators and batching."""

from .babi import make_babi_task
from .base import Batch, Dataset, Task, batches
from .cifar import make_cifar_task
from .glue import make_glue_task
from .squad import make_squad_task
from .wikitext import make_wikitext_task

__all__ = ["Batch", "Dataset", "Task", "batches", "make_glue_task",
           "make_babi_task", "make_squad_task", "make_wikitext_task",
           "make_cifar_task"]
