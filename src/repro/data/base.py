"""Datasets, batching, and the task container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


@dataclass
class Batch:
    """One minibatch.  ``inputs`` is an array or a tuple of arrays
    (e.g. MemN2N's (story, question)); ``mask`` marks valid positions
    (None = all valid)."""

    inputs: np.ndarray | tuple
    labels: np.ndarray
    mask: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.labels)


@dataclass
class Dataset:
    inputs: np.ndarray | tuple
    labels: np.ndarray
    mask: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.labels)


@dataclass
class Task:
    name: str
    train: Dataset
    test: Dataset
    num_classes: int
    metadata: dict = field(default_factory=dict)


def _take(inputs, index):
    if isinstance(inputs, tuple):
        return tuple(part[index] for part in inputs)
    return inputs[index]


def batches(dataset: Dataset, batch_size: int,
            rng: np.random.Generator | None = None,
            shuffle: bool = False) -> Iterator[Batch]:
    """Yield minibatches; with ``shuffle`` the order is drawn from
    ``rng`` (or a fresh generator)."""
    n = len(dataset)
    order = np.arange(n)
    if shuffle:
        (rng or np.random.default_rng()).shuffle(order)
    for start in range(0, n, batch_size):
        index = order[start:start + batch_size]
        yield Batch(
            inputs=_take(dataset.inputs, index),
            labels=dataset.labels[index],
            mask=None if dataset.mask is None else dataset.mask[index],
        )
