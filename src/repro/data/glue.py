"""Synthetic GLUE-like sentence classification tasks.

Each sequence is filler tokens with a few planted *marker* tokens; the
label is the majority class vote among the markers.  Solving the task
requires aggregating a handful of positions — the moderately
concentrated attention the paper observes on BERT/GLUE (Fig. 7:
~74-79% of scores prunable).
"""

from __future__ import annotations

import zlib

import numpy as np

from .base import Dataset, Task

VOCAB_SIZE = 64
# token id layout: 0 reserved (pad), 1 CLS-ish, markers, then fillers
MARKER_BASE = 2
FILLER_BASE = 26

# per-task flavor: (num_classes, markers per sequence, sequence length)
GLUE_TASKS = {
    "cola": (2, 3, 18),
    "sst": (2, 3, 20),
    "mrpc": (2, 3, 22),
    "stsb": (2, 3, 20),
    "qqp": (2, 3, 22),
    "mnli": (3, 3, 22),
    "mnli-mm": (3, 3, 22),
    "qnli": (2, 3, 20),
    "rte": (2, 3, 20),
    "wnli": (2, 3, 18),
}


def _marker_tokens(num_classes: int) -> list[np.ndarray]:
    """Disjoint marker-token pools, one per class."""
    per_class = (FILLER_BASE - MARKER_BASE) // num_classes
    return [np.arange(MARKER_BASE + c * per_class,
                      MARKER_BASE + (c + 1) * per_class)
            for c in range(num_classes)]


def _make_split(rng: np.random.Generator, size: int, num_classes: int,
                num_markers: int, seq_len: int) -> Dataset:
    pools = _marker_tokens(num_classes)
    tokens = rng.integers(FILLER_BASE, VOCAB_SIZE, (size, seq_len))
    labels = rng.integers(0, num_classes, size)
    for i in range(size):
        # majority class gets ceil(k/2)+ votes, minorities the rest
        votes = [labels[i]] * (num_markers // 2 + 1)
        while len(votes) < num_markers:
            votes.append(int(rng.integers(0, num_classes)))
        positions = rng.choice(seq_len, size=num_markers, replace=False)
        for vote, position in zip(votes, positions):
            tokens[i, position] = rng.choice(pools[vote])
    return Dataset(inputs=tokens, labels=labels)


def make_glue_task(task: str, train_size: int, test_size: int,
                   seed: int = 0) -> Task:
    if task not in GLUE_TASKS:
        raise KeyError(f"unknown GLUE task {task!r}; "
                       f"have {sorted(GLUE_TASKS)}")
    num_classes, num_markers, seq_len = GLUE_TASKS[task]
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, zlib.crc32(task.encode())]))
    return Task(
        name=f"G-{task.upper()}",
        train=_make_split(rng, train_size, num_classes, num_markers,
                          seq_len),
        test=_make_split(rng, test_size, num_classes, num_markers, seq_len),
        num_classes=num_classes,
        metadata={"seq_len": seq_len, "vocab_size": VOCAB_SIZE},
    )
