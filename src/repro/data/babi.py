"""Synthetic bAbI-like QA for MemN2N.

A story is a set of memory slots, each pairing an entity with a value;
the question names one entity and the answer is its paired value.
Exactly one slot is relevant per question — the extreme attention
concentration behind MemN2N's ~92% pruning rate in the paper.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset, Task

NUM_ENTITIES = 16
NUM_VALUES = 10
SENTENCE_LEN = 3

# token layout: 0 pad, entities, values, fillers
ENTITY_BASE = 1
VALUE_BASE = ENTITY_BASE + NUM_ENTITIES
FILLER_BASE = VALUE_BASE + NUM_VALUES
VOCAB_SIZE = FILLER_BASE + 16


def _make_split(rng: np.random.Generator, size: int,
                num_slots: int) -> Dataset:
    story = np.zeros((size, num_slots, SENTENCE_LEN), dtype=np.int64)
    question = np.zeros((size, SENTENCE_LEN), dtype=np.int64)
    labels = np.zeros(size, dtype=np.int64)
    for i in range(size):
        # unique entity per slot: exactly one slot answers the question
        entities = rng.choice(NUM_ENTITIES, size=num_slots, replace=False)
        values = rng.integers(0, NUM_VALUES, num_slots)
        for slot in range(num_slots):
            story[i, slot] = (
                ENTITY_BASE + entities[slot],
                VALUE_BASE + values[slot],
                rng.integers(FILLER_BASE, VOCAB_SIZE),
            )
        asked = rng.integers(0, num_slots)
        question[i] = (ENTITY_BASE + entities[asked], 0, 0)
        labels[i] = values[asked]
    return Dataset(inputs=(story, question), labels=labels)


def make_babi_task(task_id: int, train_size: int, test_size: int,
                   seed: int = 0) -> Task:
    """Tasks differ in story size (and RNG stream): later tasks carry
    more distractor slots, like the harder bAbI task ids."""
    if not 1 <= task_id <= 20:
        raise ValueError("bAbI task ids run 1..20")
    num_slots = 10 + (task_id % 5)          # 10..14 memory slots
    rng = np.random.default_rng(np.random.SeedSequence([seed, 7, task_id]))
    return Task(
        name=f"Task-{task_id}",
        train=_make_split(rng, train_size, num_slots),
        test=_make_split(rng, test_size, num_slots),
        num_classes=NUM_VALUES,
        metadata={"num_slots": num_slots, "vocab_size": VOCAB_SIZE,
                  "sentence_len": SENTENCE_LEN},
    )
