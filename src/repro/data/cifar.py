"""Synthetic CIFAR-like patch classification for the ViT stand-in.

Each "image" is a grid of patch feature vectors; half the patches carry
a class-specific template plus noise, the rest are pure noise.  The
class evidence is spread across many patches, so attention stays broad
— matching the paper's lowest pruning rate on ViT (~60%).
"""

from __future__ import annotations

import numpy as np

from .base import Dataset, Task

NUM_PATCHES = 16
PATCH_DIM = 12
NUM_CLASSES = 10
INFORMATIVE = 8        # patches carrying class signal
SIGNAL = 0.9
NOISE = 1.0


def _make_split(rng: np.random.Generator, size: int,
                templates: np.ndarray) -> Dataset:
    labels = rng.integers(0, NUM_CLASSES, size)
    patches = rng.standard_normal((size, NUM_PATCHES, PATCH_DIM)) * NOISE
    patches[:, :INFORMATIVE] += SIGNAL * templates[labels]
    return Dataset(inputs=patches, labels=labels)


def make_cifar_task(train_size: int, test_size: int, seed: int = 0) -> Task:
    rng = np.random.default_rng(np.random.SeedSequence([seed, 17]))
    templates = rng.standard_normal((NUM_CLASSES, INFORMATIVE, PATCH_DIM))
    return Task(
        name="CIFAR-10",
        train=_make_split(rng, train_size, templates),
        test=_make_split(rng, test_size, templates),
        num_classes=NUM_CLASSES,
        metadata={"num_patches": NUM_PATCHES, "patch_dim": PATCH_DIM},
    )
