"""Synthetic WikiText-like causal language modeling.

Sequences follow a topic-conditioned bigram chain: token t+1 is a
deterministic function of (token t, topic) with a small corruption
rate.  Prediction needs the previous token plus the topic token near
the start — few relevant keys per row, like the paper's GPT-2 decode
pruning (~74%).
"""

from __future__ import annotations

import numpy as np

from .base import Dataset, Task

VOCAB_SIZE = 48
BOS = 0
NUM_TOPICS = 4
TOPIC_BASE = 1                    # tokens 1..4 are topic markers
BODY_BASE = TOPIC_BASE + NUM_TOPICS
NOISE_RATE = 0.1


def _chain_next(token: np.ndarray, topic: np.ndarray) -> np.ndarray:
    body = VOCAB_SIZE - BODY_BASE
    return BODY_BASE + (token * 7 + topic * 11 + 3) % body


def _make_split(rng: np.random.Generator, size: int,
                seq_len: int) -> Dataset:
    tokens = np.zeros((size, seq_len), dtype=np.int64)
    tokens[:, 0] = BOS
    topics = rng.integers(0, NUM_TOPICS, size)
    tokens[:, 1] = TOPIC_BASE + topics
    tokens[:, 2] = BODY_BASE + rng.integers(
        0, VOCAB_SIZE - BODY_BASE, size)
    for position in range(3, seq_len):
        clean = _chain_next(tokens[:, position - 1], topics)
        noise = BODY_BASE + rng.integers(0, VOCAB_SIZE - BODY_BASE, size)
        corrupt = rng.random(size) < NOISE_RATE
        tokens[:, position] = np.where(corrupt, noise, clean)
    return Dataset(inputs=tokens, labels=np.zeros(size, dtype=np.int64))


def make_wikitext_task(train_size: int, test_size: int,
                       seed: int = 0, seq_len: int = 24) -> Task:
    rng = np.random.default_rng(np.random.SeedSequence([seed, 13]))
    return Task(
        name="WikiText-2",
        train=_make_split(rng, train_size, seq_len),
        test=_make_split(rng, test_size, seq_len),
        num_classes=VOCAB_SIZE,
        metadata={"seq_len": seq_len, "vocab_size": VOCAB_SIZE},
    )
