"""Synthetic SQuAD-like span extraction.

The question entity sits at position 0; the same entity occurs exactly
once inside the passage, and the answer is that position.  Each token
decides "am I the answer start?" by comparing itself against the
question — two relevant keys per query row.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset, Task

NUM_ENTITIES = 16
ENTITY_BASE = 2
FILLER_BASE = ENTITY_BASE + NUM_ENTITIES
VOCAB_SIZE = FILLER_BASE + 32


def _make_split(rng: np.random.Generator, size: int,
                seq_len: int) -> Dataset:
    tokens = rng.integers(FILLER_BASE, VOCAB_SIZE, (size, seq_len))
    labels = np.zeros(size, dtype=np.int64)
    for i in range(size):
        entity = ENTITY_BASE + rng.integers(0, NUM_ENTITIES)
        answer = int(rng.integers(1, seq_len))
        tokens[i, 0] = entity
        tokens[i, answer] = entity
        labels[i] = answer
    return Dataset(inputs=tokens, labels=labels)


def make_squad_task(variant: str, train_size: int, test_size: int,
                    seed: int = 0) -> Task:
    seq_len = {"v1": 20, "v2": 24}.get(variant, 20)
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, 11, 1 if variant == "v1" else 2]))
    return Task(
        name=f"SQUAD-{variant}" if variant != "v1" else "SQUAD",
        train=_make_split(rng, train_size, seq_len),
        test=_make_split(rng, test_size, seq_len),
        num_classes=seq_len,
        metadata={"seq_len": seq_len, "vocab_size": VOCAB_SIZE},
    )
