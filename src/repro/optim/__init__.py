"""Optimizers and gradient utilities."""

from ..nn.functional_utils import clip_grad_norm
from .adam import Adam

__all__ = ["Adam", "clip_grad_norm"]
