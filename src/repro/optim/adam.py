"""Adam with optional parameter groups (weights vs thresholds)."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam (Kingma & Ba).  Accepts a flat param list or groups:

    ``Adam(params, lr=1e-3)`` or
    ``Adam([{"params": ws, "lr": 5e-4}, {"params": ths, "lr": 1e-2}])``.
    """

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        params = list(params)
        if params and isinstance(params[0], dict):
            self.groups = [dict(g) for g in params]
        else:
            self.groups = [{"params": params}]
        for group in self.groups:
            group.setdefault("lr", lr)
            group.setdefault("betas", betas)
            group.setdefault("eps", eps)
            group.setdefault("weight_decay", weight_decay)
            group["params"] = list(group["params"])
        self.state: dict[int, dict] = {}
        self.t = 0

    def all_params(self) -> list:
        return [p for group in self.groups for p in group["params"]]

    def zero_grad(self) -> None:
        for p in self.all_params():
            p.zero_grad()

    def step(self) -> None:
        self.t += 1
        for group in self.groups:
            beta1, beta2 = group["betas"]
            lr, eps = group["lr"], group["eps"]
            decay = group["weight_decay"]
            bias1 = 1.0 - beta1 ** self.t
            bias2 = 1.0 - beta2 ** self.t
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                if decay:
                    grad = grad + decay * p.data
                state = self.state.setdefault(id(p), {
                    "m": np.zeros_like(p.data),
                    "v": np.zeros_like(p.data),
                })
                state["m"] = beta1 * state["m"] + (1 - beta1) * grad
                state["v"] = beta2 * state["v"] + (1 - beta2) * grad * grad
                m_hat = state["m"] / bias1
                v_hat = state["v"] / bias2
                p.data = p.data - lr * m_hat / (np.sqrt(v_hat) + eps)
