"""Pruning-aware attention: the shared score-gate core plus the
multi-head self-attention module.

Every attention-like computation in the model zoo (transformer heads,
MemN2N hops) funnels its score matrix through ``AttentionBase``'s gated
softmax so the controller, statistics and record capture behave
identically across models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pruning import PruningMode
from ..core.soft_threshold import log_soft_threshold, soft_threshold
from ..nn import Linear, Module
from ..tensor import Tensor, grad_enabled
from ..tensor import functional as F

NEG_INF = -1e9


@dataclass
class AttentionRecord:
    """One captured forward pass of one attention layer."""

    layer_index: int
    scores: np.ndarray                   # (B, H, Sq, Sk)
    pruned_mask: np.ndarray | None       # (B, H, Sq, Sk) bool
    threshold: float
    valid: np.ndarray | None = None      # (B, Sq, Sk) bool
    queries: np.ndarray | None = None    # (B, H, Sq, Dh)
    keys: np.ndarray | None = None       # (B, H, Sk, Dh)

    def pruning_rate(self) -> float:
        if self.pruned_mask is None:
            return 0.0
        if self.valid is None:
            return float(self.pruned_mask.mean())
        valid = np.broadcast_to(self.valid[:, None],
                                self.pruned_mask.shape)
        total = valid.sum()
        return float((self.pruned_mask & valid).sum() / max(total, 1))


class AttentionBase(Module):
    """Controller hookup, pruning statistics and record capture."""

    def __init__(self, layer_index: int):
        super().__init__()
        self.layer_index = layer_index
        self.controller = None
        # optional heuristic override for HARD mode (baseline studies):
        # ("relative", delta) — A3-style row-max relative threshold;
        # ("topk", k)         — SpAtten-style top-k survivors per row
        self.heuristic: tuple[str, float] | None = None
        self.record_scores = False
        self.record_qk = False
        self.records: list[AttentionRecord] = []
        self.stat_pruned = 0
        self.stat_valid = 0

    def clear_records(self) -> None:
        self.records = []

    def clear_stats(self) -> None:
        self.stat_pruned = 0
        self.stat_valid = 0

    def gated_softmax(self, scores: Tensor,
                      valid: np.ndarray | None = None,
                      queries: np.ndarray | None = None,
                      keys: np.ndarray | None = None) -> Tensor:
        """Softmax over scores with the controller's pruning applied.

        ``scores``: (B, H, Sq, Sk); ``valid``: (B, Sq, Sk) bool mask of
        positions that exist (padding / causality).
        """
        controller = self.controller
        mode = controller.mode if controller is not None else PruningMode.OFF
        valid4 = None if valid is None else valid[:, None]

        if mode is PruningMode.SOFT:
            threshold = controller.threshold(self.layer_index)
            logits = scores + log_soft_threshold(
                scores, threshold, controller.soft_config)
            if valid4 is not None:
                logits = F.where(valid4, logits, NEG_INF)
            # L0 terms and sparsity counters feed the training
            # objective; no-grad (evaluation) forwards must not
            # accumulate them
            if grad_enabled():
                gate = soft_threshold(scores, threshold,
                                      controller.soft_config)
                if valid4 is not None:
                    count = np.broadcast_to(valid4, scores.shape).sum()
                    gate_mean = (gate * valid4).sum() * (1.0 / max(count, 1))
                else:
                    count = scores.size
                    gate_mean = gate.mean()
                controller.add_l0(gate_mean)
                hard = scores.data < float(threshold.data)
                if valid4 is not None:
                    hard = hard & np.broadcast_to(valid4, scores.shape)
                controller.count_soft(int(hard.sum()), int(count))
            return F.softmax(logits)

        if mode is PruningMode.HARD:
            threshold = float(controller.threshold(self.layer_index).data)
            data = scores.data
            masked = data if valid4 is None else np.where(
                valid4, data, -np.inf)
            row_max = masked.max(axis=-1, keepdims=True)
            if self.heuristic is not None:
                kind, value = self.heuristic
                if kind == "relative":
                    pruned = data < (row_max - value)
                elif kind == "topk":
                    keep = min(int(value), data.shape[-1])
                    order = np.argsort(
                        np.argsort(-masked, axis=-1), axis=-1)
                    pruned = order >= keep
                else:
                    raise ValueError(f"unknown heuristic {kind!r}")
            else:
                pruned = data < threshold
            if valid4 is not None:
                pruned &= np.broadcast_to(valid4, data.shape)
            # the running-max register always survives: a row is never
            # pruned empty, matching the accelerator's back end
            pruned &= ~(masked == row_max)
            self.stat_pruned += int(pruned.sum())
            self.stat_valid += (int(np.broadcast_to(valid4, data.shape).sum())
                                if valid4 is not None else data.size)
            if self.record_scores:
                self.records.append(AttentionRecord(
                    layer_index=self.layer_index,
                    scores=data.copy(),
                    pruned_mask=pruned.copy(),
                    threshold=threshold,
                    valid=None if valid is None else valid.copy(),
                    queries=queries.copy() if (
                        self.record_qk and queries is not None) else None,
                    keys=keys.copy() if (
                        self.record_qk and keys is not None) else None,
                ))
            drop = pruned if valid4 is None else (
                pruned | ~np.broadcast_to(valid4, data.shape))
            logits = F.where(~drop, scores, NEG_INF)
            return F.softmax(logits)

        # OFF
        if valid4 is not None:
            scores = F.where(valid4, scores, NEG_INF)
        return F.softmax(scores)


class PrunedSelfAttention(AttentionBase):
    """Multi-head self-attention with learned runtime pruning."""

    def __init__(self, dim: int, num_heads: int, layer_index: int,
                 rng: np.random.Generator):
        super().__init__(layer_index)
        if dim % num_heads:
            raise ValueError("num_heads must divide dim")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.wq = Linear(dim, dim, rng)
        self.wk = Linear(dim, dim, rng)
        self.wv = Linear(dim, dim, rng)
        self.wo = Linear(dim, dim, rng)

    def _split(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads,
                         self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, valid: np.ndarray | None = None,
                kv_cache: dict | None = None) -> Tensor:
        """``x``: (B, S, D).  ``valid``: (B, Sq, Sk) position mask.

        ``kv_cache`` (decode path): dict with optional "k"/"v" arrays of
        shape (B, H, S_hist, Dh); the new keys/values are appended and
        attention runs with S_q = x's sequence length against the full
        history.
        """
        batch, seq, _ = x.shape
        q = self._split(self.wq(x), batch, seq)
        k = self._split(self.wk(x), batch, seq)
        v = self._split(self.wv(x), batch, seq)

        if kv_cache is not None:
            from ..tensor import concatenate
            if "k" in kv_cache:
                k = concatenate([kv_cache["k"], k], axis=2)
                v = concatenate([kv_cache["v"], v], axis=2)
            kv_cache["k"], kv_cache["v"] = k, v

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale
        probs = self.gated_softmax(scores, valid,
                                   queries=q.data * scale, keys=k.data)
        out = probs @ v
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.wo(out)
