"""Pruning-aware attention: the shared score-gate core plus the
multi-head self-attention module.

Every attention-like computation in the model zoo (transformer heads,
MemN2N hops) funnels its score matrix through ``AttentionBase``'s gated
softmax so the controller, statistics and record capture behave
identically across models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pruning import PruningMode
from ..core.soft_threshold import log_soft_threshold, soft_threshold
from ..nn import Linear, Module
from ..tensor import Tensor, grad_enabled
from ..tensor import functional as F

NEG_INF = -1e9


@dataclass
class AttentionRecord:
    """One captured forward pass of one attention layer."""

    layer_index: int
    scores: np.ndarray                   # (B, H, Sq, Sk)
    pruned_mask: np.ndarray | None       # (B, H, Sq, Sk) bool
    threshold: float
    valid: np.ndarray | None = None      # (B, Sq, Sk) bool
    queries: np.ndarray | None = None    # (B, H, Sq, Dh)
    keys: np.ndarray | None = None       # (B, H, Sk, Dh)

    def pruning_rate(self) -> float:
        if self.pruned_mask is None:
            return 0.0
        if self.valid is None:
            return float(self.pruned_mask.mean())
        valid = np.broadcast_to(self.valid[:, None],
                                self.pruned_mask.shape)
        total = valid.sum()
        return float((self.pruned_mask & valid).sum() / max(total, 1))


class AttentionBase(Module):
    """Controller hookup, pruning statistics and record capture."""

    def __init__(self, layer_index: int):
        super().__init__()
        self.layer_index = layer_index
        self.controller = None
        # optional heuristic override for HARD mode (baseline studies):
        # ("relative", delta) — A3-style row-max relative threshold;
        # ("topk", k)         — SpAtten-style top-k survivors per row
        self.heuristic: tuple[str, float] | None = None
        self.record_scores = False
        self.record_qk = False
        self.records: list[AttentionRecord] = []
        self.stat_pruned = 0
        self.stat_valid = 0

    def clear_records(self) -> None:
        self.records = []

    def clear_stats(self) -> None:
        self.stat_pruned = 0
        self.stat_valid = 0

    def gated_softmax(self, scores: Tensor,
                      valid: np.ndarray | None = None,
                      queries: np.ndarray | None = None,
                      keys: np.ndarray | None = None) -> Tensor:
        """Softmax over scores with the controller's pruning applied.

        ``scores``: (B, H, Sq, Sk); ``valid``: (B, Sq, Sk) bool mask of
        positions that exist (padding / causality).
        """
        controller = self.controller
        mode = controller.mode if controller is not None else PruningMode.OFF
        valid4 = None if valid is None else valid[:, None]

        if mode is PruningMode.SOFT:
            threshold = controller.threshold(self.layer_index)
            logits = scores + log_soft_threshold(
                scores, threshold, controller.soft_config)
            if valid4 is not None:
                logits = F.where(valid4, logits, NEG_INF)
            # L0 terms and sparsity counters feed the training
            # objective; no-grad (evaluation) forwards must not
            # accumulate them
            if grad_enabled():
                gate = soft_threshold(scores, threshold,
                                      controller.soft_config)
                if valid4 is not None:
                    count = int(valid4.sum()) * scores.shape[1]
                    gate_mean = (gate * valid4).sum() * (1.0 / max(count, 1))
                else:
                    count = scores.size
                    gate_mean = gate.mean()
                controller.add_l0(gate_mean)
                hard = scores.data < float(threshold.data)
                if valid4 is not None:
                    hard = hard & valid4
                controller.count_soft(int(hard.sum()), int(count))
            return F.softmax(logits)

        if mode is PruningMode.HARD:
            threshold = float(controller.threshold(self.layer_index).data)
            data = scores.data
            masked = data if valid4 is None else np.where(
                valid4, data, -np.inf)
            row_max = masked.max(axis=-1, keepdims=True)
            if self.heuristic is not None:
                kind, value = self.heuristic
                if kind == "relative":
                    pruned = data < (row_max - value)
                elif kind == "topk":
                    keep = min(int(value), data.shape[-1])
                    order = np.argsort(
                        np.argsort(-masked, axis=-1), axis=-1)
                    pruned = order >= keep
                else:
                    raise ValueError(f"unknown heuristic {kind!r}")
            else:
                pruned = data < threshold
            if valid4 is not None:
                pruned &= valid4
            # the running-max register always survives: a row is never
            # pruned empty, matching the accelerator's back end
            pruned &= masked != row_max
            self.stat_pruned += int(pruned.sum())
            # valid4 broadcasts over the head axis; count it arithmetically
            self.stat_valid += (int(valid4.sum()) * data.shape[1]
                                if valid4 is not None else data.size)
            if self.record_scores:
                self.records.append(AttentionRecord(
                    layer_index=self.layer_index,
                    scores=data.copy(),
                    pruned_mask=pruned.copy(),
                    threshold=threshold,
                    valid=None if valid is None else valid.copy(),
                    queries=queries.copy() if (
                        self.record_qk and queries is not None) else None,
                    keys=keys.copy() if (
                        self.record_qk and keys is not None) else None,
                ))
            keep = ~pruned if valid4 is None else (~pruned & valid4)
            logits = F.where(keep, scores, NEG_INF)
            return F.softmax(logits)

        # OFF
        if valid4 is not None:
            scores = F.where(valid4, scores, NEG_INF)
        return F.softmax(scores)


class PrunedSelfAttention(AttentionBase):
    """Multi-head self-attention with learned runtime pruning."""

    def __init__(self, dim: int, num_heads: int, layer_index: int,
                 rng: np.random.Generator):
        super().__init__(layer_index)
        if dim % num_heads:
            raise ValueError("num_heads must divide dim")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.wq = Linear(dim, dim, rng)
        self.wk = Linear(dim, dim, rng)
        self.wv = Linear(dim, dim, rng)
        self.wo = Linear(dim, dim, rng)

    def _split(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads,
                         self.head_dim).transpose(0, 2, 1, 3)

    def _scatter_append(self, kv_cache: dict, k: Tensor, v: Tensor
                        ) -> tuple[Tensor, Tensor]:
        """Write one decode step's K/V rows into per-stream slots of the
        shared padded buffers and advance the recorded lengths."""
        lengths = np.asarray(kv_cache["lengths"])
        if k.shape[2] != 1:
            raise ValueError("scatter kv_cache expects one new position "
                             f"per step, got {k.shape[2]}")
        buf_k, buf_v = kv_cache["k"], kv_cache["v"]
        if int(lengths.max()) >= buf_k.shape[2]:
            raise ValueError("kv_cache buffer capacity exhausted "
                             f"({buf_k.shape[2]} slots)")
        capacities = kv_cache.get("capacities")
        if capacities is not None:
            # per-stream (request-derived) capacities: a stream may
            # never outgrow the K/V budget its own request implies,
            # regardless of how much shared buffer is left
            over = lengths >= np.asarray(capacities)
            if over.any():
                row = int(np.argmax(over))
                raise ValueError(
                    f"stream in row {row} exhausted its per-stream KV "
                    f"capacity ({int(np.asarray(capacities)[row])} rows)")
        rows = np.arange(k.shape[0])
        buf_k[rows, :, lengths] = k.data[:, :, 0]
        buf_v[rows, :, lengths] = v.data[:, :, 0]
        kv_cache["lengths"] = lengths + 1
        return Tensor(buf_k), Tensor(buf_v)

    def forward(self, x: Tensor, valid: np.ndarray | None = None,
                kv_cache: dict | None = None) -> Tensor:
        """``x``: (B, S, D).  ``valid``: (B, Sq, Sk) position mask.

        ``kv_cache`` (decode path) supports two protocols:

        * append — dict with optional "k"/"v" arrays of shape
          (B, H, S_hist, Dh); the new keys/values are concatenated and
          attention runs with S_q = x's sequence length against the
          full history.
        * scatter — dict with "k"/"v" float buffers (B, H, cap, Dh)
          plus "lengths" (B,) per-stream history sizes and optionally
          "capacities" (B,) per-stream row budgets (request-derived
          limits enforced before the shared buffer runs out).  This
          step's
          single new K/V row is written at each stream's own length, so
          streams of different ages coalesce into one padded batch
          while every row keeps the exact bit pattern it would have
          had served alone (histories stay left-aligned; the caller
          masks positions past each length via ``valid``).
        """
        batch, seq, _ = x.shape
        q = self._split(self.wq(x), batch, seq)
        k = self._split(self.wk(x), batch, seq)
        v = self._split(self.wv(x), batch, seq)

        if kv_cache is not None:
            if "lengths" in kv_cache:
                k, v = self._scatter_append(kv_cache, k, v)
            else:
                from ..tensor import concatenate
                if "k" in kv_cache:
                    k = concatenate([kv_cache["k"], k], axis=2)
                    v = concatenate([kv_cache["v"], v], axis=2)
                kv_cache["k"], kv_cache["v"] = k, v

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.swapaxes(-1, -2)) * scale
        probs = self.gated_softmax(scores, valid,
                                   queries=q.data * scale, keys=k.data)
        out = probs @ v
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.wo(out)
