"""End-to-end memory network (MemN2N) for bAbI-style QA.

Each hop attends from the controller state over the story's memory
slots; those attention scores go through the same gated softmax as the
transformer heads, so the paper's runtime pruning applies per hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.soft_threshold import SoftThresholdConfig, SurrogateL0Config
from ..nn import Embedding, Linear, Module
from ..tensor import Tensor, no_grad
from ..tensor import functional as F
from .attention import AttentionBase
from .controller import ThresholdController


@dataclass(frozen=True)
class MemN2NConfig:
    vocab_size: int
    num_slots: int
    sentence_len: int
    dim: int
    num_hops: int
    num_classes: int
    seed: int = 0


class MemoryHop(AttentionBase):
    """One hop: scores = u · m_i / sqrt(d), pruned softmax, read out."""

    def __init__(self, dim: int, layer_index: int):
        super().__init__(layer_index)
        self.dim = dim

    def forward(self, u: Tensor, memory: Tensor, output: Tensor,
                valid: np.ndarray | None = None) -> Tensor:
        # u: (B, D); memory/output: (B, M, D)
        scale = 1.0 / np.sqrt(self.dim)
        q = u.reshape(u.shape[0], 1, u.shape[1])
        scores = (q @ memory.swapaxes(-1, -2)) * scale     # (B, 1, M)
        scores4 = scores.reshape(scores.shape[0], 1, 1, scores.shape[2])
        valid3 = None if valid is None else valid[:, None, :]
        probs = self.gated_softmax(
            scores4, valid3,
            queries=q.data[:, None] * scale,
            keys=memory.data[:, None])
        probs = probs.reshape(probs.shape[0], 1, probs.shape[3])
        read = (probs @ output)                            # (B, 1, D)
        return read.reshape(read.shape[0], read.shape[2])


class MemN2N(Module):
    metric_name = "accuracy"

    def __init__(self, config: MemN2NConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        # adjacent weight tying (A = B): a question entity matches the
        # slot holding the same entity straight from initialization
        self.embed_a = Embedding(config.vocab_size, config.dim, rng,
                                 init_scale=0.7)
        self.embed_b = self.embed_a
        self.embed_c = Embedding(config.vocab_size, config.dim, rng)
        self.hops = [MemoryHop(config.dim, i)
                     for i in range(config.num_hops)]
        self.head = Linear(config.dim, config.num_classes, rng)
        self._controller: ThresholdController | None = None

    def attention_modules(self) -> list[MemoryHop]:
        return list(self.hops)

    def make_controller(self, l0_config: SurrogateL0Config | None = None,
                        soft_config: SoftThresholdConfig | None = None
                        ) -> ThresholdController:
        controller = ThresholdController(len(self.hops), l0_config,
                                         soft_config)
        for hop in self.hops:
            hop.controller = controller
        self._controller = controller
        return controller

    def logits(self, story: np.ndarray, question: np.ndarray,
               slot_valid: np.ndarray | None = None) -> Tensor:
        # story: (B, M, L) token ids; question: (B, L) token ids;
        # token 0 is padding and contributes nothing to the bags
        story_mask = (np.asarray(story) != 0)[..., None]
        question_mask = (np.asarray(question) != 0)[..., None]
        memory = (self.embed_a(story) * story_mask).sum(axis=2)   # (B, M, D)
        output = (self.embed_c(story) * story_mask).sum(axis=2)   # (B, M, D)
        u = (self.embed_b(question) * question_mask).sum(axis=1)  # (B, D)
        for hop in self.hops:
            read = hop(u, memory, output, slot_valid)
            u = u + read          # residual controller state update
        return self.head(u)

    def loss(self, batch) -> Tensor:
        story, question = batch.inputs
        return F.cross_entropy(
            self.logits(story, question, batch.mask), batch.labels)

    def metrics(self, batch) -> tuple[int, int]:
        story, question = batch.inputs
        with no_grad():
            logits = self.logits(story, question, batch.mask)
        predictions = logits.data.argmax(axis=-1)
        correct = int((predictions == batch.labels).sum())
        return correct, len(batch.labels)
