"""Transformer encoder classifier (BERT/ViT/ALBERT stand-ins)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.soft_threshold import SoftThresholdConfig, SurrogateL0Config
from ..nn import Embedding, LayerNorm, Linear, Module, Parameter
from ..tensor import Tensor
from ..tensor import functional as F
from .attention import PrunedSelfAttention
from .controller import ThresholdController


@dataclass(frozen=True)
class ClassifierConfig:
    vocab_size: int | None          # None => continuous patch inputs
    max_seq_len: int
    dim: int
    num_heads: int
    num_layers: int
    num_classes: int
    seed: int = 0
    ffn_mult: int = 2
    input_dim: int | None = None    # patch feature size (vocab_size None)
    head: str = "cls"               # "cls" (pooled) or "span" (per-token)


class TransformerBlock(Module):
    def __init__(self, dim: int, num_heads: int, ffn_mult: int,
                 layer_index: int, rng: np.random.Generator):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attention = PrunedSelfAttention(dim, num_heads, layer_index, rng)
        self.ln2 = LayerNorm(dim)
        self.ffn1 = Linear(dim, dim * ffn_mult, rng)
        self.ffn2 = Linear(dim * ffn_mult, dim, rng)

    def forward(self, x: Tensor, valid: np.ndarray | None = None,
                kv_cache: dict | None = None) -> Tensor:
        x = x + self.attention(self.ln1(x), valid, kv_cache)
        return x + self.ffn2(F.gelu(self.ffn1(self.ln2(x))))


class TransformerClassifier(Module):
    """Encoder over tokens (or patches) with a classification head.

    ``head="cls"`` mean-pools valid positions; ``head="span"`` emits one
    logit per token position (SQuAD-style answer-start prediction).
    """

    metric_name = "accuracy"

    def __init__(self, config: ClassifierConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        if config.vocab_size is not None:
            self.embed = Embedding(config.vocab_size, config.dim, rng)
        else:
            if config.input_dim is None:
                raise ValueError("patch models need input_dim")
            self.embed = Linear(config.input_dim, config.dim, rng)
        self.pos = Parameter(
            rng.standard_normal((config.max_seq_len, config.dim)) * 0.02)
        self.blocks = [TransformerBlock(config.dim, config.num_heads,
                                        config.ffn_mult, i, rng)
                       for i in range(config.num_layers)]
        self.ln_out = LayerNorm(config.dim)
        out_dim = 1 if config.head == "span" else config.num_classes
        self.head = Linear(config.dim, out_dim, rng)
        self._controller: ThresholdController | None = None

    # -- pruning plumbing ----------------------------------------------
    def attention_modules(self) -> list[PrunedSelfAttention]:
        return [block.attention for block in self.blocks]

    def make_controller(self, l0_config: SurrogateL0Config | None = None,
                        soft_config: SoftThresholdConfig | None = None
                        ) -> ThresholdController:
        controller = ThresholdController(len(self.blocks), l0_config,
                                         soft_config)
        for module in self.attention_modules():
            module.controller = controller
        self._controller = controller
        return controller

    # -- forward --------------------------------------------------------
    def encode(self, inputs: np.ndarray,
               mask: np.ndarray | None = None) -> Tensor:
        inputs = np.asarray(inputs)
        seq = inputs.shape[1]
        if self.config.vocab_size is None:
            from ..tensor import Tensor
            x = self.embed(Tensor(inputs)) + self.pos[:seq]
        else:
            x = self.embed(inputs) + self.pos[:seq]
        valid = None
        if mask is not None:
            valid = (mask[:, None, :] & mask[:, :, None])
        for block in self.blocks:
            x = block(x, valid)
        return self.ln_out(x)

    def logits(self, inputs: np.ndarray,
               mask: np.ndarray | None = None) -> Tensor:
        x = self.encode(inputs, mask)
        if self.config.head == "span":
            out = self.head(x)                      # (B, S, 1)
            return out.reshape(out.shape[0], out.shape[1])
        if mask is not None:
            weights = mask[:, :, None] / mask.sum(
                axis=1, keepdims=True)[:, :, None]
            pooled = (x * weights).sum(axis=1, keepdims=True)
        else:
            pooled = x.mean(axis=1, keepdims=True)
        # the head runs on (B, 1, D): stacked matmuls use the same
        # per-item kernel at every batch size, so a request's logits do
        # not depend on how many others were coalesced alongside it
        out = self.head(pooled)
        return out.reshape(out.shape[0], out.shape[-1])

    # -- task interface -------------------------------------------------
    def loss(self, batch) -> Tensor:
        return F.cross_entropy(self.logits(batch.inputs, batch.mask),
                               batch.labels)

    def metrics(self, batch) -> tuple[int, int]:
        from ..tensor import no_grad
        with no_grad():
            logits = self.logits(batch.inputs, batch.mask)
        predictions = logits.data.argmax(axis=-1)
        correct = int((predictions == batch.labels).sum())
        return correct, len(batch.labels)
