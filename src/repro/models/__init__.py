"""Model zoo: pruning-aware transformer family + threshold controller."""

from .attention import AttentionRecord, PrunedSelfAttention
from .controller import ThresholdController
from .lm import LMConfig, TransformerLM
from .memn2n import MemN2N, MemN2NConfig
from .transformer import ClassifierConfig, TransformerClassifier

__all__ = ["TransformerClassifier", "ClassifierConfig", "TransformerLM",
           "LMConfig", "MemN2N", "MemN2NConfig", "ThresholdController",
           "PrunedSelfAttention", "AttentionRecord"]
