"""Causal transformer LM (GPT-2 stand-in) with a KV-cache decode path."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.soft_threshold import SoftThresholdConfig, SurrogateL0Config
from ..nn import Embedding, LayerNorm, Linear, Module, Parameter
from ..tensor import Tensor, no_grad
from ..tensor import functional as F
from .controller import ThresholdController
from .transformer import TransformerBlock


@dataclass(frozen=True)
class LMConfig:
    vocab_size: int
    max_seq_len: int
    dim: int
    num_heads: int
    num_layers: int
    seed: int = 0
    ffn_mult: int = 2


class TransformerLM(Module):
    metric_name = "perplexity"

    def __init__(self, config: LMConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embed = Embedding(config.vocab_size, config.dim, rng)
        self.pos = Parameter(
            rng.standard_normal((config.max_seq_len, config.dim)) * 0.02)
        self.blocks = [TransformerBlock(config.dim, config.num_heads,
                                        config.ffn_mult, i, rng)
                       for i in range(config.num_layers)]
        self.ln_out = LayerNorm(config.dim)
        self.head = Linear(config.dim, config.vocab_size, rng)
        self._controller: ThresholdController | None = None

    def attention_modules(self):
        return [block.attention for block in self.blocks]

    def make_controller(self, l0_config: SurrogateL0Config | None = None,
                        soft_config: SoftThresholdConfig | None = None
                        ) -> ThresholdController:
        controller = ThresholdController(len(self.blocks), l0_config,
                                         soft_config)
        for module in self.attention_modules():
            module.controller = controller
        self._controller = controller
        return controller

    def logits(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        batch, seq = tokens.shape
        causal = np.tril(np.ones((seq, seq), dtype=bool))
        valid = np.broadcast_to(causal, (batch, seq, seq))
        x = self.embed(tokens) + self.pos[:seq]
        for block in self.blocks:
            x = block(x, valid)
        return self.head(self.ln_out(x))

    def loss(self, batch) -> Tensor:
        tokens = np.asarray(batch.inputs)
        logits = self.logits(tokens[:, :-1])
        return F.cross_entropy(logits, tokens[:, 1:])

    def metrics(self, batch) -> tuple[float, int]:
        """Returns (total negative log likelihood, token count)."""
        tokens = np.asarray(batch.inputs)
        with no_grad():
            logits = self.logits(tokens[:, :-1])
            nll = F.cross_entropy(logits, tokens[:, 1:])
        count = tokens[:, 1:].size
        return float(nll.data) * count, count

    @staticmethod
    def finish_metric(total: float, count: int) -> float:
        return float(np.exp(total / max(count, 1)))

    # -- batched serving primitives -------------------------------------
    def prefill(self, tokens: np.ndarray,
                lengths: np.ndarray | None = None
                ) -> tuple[np.ndarray, list[dict]]:
        """Run padded prompts once, filling per-block KV caches.

        ``tokens``: (B, S) prompts left-aligned to a shared width;
        ``lengths``: (B,) true prompt sizes (default: all S).  Returns
        (next-token logits (B, V) taken at each prompt's own last
        position, caches) where each cache holds "k"/"v" Tensors of
        shape (B, H, S, Dh) — positions past a stream's length hold
        padding garbage and must be sliced off before reuse.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        batch, seq = tokens.shape
        if lengths is None:
            lengths = np.full(batch, seq, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        causal = np.tril(np.ones((seq, seq), dtype=bool))
        present = np.arange(seq)[None, :] < lengths[:, None]
        valid = (causal[None] & present[:, None, :] & present[:, :, None])
        caches: list[dict] = [{} for _ in self.blocks]
        with no_grad():
            x = self.embed(tokens) + self.pos[:seq]
            for block, cache in zip(self.blocks, caches):
                x = block(x, valid, kv_cache=cache)
            logits = self.head(self.ln_out(x)).data
        return logits[np.arange(batch), lengths - 1], caches

    def decode_step(self, tokens: np.ndarray,
                    caches: list[dict]) -> np.ndarray:
        """One coalesced decode step over concurrent streams.

        ``tokens``: (B,) the latest token of each stream; ``caches``:
        per-block scatter-protocol dicts ("k"/"v" float buffers
        (B, H, cap, Dh), "lengths" (B,) history sizes — see
        ``PrunedSelfAttention.forward``).  Buffers are updated in place
        and lengths advanced.  Returns next-token logits (B, V).

        Streams of different ages batch together: every row attends
        over its own left-aligned history, masked past its length, so
        logits are bit-identical to serving the stream alone.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        lengths = np.asarray(caches[0]["lengths"])
        capacity = caches[0]["k"].shape[2]
        valid = (np.arange(capacity)[None, None, :]
                 <= lengths[:, None, None])
        with no_grad():
            x = (self.embed(tokens[:, None])
                 + Tensor(self.pos.data[lengths][:, None, :]))
            for block, cache in zip(self.blocks, caches):
                x = block(x, valid, kv_cache=cache)
            return self.head(self.ln_out(x)).data[:, 0]

    # -- decode ---------------------------------------------------------
    def generate(self, prompt: np.ndarray, max_new_tokens: int,
                 greedy: bool = True,
                 rng: np.random.Generator | None = None) -> np.ndarray:
        """Autoregressive decode with per-layer KV caches: each step
        computes exactly one new query row per sequence (S_q = 1)
        against the cached key/value history — the deployment access
        pattern the accelerator sees."""
        tokens = np.asarray(prompt, dtype=np.int64)
        caches = [{} for _ in self.blocks]
        with no_grad():
            # prefill: run the prompt once, filling the caches
            x = self.embed(tokens) + self.pos[:tokens.shape[1]]
            batch, seq = tokens.shape
            causal = np.broadcast_to(
                np.tril(np.ones((seq, seq), dtype=bool)),
                (batch, seq, seq))
            for block, cache in zip(self.blocks, caches):
                x = block(x, causal, kv_cache=cache)
            last = self.head(self.ln_out(x))[:, -1]
            for step in range(max_new_tokens):
                if greedy or rng is None:
                    next_token = last.data.argmax(axis=-1)
                else:
                    probs = F.softmax(last).data
                    next_token = np.array(
                        [rng.choice(len(p), p=p) for p in probs])
                tokens = np.concatenate(
                    [tokens, next_token[:, None]], axis=1)
                if (step + 1 >= max_new_tokens
                        or tokens.shape[1] >= self.config.max_seq_len):
                    break   # no further sample needed: skip the forward
                position = tokens.shape[1] - 1
                x = self.embed(tokens[:, -1:]) + self.pos[position:position + 1]
                for block, cache in zip(self.blocks, caches):
                    x = block(x, None, kv_cache=cache)
                last = self.head(self.ln_out(x))[:, -1]
        return tokens
