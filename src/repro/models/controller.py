"""Per-layer learned threshold controller.

The paper learns one pruning threshold per attention layer ("each
attention layer identifies a distinct context").  The controller owns
those Parameters, the pruning mode, and the bookkeeping that the
fine-tuning loop reads back (surrogate-L0 terms, sparsity counters).
"""

from __future__ import annotations

import numpy as np

from ..core.pruning import PruningMode
from ..core.soft_threshold import SoftThresholdConfig, SurrogateL0Config
from ..nn import Parameter
from ..tensor import Tensor


class ThresholdController:
    def __init__(self, num_layers: int,
                 l0_config: SurrogateL0Config | None = None,
                 soft_config: SoftThresholdConfig | None = None):
        self.thresholds = [Parameter(np.array(0.0))
                           for _ in range(num_layers)]
        self.l0_config = l0_config or SurrogateL0Config()
        self.soft_config = soft_config or SoftThresholdConfig()
        self.mode = PruningMode.OFF
        self._l0_terms: list[Tensor] = []
        self._soft_pruned = 0
        self._soft_valid = 0

    # -- mode switching -------------------------------------------------
    def off(self) -> "ThresholdController":
        self.mode = PruningMode.OFF
        return self

    def soft(self) -> "ThresholdController":
        self.mode = PruningMode.SOFT
        return self

    def hard(self) -> "ThresholdController":
        self.mode = PruningMode.HARD
        return self

    def set_mode(self, mode: PruningMode) -> "ThresholdController":
        self.mode = mode
        return self

    # -- parameters -----------------------------------------------------
    def parameters(self) -> list[Parameter]:
        return list(self.thresholds)

    def threshold(self, layer_index: int) -> Parameter:
        return self.thresholds[layer_index]

    def threshold_values(self) -> np.ndarray:
        return np.array([float(p.data) for p in self.thresholds])

    def set_threshold_values(self, values) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size != len(self.thresholds):
            raise ValueError(
                f"expected {len(self.thresholds)} thresholds, "
                f"got {values.size}")
        for parameter, value in zip(self.thresholds, values):
            parameter.data = np.array(float(value))

    # -- fine-tune bookkeeping -----------------------------------------
    def add_l0(self, term: Tensor) -> None:
        self._l0_terms.append(term)

    def pop_l0(self) -> Tensor | None:
        """Mean surrogate-L0 across the layers of the last forward."""
        if not self._l0_terms:
            return None
        total = self._l0_terms[0]
        for term in self._l0_terms[1:]:
            total = total + term
        out = total * (1.0 / len(self._l0_terms))
        self._l0_terms = []
        return out

    def count_soft(self, pruned: int, valid: int) -> None:
        self._soft_pruned += pruned
        self._soft_valid += valid

    def pop_soft_sparsity(self) -> float:
        rate = (self._soft_pruned / self._soft_valid
                if self._soft_valid else 0.0)
        self._soft_pruned = 0
        self._soft_valid = 0
        return rate
