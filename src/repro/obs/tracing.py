"""Per-request trace spans in Chrome trace-event JSON.

The recorder is clock-agnostic: callers stamp every event with a
timestamp *they* read from the engine clock (seconds), never the wall
clock.  Under a ``VirtualClock`` the same workload therefore emits the
same event stream, and :meth:`TraceRecorder.export` serializes it with
sorted keys and fixed separators, so two identical replays produce
**byte-identical** trace files (pinned by ``tests/test_obs.py``).

The output loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

* each engine gets a *process* track (``tracer.track(name)``),
* each request id gets a *thread* row inside that track,
* the request lifecycle appears as ``submit`` / ``finish`` instants
  plus ``queue`` / ``prefill-chunk`` / ``decode-step`` / ``request``
  complete-spans.
"""

from __future__ import annotations

import json
import os

__all__ = ["TraceRecorder", "NullTracer", "NULL_TRACER", "as_tracer"]

# engine clocks are in seconds; trace-event ts/dur are microseconds
_US = 1e6


class TraceRecorder:
    """Appends trace events; exports deterministic Chrome trace JSON."""

    enabled = True

    def __init__(self):
        self.events = []
        self._tracks = {}

    def track(self, name: str) -> int:
        """Get-or-assign the pid for a named track (e.g. one engine).

        Pids are handed out in first-seen order, so replica
        construction order fixes the numbering deterministically.
        """
        pid = self._tracks.get(name)
        if pid is None:
            pid = self._tracks[name] = len(self._tracks) + 1
            self.events.append({"name": "process_name", "ph": "M",
                                "pid": pid, "tid": 0,
                                "args": {"name": name}})
        return pid

    def instant(self, name: str, ts: float, pid: int = 0, tid: int = 0,
                **args) -> None:
        event = {"name": name, "ph": "i", "s": "t",
                 "ts": ts * _US, "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def complete(self, name: str, ts: float, dur: float, pid: int = 0,
                 tid: int = 0, **args) -> None:
        event = {"name": name, "ph": "X",
                 "ts": ts * _US, "dur": dur * _US, "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def merge_events(self, events: list, mapping: dict | None = None
                     ) -> dict:
        """Append another recorder's events, remapping its pid
        numbering into this recorder's track table.

        Worker processes ship the events they recorded since the last
        step reply; their recorders hand out pids in their *own*
        first-seen order, so each ``process_name`` metadata event is
        translated through :meth:`track` (get-or-assign here) and every
        other event's pid rewritten.  ``mapping`` carries the
        worker-pid -> parent-pid table across incremental merges (the
        metadata event only appears in the first delta); pass the
        returned dict back on the next call.  Pid 0 (no track) passes
        through unchanged."""
        mapping = {} if mapping is None else mapping
        for event in events:
            if (event.get("ph") == "M"
                    and event.get("name") == "process_name"):
                mapping[event["pid"]] = self.track(event["args"]["name"])
                continue
            merged = dict(event)
            pid = event.get("pid", 0)
            merged["pid"] = mapping.get(pid, pid)
            self.events.append(merged)
        return mapping

    def clear(self) -> None:
        self.events.clear()
        self._tracks.clear()

    def export(self) -> str:
        """Chrome trace JSON; a pure function of the recorded events."""
        return json.dumps({"traceEvents": self.events,
                           "displayTimeUnit": "ms"},
                          sort_keys=True, separators=(",", ":"))

    def save(self, path: str) -> str:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.export())
        return path


class NullTracer:
    """No-op tracer bound by default; ``enabled`` gates arg-building."""

    enabled = False

    def track(self, name):
        return 0

    def instant(self, name, ts, pid=0, tid=0, **args):
        pass

    def complete(self, name, ts, dur, pid=0, tid=0, **args):
        pass

    def merge_events(self, events, mapping=None):
        return {} if mapping is None else mapping

    def clear(self):
        pass

    def export(self):
        return ""

    def save(self, path):
        return path


NULL_TRACER = NullTracer()


def as_tracer(tracer) -> TraceRecorder:
    """``None``-coalesce to the null tracer (the standard opt-in idiom)."""
    return NULL_TRACER if tracer is None else tracer
