"""In-process metrics registry with a zero-cost null twin.

Design constraints, in priority order:

1. **Hot-path cost when disabled is zero-ish.**  Instrumented code
   binds metric handles once at construction time; with no registry
   supplied it binds :data:`NULL_METRIC`, whose methods are empty.
   No branches, no string formatting, no dict lookups per event.
2. **Deterministic.**  Histograms use *fixed* log-spaced bucket
   bounds chosen at bind time (never adapted to data), snapshots
   sort series by name + labels, and exposition output is a pure
   function of the snapshot — so two identical virtual-clock replays
   produce byte-identical exports.
3. **Lock-free.**  There are no locks anywhere.  Increments are
   plain ``self.value += x`` — atomic enough under the GIL for the
   single-writer pattern used here (the serving loop is one thread;
   the HTTP exposition thread only *reads*, and a torn read of a
   float counter is acceptable for monitoring).  This mirrors how
   prometheus clients behave in practice without the mutex.

Metric naming follows Prometheus conventions: ``repro_*`` prefix,
``_total`` suffix on counters, base-unit (seconds) histograms.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "NULL_METRIC", "NULL_REGISTRY",
           "as_registry", "log_buckets"]


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple:
    """Fixed log-spaced histogram bounds covering ``[lo, hi]``.

    ``per_decade`` points per power of ten, rounded to 6 significant
    digits so the bounds (and hence the exposition text) are stable
    across platforms.  E.g. ``log_buckets(1e-4, 1.0)`` ->
    ``(0.0001, 0.000215443, 0.000464159, 0.001, ... , 1.0)``.
    """
    if not (lo > 0 and hi > lo):
        raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    bounds = []
    step = 0
    while True:
        edge = lo * 10.0 ** (step / per_decade)
        edge = float(f"{edge:.6g}")
        bounds.append(edge)
        if edge >= hi:
            break
        step += 1
    return tuple(bounds)


#: default bounds for durations in seconds: 10 us .. 100 s
TIME_BUCKETS = log_buckets(1e-5, 100.0, per_decade=3)
#: default bounds for small cardinalities (batch sizes, queue depths)
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount!r})")
        self.value += amount

    def sample(self):
        return self.value


class Gauge:
    """Point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def sample(self):
        return self.value


class Histogram:
    """Fixed-bound histogram (cumulative buckets at exposition time).

    ``bounds`` are the *upper* bucket edges; one implicit +Inf bucket
    is always appended.  Bounds are frozen at construction so replays
    of the same workload always land observations in the same
    buckets.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds=TIME_BUCKETS):
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds!r}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def sample(self):
        return {"buckets": dict(zip(self.bounds, self.counts)),
                "sum": self.sum, "count": self.count}


class _NullMetric:
    """Accepts every metric method as a no-op; bound on hot paths by default."""

    kind = "null"
    __slots__ = ()

    def inc(self, amount=1.0):
        pass

    def dec(self, amount=1.0):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def sample(self):
        return None


NULL_METRIC = _NullMetric()


class _Family:
    __slots__ = ("kind", "help", "series")

    def __init__(self, kind, help):
        self.kind = kind
        self.help = help
        self.series = {}  # label-items tuple -> metric instance


class MetricsRegistry:
    """Names + labels -> live metric instances, with snapshot/exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same instance, so multiple
    components can safely publish into one series.  A name registered
    under one kind cannot be reused under another.
    """

    enabled = True

    def __init__(self):
        self._families = {}

    # -- registration -------------------------------------------------
    def _get(self, kind, name, help, labels, factory):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(kind, help)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}")
        key = tuple(sorted(labels.items()))
        metric = family.series.get(key)
        if metric is None:
            metric = family.series[key] = factory()
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help, labels, Gauge)

    def histogram(self, name: str, help: str = "", buckets=TIME_BUCKETS,
                  **labels) -> Histogram:
        metric = self._get("histogram", name, help, labels,
                           lambda: Histogram(buckets))
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} re-registered with different buckets")
        return metric

    # -- read side ----------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic plain-dict view of every series.

        ``{name: {"kind": ..., "help": ..., "series": [
            {"labels": {...}, "value": <number | histogram dict>}, ...]}}``
        sorted by name then label items, so two identical runs compare
        equal with ``==`` (and serialize byte-identically).
        """
        out = {}
        for name in sorted(self._families):
            family = self._families[name]
            rows = []
            for key in sorted(family.series):
                rows.append({"labels": dict(key),
                             "value": family.series[key].sample()})
            out[name] = {"kind": family.kind, "help": family.help,
                         "series": rows}
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The intended use is fleet aggregation: each worker process
        ships its own registry's snapshot back with every step reply,
        and the parent merges them so one ``/metrics`` endpoint covers
        the whole tier.  Worker series are engine-labeled
        (``engine="worker0"``...), hence disjoint from the parent's own
        series — so merge semantics are *replace with the latest
        value*: counters and gauges overwrite, and histograms rebuild
        their bucket counts from the snapshot (the overflow bucket is
        reconstructed as ``count - sum(bounded buckets)``, since
        snapshots carry only the bounded bucket dict)."""
        for name, family in snapshot.items():
            kind, help = family["kind"], family["help"]
            for row in family["series"]:
                labels, value = row["labels"], row["value"]
                if kind == "counter":
                    self.counter(name, help, **labels).value = value
                elif kind == "gauge":
                    self.gauge(name, help, **labels).value = value
                elif kind == "histogram":
                    bounds = tuple(value["buckets"])
                    metric = self.histogram(name, help, buckets=bounds,
                                            **labels)
                    counts = [value["buckets"][bound]
                              for bound in metric.bounds]
                    counts.append(value["count"] - sum(counts))
                    metric.counts = counts
                    metric.sum = value["sum"]
                    metric.count = value["count"]
                else:
                    raise ValueError(
                        f"cannot merge metric kind {kind!r} ({name!r})")

    def exposition(self) -> str:
        """Prometheus text format (version 0.0.4) of the whole registry."""
        lines = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                metric = family.series[key]
                if family.kind == "histogram":
                    cum = 0
                    for bound, n in zip(metric.bounds, metric.counts):
                        cum += n
                        lines.append(f"{name}_bucket"
                                     f"{_labels(key, ('le', _fmt(bound)))} {cum}")
                    lines.append(f"{name}_bucket{_labels(key, ('le', '+Inf'))} "
                                 f"{metric.count}")
                    lines.append(f"{name}_sum{_labels(key)} {_fmt(metric.sum)}")
                    lines.append(f"{name}_count{_labels(key)} {metric.count}")
                else:
                    lines.append(f"{name}{_labels(key)} {_fmt(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value) -> str:
    # integers without the trailing .0 — matches prometheus client output
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels(key, *extra) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


class NullRegistry:
    """Shape-compatible registry that records nothing.

    Every registration returns the shared :data:`NULL_METRIC`;
    ``snapshot()``/``exposition()`` are empty.  Hot paths check
    ``registry.enabled`` before doing any *derived* work (e.g.
    walking queues to compute a depth gauge).
    """

    enabled = False

    def counter(self, name, help="", **labels):
        return NULL_METRIC

    def gauge(self, name, help="", **labels):
        return NULL_METRIC

    def histogram(self, name, help="", buckets=TIME_BUCKETS, **labels):
        return NULL_METRIC

    def snapshot(self):
        return {}

    def merge_snapshot(self, snapshot):
        pass

    def exposition(self):
        return ""


NULL_REGISTRY = NullRegistry()


def as_registry(registry) -> MetricsRegistry:
    """``None``-coalesce to the null registry (the standard opt-in idiom)."""
    return NULL_REGISTRY if registry is None else registry
