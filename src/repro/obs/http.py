"""Prometheus-text exposition over HTTP.

Two servers for the two execution styles in this repo:

* :class:`MetricsEndpoint` — asyncio, mounts next to
  :class:`repro.serve.aio.AsyncServingEngine` on the event loop that
  is already running the front door.
* :func:`start_metrics_server` — a daemon-thread
  ``ThreadingHTTPServer`` for synchronous CLIs (the load generator,
  ``python -m repro.serve``) whose main thread is busy stepping the
  engine.  Reads of the registry from the serving thread's writes are
  safe per the single-writer notes in :mod:`repro.obs.metrics`.

Both serve ``GET /metrics`` (text format 0.0.4) and ``GET /healthz``.
"""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsEndpoint", "start_metrics_server"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _respond(path: str, registry) -> tuple:
    """(status, body-bytes) for a request path, shared by both servers."""
    if path.split("?", 1)[0] in ("/metrics", "/metrics/"):
        return 200, registry.exposition().encode("utf-8")
    if path.split("?", 1)[0] in ("/", "/healthz"):
        return 200, b"ok\n"
    return 404, b"not found\n"


class MetricsEndpoint:
    """Minimal asyncio HTTP endpoint exposing one registry."""

    def __init__(self, registry, host: str = "127.0.0.1", port: int = 0):
        self.registry = registry
        self.host = host
        self.port = port
        self._server = None

    async def start(self) -> "MetricsEndpoint":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    async def _handle(self, reader, writer):
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            # drain headers so keep-alive clients see a clean close
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                status, body = 405, b"method not allowed\n"
            else:
                status, body = _respond(parts[1], self.registry)
            reason = {200: "OK", 404: "Not Found",
                      405: "Method Not Allowed"}[status]
            writer.write((f"HTTP/1.1 {status} {reason}\r\n"
                          f"Content-Type: {_CONTENT_TYPE}\r\n"
                          f"Content-Length: {len(body)}\r\n"
                          f"Connection: close\r\n\r\n").encode("latin-1"))
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()


def start_metrics_server(registry, host: str = "127.0.0.1",
                         port: int = 0) -> ThreadingHTTPServer:
    """Serve ``/metrics`` from a daemon thread; ``.shutdown()`` to stop.

    Returns the live server; the bound port is
    ``server.server_address[1]`` (useful with ``port=0``).
    """

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            status, body = _respond(self.path, registry)
            self.send_response(status)
            self.send_header("Content-Type", _CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # keep CLI stdout clean
            pass

    server = ThreadingHTTPServer((host, port), Handler)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-metrics", daemon=True)
    thread.start()
    return server
