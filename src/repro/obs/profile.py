"""Kernel profiling hooks for the tile simulator's batched dispatch.

A :class:`KernelProfiler` is handed to ``TileSimulator`` (and threaded
through ``estimate_many`` / the serving engines); the simulator times
each fused ``run_many`` kernel call and reports it here together with
chunking stats — how many jobs rode in the call and how many distinct
plane groups they spanned.  Aggregation is per backend, so an A/B of
``numpy-packed`` vs ``torch`` falls out of one profiled run.

Timing uses the caller-supplied wall timestamps (``perf_counter`` at
the call sites), so profiling is *measurement*, not part of the
deterministic replay surface — unlike metrics and traces, summaries
are not expected to be bit-identical across runs.
"""

from __future__ import annotations

from .metrics import COUNT_BUCKETS, NULL_REGISTRY, log_buckets

__all__ = ["KernelProfiler"]

#: fused GEMM calls are fast — bucket 1 us .. 1 s
_KERNEL_TIME_BUCKETS = log_buckets(1e-6, 1.0, per_decade=3)


class _BackendStats:
    __slots__ = ("calls", "jobs", "groups", "elapsed_s", "max_jobs")

    def __init__(self):
        self.calls = 0
        self.jobs = 0
        self.groups = 0
        self.elapsed_s = 0.0
        self.max_jobs = 0


class KernelProfiler:
    """Per-backend GEMM time + per-call chunking stats.

    Opt-in like everything else in :mod:`repro.obs`: the simulator
    holds ``None`` by default and skips the timing branch entirely.
    Optionally publishes into a metrics registry so profiled serving
    runs expose ``repro_kernel_*`` series alongside engine metrics.
    """

    enabled = True

    def __init__(self, registry=None):
        self._by_backend = {}
        self._registry = NULL_REGISTRY if registry is None else registry
        self._m_time = {}
        self._m_jobs = {}

    def record(self, backend: str, jobs: int, groups: int,
               elapsed_s: float) -> None:
        stats = self._by_backend.get(backend)
        if stats is None:
            stats = self._by_backend[backend] = _BackendStats()
        stats.calls += 1
        stats.jobs += jobs
        stats.groups += groups
        stats.elapsed_s += elapsed_s
        if jobs > stats.max_jobs:
            stats.max_jobs = jobs
        if self._registry.enabled:
            m_time = self._m_time.get(backend)
            if m_time is None:
                m_time = self._m_time[backend] = self._registry.histogram(
                    "repro_kernel_call_seconds",
                    "wall time of one fused run_many kernel call",
                    buckets=_KERNEL_TIME_BUCKETS, backend=backend)
                self._m_jobs[backend] = self._registry.histogram(
                    "repro_kernel_jobs_per_call",
                    "jobs batched into one fused kernel call",
                    buckets=COUNT_BUCKETS, backend=backend)
            m_time.observe(elapsed_s)
            self._m_jobs[backend].observe(jobs)

    def summary(self) -> dict:
        """``{backend: {calls, jobs, groups, elapsed_s, ...}}`` with means."""
        out = {}
        for backend in sorted(self._by_backend):
            stats = self._by_backend[backend]
            out[backend] = {
                "calls": stats.calls,
                "jobs": stats.jobs,
                "plane_groups": stats.groups,
                "elapsed_s": stats.elapsed_s,
                "max_jobs_per_call": stats.max_jobs,
                "mean_jobs_per_call":
                    stats.jobs / stats.calls if stats.calls else 0.0,
                "mean_call_us":
                    stats.elapsed_s / stats.calls * 1e6 if stats.calls else 0.0,
            }
        return out

    def clear(self) -> None:
        self._by_backend.clear()
