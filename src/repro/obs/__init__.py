"""End-to-end observability: metrics, traces, exposition, profiling.

Four pieces, all dependency-free and opt-in:

* :mod:`repro.obs.metrics` — an in-process metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with fixed
  log-bucket bounds) plus the :data:`NULL_REGISTRY` no-op twin that
  instrumented hot paths bind against by default, so observability
  costs nothing until a caller opts in.
* :mod:`repro.obs.tracing` — per-request trace spans
  (``submit → queue → admit → prefill-chunk* → decode-step* →
  finish``) stamped from the *engine* clock, exportable as Chrome
  trace-event JSON (load it in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.http` — Prometheus-text exposition over HTTP: an
  asyncio endpoint that mounts next to the serving front door, and a
  background-thread server for synchronous CLIs.
* :mod:`repro.obs.profile` — kernel profiling hooks: per-backend
  GEMM wall time and job/group chunking stats from the tile
  simulator's batched kernel dispatch.

Everything a virtual-clock replay records is derived from the
injected clock, so metrics snapshots and trace exports replay
byte-identically (pinned by ``tests/test_obs.py``).
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NULL_REGISTRY, NullRegistry, as_registry,
                      log_buckets)
from .profile import KernelProfiler
from .tracing import NULL_TRACER, NullTracer, TraceRecorder, as_tracer

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "NULL_REGISTRY", "as_registry", "log_buckets",
           "TraceRecorder", "NullTracer", "NULL_TRACER", "as_tracer",
           "KernelProfiler",
           "MetricsEndpoint", "start_metrics_server"]


def __getattr__(name):
    # lazy: the HTTP pieces pull in asyncio/http.server, which pure
    # metric consumers (hw backends, the eval store) never need
    if name in ("MetricsEndpoint", "start_metrics_server"):
        from . import http
        return getattr(http, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
