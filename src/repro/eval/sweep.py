"""Sharded, resumable sweep scheduler over the workload registry.

:func:`run_sweep` shards the expensive step — training — across a
``ProcessPoolExecutor``: each worker trains one workload and publishes
the result to the shared :class:`~repro.eval.store.WorkloadStore`; the
parent rehydrates finished entries into its ``WorkloadCache``.  Store
entries double as checkpoints, so a killed sweep resumes where it
stopped: rerunning trains only the tasks whose entries are missing (or
stale).  Per-task training is independently seeded, so a parallel
sweep's metrics are bit-identical to the serial path.

CLI (also the CI resumability smoke job)::

    python -m repro.eval.sweep --workloads memn2n/Task-1,memn2n/Task-2 \
        --scale tiny --cache-dir /tmp/store --jobs 2
    python -m repro.eval.sweep --suite 'bert*' --cache-dir store --jobs 4
    python -m repro.eval.sweep --cache-dir store --describe
    python -m repro.eval.sweep --cache-dir store --verify
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                as_completed)
from dataclasses import dataclass, field

from .progress import SweepProgress
from .runner import run_workload
from .store import WorkloadStore
from .workloads import (QUICK, TINY, Scale, WORKLOADS, get_workload,
                        list_suites, list_workloads)

SCALES = {"tiny": TINY, "quick": QUICK}

# how many times a sweep will replace a broken worker pool (abrupt
# worker death nukes every in-flight future) before giving up on the
# still-unfinished shard
MAX_POOL_RETRIES = 2


@dataclass
class TaskOutcome:
    workload: str
    status: str                          # "trained" | "cached" | "failed"
    seconds: float = 0.0
    baseline_metric: float | None = None
    pruned_metric: float | None = None
    pruning_rate: float | None = None
    error: str | None = None


@dataclass
class SweepReport:
    scale: str
    jobs: int
    outcomes: list[TaskOutcome] = field(default_factory=list)

    def by_status(self, status: str) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def trained(self) -> list[TaskOutcome]:
        return self.by_status("trained")

    @property
    def cached(self) -> list[TaskOutcome]:
        return self.by_status("cached")

    @property
    def failed(self) -> list[TaskOutcome]:
        return self.by_status("failed")

    def summary(self) -> str:
        seconds = sum(o.seconds for o in self.outcomes)
        return (f"[sweep] scale={self.scale} jobs={self.jobs}: "
                f"{len(self.trained)} trained, {len(self.cached)} cached, "
                f"{len(self.failed)} failed "
                f"({seconds:.1f}s total train time)")


def _train_into_store(name: str, scale: Scale, store_root: str,
                      faults=None, attempt: int = 0) -> dict:
    """Worker entry point: train one workload, publish it, return a
    summary (the parent rehydrates the full result from the store).

    ``faults`` threads a :class:`~repro.serve.faults.FaultPlan` through
    the worker: an armed worker fault kills this process abruptly
    (``os._exit`` — no exception, no cleanup, exactly like a crashed or
    OOM-killed worker, surfacing as ``BrokenProcessPool`` in the
    parent), and an armed save fault truncates the just-published
    entry (a torn write the store's corruption detection must absorb).
    """
    spec = get_workload(name)
    if faults is not None and faults.worker_dies(name, attempt):
        os._exit(17)
    start = time.time()
    result = run_workload(spec, scale)
    entry_dir = WorkloadStore(store_root).save(result)
    if faults is not None and faults.corrupt_save(name, attempt):
        with open(os.path.join(entry_dir, "records.npz"), "r+b") as fh:
            fh.truncate(16)
    return {
        "workload": name,
        "seconds": time.time() - start,
        "baseline_metric": result.baseline_metric,
        "pruned_metric": result.pruned_metric,
        "pruning_rate": result.pruning_rate,
    }


def run_sweep(workloads, scale: Scale, store: WorkloadStore | None = None,
              jobs: int = 1, cache=None, echo=None, faults=None,
              progress: SweepProgress | None = None) -> SweepReport:
    """Train every workload in ``workloads`` that the store does not
    already hold, ``jobs`` tasks at a time, then (if ``cache`` is
    given) rehydrate all of them into it.

    The sweep survives abrupt worker death: a crashed worker breaks
    the whole ``ProcessPoolExecutor`` (every in-flight future fails
    with ``BrokenProcessPool``), so the affected shard is retried on a
    fresh executor — tasks whose entries were already published before
    the crash are picked up from the store instead of retraining.
    ``faults`` threads a deterministic
    :class:`~repro.serve.faults.FaultPlan` into the workers (chaos
    tests); ``progress`` renders a live bar + prior-informed ETA.
    """
    echo = echo or (lambda line: None)
    names = list(workloads)
    for name in names:
        get_workload(name)               # unknown names fail before work
    if jobs > 1 and store is None:
        raise ValueError("jobs > 1 needs a WorkloadStore: workers hand "
                         "results back through the shared store")

    report = SweepReport(scale=scale.name, jobs=jobs)
    pending = []

    def record_cached(name):
        report.outcomes.append(TaskOutcome(workload=name,
                                           status="cached"))
        echo(f"[cached] {name}")
        if progress is not None:
            progress.finish(name)

    for name in names:
        spec = get_workload(name)
        hit = (store is not None and store.contains(spec, scale)) or (
            cache is not None and (spec, scale) in cache)
        if hit:
            record_cached(name)
        else:
            pending.append(name)

    def record_trained(name, seconds, baseline, pruned, rate):
        report.outcomes.append(TaskOutcome(
            workload=name, status="trained", seconds=seconds,
            baseline_metric=baseline, pruned_metric=pruned,
            pruning_rate=rate))
        echo(f"[train] {name} ({seconds:.1f}s, pruning {rate:.3f})")
        if progress is not None:
            progress.finish(name, seconds)

    def record_failed(name, error):
        report.outcomes.append(TaskOutcome(
            workload=name, status="failed", error=str(error)))
        echo(f"[failed] {name}: {error}")
        if progress is not None:
            progress.finish(name)

    if jobs > 1 and pending:
        remaining = list(pending)
        attempt = 0
        while remaining:
            broken: list[str] = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(_train_into_store, name, scale,
                                       store.root, faults, attempt): name
                           for name in remaining}
                for future in as_completed(futures):
                    name = futures[future]
                    error = future.exception()
                    if isinstance(error, BrokenExecutor):
                        # a worker died mid-flight and took the pool
                        # with it; this task's fate is unknown until we
                        # check the store on the retry pass
                        broken.append(name)
                        continue
                    if error is not None:
                        record_failed(name, error)
                        continue
                    payload = future.result()
                    record_trained(name, payload["seconds"],
                                   payload["baseline_metric"],
                                   payload["pruned_metric"],
                                   payload["pruning_rate"])
            if not broken:
                break
            attempt += 1
            if attempt > MAX_POOL_RETRIES:
                for name in sorted(broken):
                    record_failed(
                        name, RuntimeError(
                            "worker pool broke "
                            f"{MAX_POOL_RETRIES + 1} times; giving up"))
                break
            echo(f"[retry] worker pool broke; retrying "
                 f"{len(broken)} task(s) on a fresh pool "
                 f"(attempt {attempt})")
            remaining = []
            for name in sorted(broken):
                # published-then-crashed tasks are complete on disk
                if store.contains(get_workload(name), scale):
                    record_cached(name)
                else:
                    remaining.append(name)
    else:
        for name in pending:
            spec = get_workload(name)
            if progress is not None:
                progress.start(name)
            start = time.time()
            try:
                if cache is not None:
                    result = cache.get(spec, scale)   # trains + stores
                else:
                    result = run_workload(spec, scale)
                    if store is not None:
                        store.save(result)
            except Exception as error:   # noqa: BLE001 - report per task
                record_failed(name, error)
                continue
            record_trained(name, time.time() - start,
                           result.baseline_metric, result.pruned_metric,
                           result.pruning_rate)

    if progress is not None:
        progress.close()
    if cache is not None:
        for name in names:
            if not any(o.workload == name and o.status == "failed"
                       for o in report.outcomes):
                cache.get(get_workload(name), scale)
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _evict(store: WorkloadStore, max_bytes: int,
           protect: set[str]) -> None:
    evicted = store.evict_lru(max_bytes, protect=protect)
    for key in evicted:
        print(f"[evict] {key}")
    print(f"[evict] {store.root}: removed {len(evicted)} entries, "
          f"{store.size_bytes()} bytes kept (budget {max_bytes})")


def _resolve_names(parser: argparse.ArgumentParser,
                   args: argparse.Namespace) -> list[str]:
    if args.all:
        return list_workloads()
    if args.suite:
        names = list_workloads(args.suite)
        if not names:
            parser.error(f"suite glob {args.suite!r} matches nothing; "
                         "valid suites: " + ", ".join(list_suites()))
        return names
    if args.workloads:
        names = [w.strip() for w in args.workloads.split(",") if w.strip()]
        unknown = [w for w in names if w not in WORKLOADS]
        if unknown:
            parser.error(
                f"unknown workloads: {', '.join(unknown)}; run with "
                "--list to see all 43 registered names")
        return names
    parser.error("pick workloads via --workloads, --suite or --all "
                 "(or use --list / --describe)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded, resumable training sweep over the "
                    "workload registry")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names")
    parser.add_argument("--suite", default=None,
                        help="every workload whose suite matches this "
                             "glob (e.g. memn2n, 'bert*')")
    parser.add_argument("--all", action="store_true",
                        help="the full 43-task registry")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk store; reruns train only missing "
                             "entries")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel training worker processes")
    parser.add_argument("--list", action="store_true",
                        help="print the registry and exit")
    parser.add_argument("--describe", action="store_true",
                        help="print the store inventory and exit")
    parser.add_argument("--verify", action="store_true",
                        help="re-hash stored weights and report "
                             "corrupt/stale entries (no retraining)")
    parser.add_argument("--wipe", action="store_true",
                        help="clear the store before sweeping")
    parser.add_argument("--max-cache-bytes", type=int, default=None,
                        metavar="N",
                        help="after the sweep, evict least-recently-"
                             "saved store entries until the store fits "
                             "in N bytes (entries touched this run are "
                             "never evicted)")
    parser.add_argument("--save-dir", default=None,
                        help="also write sweep.json via eval.artifacts")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress the stderr progress bar/ETA "
                             "(it is auto-disabled when stderr is not "
                             "a terminal, e.g. in CI)")
    args = parser.parse_args(argv)

    if args.list:
        names = list_workloads(args.suite)
        if args.suite and not names:
            parser.error(f"suite glob {args.suite!r} matches nothing; "
                         "valid suites: " + ", ".join(list_suites()))
        for name in names:
            print(name)
        return 0

    if ((args.describe or args.verify) and args.cache_dir
            and not os.path.isdir(args.cache_dir)):
        # read-only inspection must not silently create (and then
        # report on) an empty store at a mistyped path
        parser.error(f"--cache-dir {args.cache_dir!r} does not exist")
    store = WorkloadStore(args.cache_dir) if args.cache_dir else None
    if args.describe:
        if store is None:
            parser.error("--describe needs --cache-dir")
        print(store.describe())
        return 0
    if args.verify:
        if store is None:
            parser.error("--verify needs --cache-dir")
        outcomes = store.verify()
        for outcome in outcomes:
            line = f"[{outcome.status}] {outcome.key}"
            if outcome.detail:
                line += f": {outcome.detail}"
            print(line)
        damaged = [o for o in outcomes if o.damaged]
        counts = ", ".join(
            f"{sum(1 for o in outcomes if o.status == status)} {status}"
            for status in ("ok", "corrupt", "stale", "unknown",
                           "unhashed", "unreadable")
            if any(o.status == status for o in outcomes)) or "empty store"
        print(f"[verify] {store.root}: {counts}")
        return 1 if damaged else 0
    if args.wipe:
        if store is None:
            parser.error("--wipe needs --cache-dir")
        print(f"[wipe] removed {store.clear()} entries from {store.root}")
        if not (args.workloads or args.suite or args.all):
            return 0                     # standalone wipe is a valid run
    if args.max_cache_bytes is not None:
        if store is None:
            parser.error("--max-cache-bytes needs --cache-dir")
        if args.max_cache_bytes < 0:
            parser.error("--max-cache-bytes must be >= 0")
        if not (args.workloads or args.suite or args.all):
            # standalone eviction pass: nothing ran, nothing protected
            _evict(store, args.max_cache_bytes, set())
            return 0

    names = _resolve_names(parser, args)
    if args.jobs > 1 and store is None:
        parser.error("--jobs > 1 needs --cache-dir (workers hand results "
                     "back through the shared store)")

    progress = SweepProgress(
        names, enabled=not args.no_progress and sys.stderr.isatty())
    report = run_sweep(names, SCALES[args.scale], store=store,
                       jobs=args.jobs, echo=print, progress=progress)
    print(report.summary())
    if args.max_cache_bytes is not None:
        # every entry this run touched (trained or read) is protected:
        # the budget trims history, never the working set
        touched = {WorkloadStore.key(get_workload(name),
                                     SCALES[args.scale])
                   for name in names}
        _evict(store, args.max_cache_bytes, touched)
    if args.save_dir:
        from .artifacts import save_sweep_report
        print(f"[saved {save_sweep_report(report, args.save_dir)}]")
    return 1 if report.failed else 0


if __name__ == "__main__":
    sys.exit(main())
