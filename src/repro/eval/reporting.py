"""Plain-text reporting helpers for experiments and examples."""

from __future__ import annotations

import numpy as np

HEAT_CHARS = " .:-=+*#%@"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_dict_table(rows: list[dict], title: str | None = None) -> str:
    """Align a list of dicts into a text table; columns follow first
    appearance order across rows."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_format_value(row.get(col, "")) for col in columns]
             for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells)) if cells
              else len(col) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in cells:
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(line, widths)))
    return "\n".join(lines)


def format_series(x_label: str, xs, series: dict[str, list],
                  title: str | None = None) -> str:
    """Table of one x column plus named series columns."""
    rows = []
    for i, x in enumerate(xs):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_dict_table(rows, title=title)


def ascii_heatmap(matrix: np.ndarray) -> str:
    """2D array -> text heatmap (dark chars = high).  Boolean arrays
    render as '#' (True) / '.' (False)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2D array, got shape {matrix.shape}")
    if matrix.dtype == bool:
        return "\n".join("".join("#" if cell else "." for cell in row)
                         for row in matrix)
    low = float(matrix.min())
    high = float(matrix.max())
    span = (high - low) or 1.0
    scaled = ((matrix - low) / span * (len(HEAT_CHARS) - 1)).astype(int)
    return "\n".join("".join(HEAT_CHARS[cell] for cell in row)
                     for row in scaled)


def geometric_mean(values) -> float:
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(np.exp(np.log(np.maximum(values, 1e-12)).mean()))
