"""Sweep progress bar with prior-informed ETA.

Training time varies wildly across suites (a MemN2N bAbI task trains
in a fraction of the time a BERT-large GLUE task does), so a naive
tasks-done/tasks-total ETA whipsaws.  :class:`SweepProgress` instead
weights every task by a per-suite *training-time prior* (relative
cost units, calibrated from observed QUICK-scale runs), then refines
the seconds-per-unit rate from the tasks that actually finished this
run — the priors set the shape of the estimate, the live observations
set its scale.

Rendering is a single carriage-return line on ``stderr`` (never
``stdout``, which carries the machine-readable ``[train]``/``[cached]``
log), and disabled entirely under ``--no-progress`` or when stderr is
not a terminal — CI logs stay clean.
"""

from __future__ import annotations

import sys
import time

# relative training cost per suite (QUICK scale, arbitrary units —
# only ratios matter; unknown suites fall back to the median-ish 4)
TIME_PRIORS: dict[str, float] = {
    "memn2n": 1.0,
    "bert_base_glue": 4.0,
    "bert_large_glue": 7.0,
    "bert_base_squad": 5.0,
    "albert_squad": 5.0,
    "gpt2_wikitext": 6.0,
    "vit_cifar": 5.0,
}
DEFAULT_PRIOR = 4.0


def suite_of(name: str) -> str:
    return name.split("/", 1)[0]


def prior_weight(name: str) -> float:
    return TIME_PRIORS.get(suite_of(name), DEFAULT_PRIOR)


class SweepProgress:
    """Render sweep progress + ETA as tasks start and finish.

    ``stream``/``clock`` are injectable for tests; ``enabled=False``
    turns the whole thing into a no-op (the ``--no-progress`` path).
    """

    def __init__(self, names, enabled: bool = True, stream=None,
                 clock=time.monotonic, width: int = 24):
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.width = width
        self.weights = {name: prior_weight(name) for name in names}
        self.total_weight = sum(self.weights.values()) or 1.0
        self.done_weight = 0.0
        self.done = 0
        self.total = len(self.weights)
        self.observed_seconds = 0.0
        self.started_at = clock()
        self._active: str | None = None

    # -- event feed -----------------------------------------------------
    def start(self, name: str) -> None:
        self._active = name
        self._render()

    def finish(self, name: str, seconds: float | None = None) -> None:
        """One task reached a terminal state (trained, cached, or
        failed); ``seconds`` is its measured training time when it
        really trained (cache hits contribute no rate evidence)."""
        if name == self._active:
            self._active = None
        self.done += 1
        self.done_weight += self.weights.get(name, DEFAULT_PRIOR)
        if seconds is not None:
            self.observed_seconds += seconds
        self._render()

    def close(self) -> None:
        """End the progress line so subsequent output starts clean."""
        if self.enabled and self.done:
            self.stream.write("\n")
            self.stream.flush()

    # -- estimation -----------------------------------------------------
    def eta_seconds(self) -> float | None:
        """Remaining wall-seconds, or None before any rate evidence.

        Rate = observed training seconds per prior cost unit; the
        priors carry the cross-suite shape so one finished cheap task
        still predicts the expensive tail sensibly."""
        if self.observed_seconds <= 0 or self.done_weight <= 0:
            return None
        rate = self.observed_seconds / self.done_weight
        return max(self.total_weight - self.done_weight, 0.0) * rate

    # -- rendering ------------------------------------------------------
    def _render(self) -> None:
        if not self.enabled:
            return
        fraction = min(self.done_weight / self.total_weight, 1.0)
        filled = int(round(fraction * self.width))
        bar = "#" * filled + "-" * (self.width - filled)
        eta = self.eta_seconds()
        eta_text = f"ETA {eta:5.1f}s" if eta is not None else "ETA --"
        active = f"  {self._active}" if self._active else ""
        self.stream.write(f"\r[{bar}] {self.done}/{self.total} "
                          f"{fraction:4.0%} {eta_text}{active}\x1b[K")
        self.stream.flush()
