"""Workload registry: the paper's 43-task benchmark suite, synthetic.

Suites mirror the paper's Table: MemN2N on 20 bAbI tasks, BERT-base and
BERT-large on 9 GLUE tasks each, BERT/ALBERT on SQuAD, GPT-2 on
WikiText-2 and ViT on CIFAR-10 (20+9+9+2+1+1+1 = 43).  Each spec
carries the per-suite fine-tuning hyperparameters (the paper tunes the
threshold learning rate and the Eq. 7a balance factor per task family).

Specs are fully picklable (the data/model factories are module-level
dataclasses, not closures) so sweep workers can receive them directly,
and ``spec_hash`` fingerprints every training-relevant hyperparameter —
the on-disk :class:`~repro.eval.store.WorkloadStore` keys entries on it
so a hyperparameter change invalidates stale trained models.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
from dataclasses import dataclass
from typing import Callable

from ..data import (Task, make_babi_task, make_cifar_task, make_glue_task,
                    make_squad_task, make_wikitext_task)
from ..models import (ClassifierConfig, LMConfig, MemN2N, MemN2NConfig,
                      TransformerClassifier, TransformerLM)


@dataclass(frozen=True)
class Scale:
    """How big a reproduction run is; QUICK is the benchmark default."""

    name: str
    train_size: int
    test_size: int
    batch_size: int
    pretrain_epochs: int
    finetune_epochs: int
    max_records: int


TINY = Scale("tiny", train_size=96, test_size=32, batch_size=32,
             pretrain_epochs=4, finetune_epochs=2, max_records=4)
QUICK = Scale("quick", train_size=256, test_size=64, batch_size=32,
              pretrain_epochs=8, finetune_epochs=4, max_records=8)


@dataclass(frozen=True)
class WorkloadSpec:
    name: str                 # "suite/task"
    suite: str
    task: str
    metric: str               # "accuracy" | "perplexity"
    data_fn: Callable
    model_fn: Callable
    l0_weight: float = 0.05
    threshold_lr: float = 8e-3
    weight_lr: float = 5e-4
    pretrain_lr: float = 3e-3
    pretrain_epoch_factor: float = 1.0
    finetune_epoch_factor: float = 1.0
    seed: int = 0

    def make_data(self, scale: Scale, seed: int | None = None) -> Task:
        return self.data_fn(scale, self.seed if seed is None else seed)

    def make_model(self, task: Task):
        return self.model_fn(task, self.seed)


HASHED_FIELDS = ("name", "suite", "task", "metric", "l0_weight",
                 "threshold_lr", "weight_lr", "pretrain_lr",
                 "pretrain_epoch_factor", "finetune_epoch_factor", "seed")


def spec_hash(spec: WorkloadSpec) -> str:
    """Stable fingerprint of every hyperparameter that shapes training.

    The factories themselves are excluded (callables don't hash
    stably); changing what a registered factory builds requires bumping
    the store's format version instead.
    """
    payload = {name: getattr(spec, name) for name in HASHED_FIELDS}
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# data factories (picklable: sweep workers unpickle specs wholesale)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BabiData:
    task_id: int

    def __call__(self, scale: Scale, seed: int) -> Task:
        return make_babi_task(self.task_id, scale.train_size,
                              scale.test_size, seed)


@dataclass(frozen=True)
class GlueData:
    task_id: str

    def __call__(self, scale: Scale, seed: int) -> Task:
        return make_glue_task(self.task_id, scale.train_size,
                              scale.test_size, seed)


@dataclass(frozen=True)
class SquadData:
    version: str
    seed_offset: int = 0

    def __call__(self, scale: Scale, seed: int) -> Task:
        return make_squad_task(self.version, scale.train_size,
                               scale.test_size, seed + self.seed_offset)


@dataclass(frozen=True)
class WikitextData:
    def __call__(self, scale: Scale, seed: int) -> Task:
        return make_wikitext_task(scale.train_size, scale.test_size, seed)


@dataclass(frozen=True)
class CifarData:
    def __call__(self, scale: Scale, seed: int) -> Task:
        return make_cifar_task(scale.train_size, scale.test_size, seed)


# ---------------------------------------------------------------------------
# model builders
# ---------------------------------------------------------------------------

def _bert_base(task: Task, seed: int) -> TransformerClassifier:
    return TransformerClassifier(ClassifierConfig(
        vocab_size=task.metadata["vocab_size"],
        max_seq_len=task.metadata["seq_len"] + 2,
        dim=32, num_heads=2, num_layers=2,
        num_classes=task.num_classes, seed=seed))


def _bert_large(task: Task, seed: int) -> TransformerClassifier:
    return TransformerClassifier(ClassifierConfig(
        vocab_size=task.metadata["vocab_size"],
        max_seq_len=task.metadata["seq_len"] + 2,
        dim=48, num_heads=4, num_layers=3,
        num_classes=task.num_classes, seed=seed))


@dataclass(frozen=True)
class SpanModel:
    dim: int
    layers: int

    def __call__(self, task: Task, seed: int) -> TransformerClassifier:
        return TransformerClassifier(ClassifierConfig(
            vocab_size=task.metadata["vocab_size"],
            max_seq_len=task.metadata["seq_len"] + 2,
            dim=self.dim, num_heads=2, num_layers=self.layers,
            num_classes=task.num_classes, head="span", seed=seed))


def _gpt2(task: Task, seed: int) -> TransformerLM:
    return TransformerLM(LMConfig(
        vocab_size=task.metadata["vocab_size"],
        max_seq_len=task.metadata["seq_len"] + 8,
        dim=32, num_heads=2, num_layers=2, seed=seed))


def _vit(task: Task, seed: int) -> TransformerClassifier:
    return TransformerClassifier(ClassifierConfig(
        vocab_size=None, input_dim=task.metadata["patch_dim"],
        max_seq_len=task.metadata["num_patches"],
        dim=32, num_heads=2, num_layers=2,
        num_classes=task.num_classes, seed=seed))


def _memn2n(task: Task, seed: int) -> MemN2N:
    return MemN2N(MemN2NConfig(
        vocab_size=task.metadata["vocab_size"],
        num_slots=task.metadata["num_slots"],
        sentence_len=task.metadata["sentence_len"],
        dim=24, num_hops=3, num_classes=task.num_classes, seed=seed))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

GLUE_TASK_IDS = ["cola", "sst", "mrpc", "stsb", "qqp", "mnli", "qnli",
                 "rte", "wnli"]

WORKLOADS: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    WORKLOADS[spec.name] = spec


for i in range(1, 21):
    _register(WorkloadSpec(
        name=f"memn2n/Task-{i}", suite="memn2n", task=f"Task-{i}",
        metric="accuracy",
        data_fn=BabiData(i),
        model_fn=_memn2n,
        l0_weight=0.3, threshold_lr=6e-2, pretrain_lr=8e-3,
        pretrain_epoch_factor=2.0,
    ))

for task_id in GLUE_TASK_IDS:
    _register(WorkloadSpec(
        name=f"bert_base_glue/G-{task_id.upper()}", suite="bert_base_glue",
        task=f"G-{task_id.upper()}", metric="accuracy",
        data_fn=GlueData(task_id), model_fn=_bert_base,
        l0_weight=0.05, threshold_lr=8e-3, pretrain_epoch_factor=2.0,
    ))
    _register(WorkloadSpec(
        name=f"bert_large_glue/G-{task_id.upper()}", suite="bert_large_glue",
        task=f"G-{task_id.upper()}", metric="accuracy",
        data_fn=GlueData(task_id), model_fn=_bert_large,
        l0_weight=0.05, threshold_lr=8e-3, pretrain_epoch_factor=2.0,
    ))

_register(WorkloadSpec(
    name="bert_base_squad/SQUAD", suite="bert_base_squad", task="SQUAD",
    metric="accuracy",
    data_fn=SquadData("v1"),
    model_fn=SpanModel(32, 2),
    l0_weight=0.05, threshold_lr=8e-3, pretrain_epoch_factor=2.0,
))
_register(WorkloadSpec(
    name="bert_base_squad/SQUAD-v2", suite="bert_base_squad",
    task="SQUAD-v2", metric="accuracy",
    data_fn=SquadData("v2"),
    model_fn=SpanModel(32, 2),
    l0_weight=0.05, threshold_lr=8e-3, pretrain_epoch_factor=2.0,
))
_register(WorkloadSpec(
    name="albert_squad/SQUAD", suite="albert_squad", task="SQUAD",
    metric="accuracy",
    data_fn=SquadData("v1", seed_offset=1),
    model_fn=SpanModel(28, 2),
    l0_weight=0.05, threshold_lr=8e-3, pretrain_epoch_factor=2.0, seed=1,
))
_register(WorkloadSpec(
    name="gpt2_wikitext/WikiText-2", suite="gpt2_wikitext",
    task="WikiText-2", metric="perplexity",
    data_fn=WikitextData(),
    model_fn=_gpt2,
    l0_weight=0.05, threshold_lr=8e-3, weight_lr=3e-4,
    pretrain_epoch_factor=2.0,
))
_register(WorkloadSpec(
    name="vit_cifar/CIFAR-10", suite="vit_cifar", task="CIFAR-10",
    metric="accuracy",
    data_fn=CifarData(),
    model_fn=_vit,
    l0_weight=0.02, threshold_lr=4e-3, pretrain_epoch_factor=1.0,
))


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; have "
                       f"{len(WORKLOADS)} (e.g. {next(iter(WORKLOADS))})")


def list_workloads(suite: str | None = None) -> list[str]:
    """Registered workload names, optionally filtered by suite.

    ``suite`` is an ``fnmatch`` glob over suite names (exact names are
    globs too), so ``bert*`` selects every BERT family and ``?emn2n``
    still finds memn2n; matching is case-sensitive like the registry.
    """
    if suite is None:
        return list(WORKLOADS)
    return [name for name, spec in WORKLOADS.items()
            if fnmatch.fnmatchcase(spec.suite, suite)]


def list_suites() -> list[str]:
    """Every distinct suite name, sorted (for CLI error messages)."""
    return sorted({spec.suite for spec in WORKLOADS.values()})
