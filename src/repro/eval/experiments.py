"""The paper's figures and tables as runnable experiments.

Every experiment returns an :class:`ExperimentResult` whose ``data``
payload backs the assertions in ``benchmarks/`` and whose ``table`` is
a ready-to-print text rendering.  Heavy experiments accept a
``WorkloadCache`` so trained models are shared across figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..hw import (AE_LEOPARD, HP_LEOPARD, AreaModel, EnergyModel,
                  TileSimulator, baseline_like)
from ..hw.bitserial import bitserial_cycles_matrix, serial_cycle_count
from .reporting import format_dict_table, format_series, geometric_mean
from .runner import WorkloadCache
from .workloads import QUICK, Scale, get_workload

REPRESENTATIVE_WORKLOADS = (
    "memn2n/Task-1",
    "memn2n/Task-7",
    "bert_base_glue/G-SST",
    "bert_base_glue/G-QNLI",
    "bert_large_glue/G-SST",
    "bert_base_squad/SQUAD",
    "albert_squad/SQUAD",
    "gpt2_wikitext/WikiText-2",
    "vit_cifar/CIFAR-10",
)

MEMN2N_REPRESENTATIVE = ("memn2n/Task-1", "memn2n/Task-7")

# single-workload experiments (fig2 dynamics, baseline comparison)
DEFAULT_DYNAMICS_WORKLOAD = "bert_base_glue/G-QNLI"

# experiments that never train a model
STATIC_EXPERIMENTS = frozenset({"table1", "fig12"})


def required_workloads(experiments, workloads=None,
                       explicit: bool = False) -> list[str]:
    """Union of workload names the given experiments will ask the cache
    for — what a scheduler must prefetch so the experiments themselves
    never train.  ``workloads`` overrides the representative subset for
    the multi-workload figures; with ``explicit`` it also overrides
    fig14's built-in MemN2N subset (fig2/baselines always use their
    single default workload)."""
    needed: set[str] = set()
    for name in experiments:
        if name in STATIC_EXPERIMENTS:
            continue
        if name in ("fig2", "baselines"):
            needed.add(DEFAULT_DYNAMICS_WORKLOAD)
        elif name == "fig14":
            needed.update(workloads if (explicit and workloads)
                          else MEMN2N_REPRESENTATIVE)
        else:
            needed.update(workloads or REPRESENTATIVE_WORKLOADS)
    return sorted(needed)


@dataclass
class ExperimentResult:
    name: str
    title: str
    table: str
    data: dict = field(default_factory=dict)


def _results(scale: Scale, workloads, cache: WorkloadCache | None):
    cache = cache or WorkloadCache()
    names = list(workloads or REPRESENTATIVE_WORKLOADS)
    return [(name, cache.get(get_workload(name), scale)) for name in names]


def _suite_of(name: str) -> str:
    return name.split("/", 1)[0]


# ---------------------------------------------------------------------------
# Fig. 2 — fine-tuning dynamics
# ---------------------------------------------------------------------------

def run_fig2(scale: Scale, workload: str = DEFAULT_DYNAMICS_WORKLOAD,
             cache: WorkloadCache | None = None) -> ExperimentResult:
    result = (cache or WorkloadCache()).get(get_workload(workload), scale)
    history = result.history
    epochs = [e.epoch for e in history.epochs]
    table = format_series(
        "epoch", epochs,
        {
            "sparsity": list(history.sparsities()),
            "mean_threshold": list(history.mean_thresholds()),
            "normalized_loss": list(history.normalized_losses()),
        },
        title=f"Fig. 2 — pruning-aware fine-tuning dynamics ({workload})")
    return ExperimentResult(
        name="fig2", title="Fine-tuning dynamics", table=table,
        data={"history": history, "workload": workload})


# ---------------------------------------------------------------------------
# Fig. 6 — accuracy before/after runtime pruning
# ---------------------------------------------------------------------------

def run_fig6(scale: Scale, workloads=None,
             cache: WorkloadCache | None = None) -> ExperimentResult:
    rows = []
    accuracy_deltas = []
    for name, result in _results(scale, workloads, cache):
        delta = result.metric_delta
        rows.append({
            "task": name, "metric": result.metric_name,
            "baseline": result.baseline_metric,
            "pruned": result.pruned_metric, "delta": delta,
        })
        if result.metric_name == "accuracy":
            accuracy_deltas.append(delta)
    mean_delta = float(np.mean(accuracy_deltas)) if accuracy_deltas else 0.0
    table = format_dict_table(
        rows, title="Fig. 6 — metric before/after runtime pruning "
                    f"(mean accuracy degradation {mean_delta:+.4f})")
    return ExperimentResult(
        name="fig6", title="Accuracy impact", table=table,
        data={"rows": rows, "mean_delta": mean_delta})


# ---------------------------------------------------------------------------
# Fig. 7 — runtime pruning rate per task / suite
# ---------------------------------------------------------------------------

def run_fig7(scale: Scale, workloads=None,
             cache: WorkloadCache | None = None) -> ExperimentResult:
    rows = []
    by_suite: dict[str, list[float]] = {}
    for name, result in _results(scale, workloads, cache):
        rate = result.pruning_rate
        rows.append({"task": name, "pruning_rate": rate,
                     "per_layer": np.round(
                         result.pruning_report.per_layer_rates(),
                         2).tolist()})
        by_suite.setdefault(_suite_of(name), []).append(rate)
    suite_means = {suite: float(np.mean(rates))
                   for suite, rates in by_suite.items()}
    table = format_dict_table(
        rows, title="Fig. 7 — runtime pruning rate (suite means: "
        + ", ".join(f"{s}={m:.2f}" for s, m in suite_means.items()) + ")")
    return ExperimentResult(
        name="fig7", title="Pruning rate", table=table,
        data={"rows": rows, "suite_means": suite_means})


# ---------------------------------------------------------------------------
# Fig. 8 — cumulative pruning rate vs processed K bits
# ---------------------------------------------------------------------------

def run_fig8(scale: Scale, workloads=None,
             cache: WorkloadCache | None = None) -> ExperimentResult:
    group = AE_LEOPARD.serial_bits
    magnitude_bits = AE_LEOPARD.magnitude_bits
    total_bits = AE_LEOPARD.qk_bits
    suite_hist: dict[str, np.ndarray] = {}
    suite_valid: dict[str, float] = {}
    suite_bits: dict[str, list[float]] = {}
    for name, result in _results(scale, workloads, cache):
        suite = _suite_of(name)
        hist = suite_hist.setdefault(
            suite, np.zeros(total_bits + 1, dtype=np.float64))
        for job in result.hw_jobs():
            cycles, pruned, _ = bitserial_cycles_matrix(
                job.queries, job.keys, job.threshold, magnitude_bits,
                group, valid=job.valid)
            mask = pruned & job.valid
            bits = np.minimum(cycles[mask] * group, total_bits)
            if bits.size:
                hist += np.bincount(bits, minlength=total_bits + 1)[
                    :total_bits + 1]
                suite_bits.setdefault(suite, []).append(float(bits.mean()))
            suite_valid[suite] = suite_valid.get(suite, 0.0) \
                + float(job.valid.sum())
    series = {}
    mean_bits = {}
    for suite, hist in suite_hist.items():
        cumulative = np.cumsum(hist) / max(suite_valid.get(suite, 1.0), 1.0)
        series[suite] = cumulative.tolist()
        mean_bits[suite] = float(np.mean(suite_bits.get(suite, [0.0])))
    table = format_series(
        "bits", list(range(total_bits + 1)),
        {suite: curve for suite, curve in series.items()},
        title="Fig. 8 — cumulative pruning rate vs processed K bit-planes")
    return ExperimentResult(
        name="fig8", title="Bits to prune", table=table,
        data={"series": series, "mean_bits_to_prune": mean_bits})


# ---------------------------------------------------------------------------
# Fig. 9 / Fig. 10 — speedup and energy reduction over the baseline
# ---------------------------------------------------------------------------

def _design_runs(jobs):
    designs = {
        "AE-LeOPArd": AE_LEOPARD,
        "HP-LeOPArd": HP_LEOPARD,
        "Baseline": baseline_like(AE_LEOPARD),
    }
    return {name: TileSimulator(config).run(jobs)
            for name, config in designs.items()}, designs


def run_fig9(scale: Scale, workloads=None,
             cache: WorkloadCache | None = None) -> ExperimentResult:
    rows = []
    ae, hp = [], []
    for name, result in _results(scale, workloads, cache):
        runs, _ = _design_runs(result.hw_jobs())
        base = runs["Baseline"].total_cycles
        speed_ae = base / max(runs["AE-LeOPArd"].total_cycles, 1)
        speed_hp = base / max(runs["HP-LeOPArd"].total_cycles, 1)
        rows.append({"task": name, "AE-LeOPArd": speed_ae,
                     "HP-LeOPArd": speed_hp})
        ae.append(speed_ae)
        hp.append(speed_hp)
    gmean_ae = geometric_mean(ae)
    gmean_hp = geometric_mean(hp)
    rows.append({"task": "GMean", "AE-LeOPArd": gmean_ae,
                 "HP-LeOPArd": gmean_hp})
    table = format_dict_table(
        rows, title="Fig. 9 — speedup over the non-pruning baseline")
    return ExperimentResult(
        name="fig9", title="Speedup", table=table,
        data={"rows": rows, "gmean_ae": gmean_ae, "gmean_hp": gmean_hp})


def run_fig10(scale: Scale, workloads=None,
              cache: WorkloadCache | None = None) -> ExperimentResult:
    energy = EnergyModel()
    rows = []
    ae, hp = [], []
    for name, result in _results(scale, workloads, cache):
        runs, designs = _design_runs(result.hw_jobs())
        base = energy.total(runs["Baseline"].counters, designs["Baseline"])
        gain_ae = base / energy.total(runs["AE-LeOPArd"].counters,
                                      designs["AE-LeOPArd"])
        gain_hp = base / energy.total(runs["HP-LeOPArd"].counters,
                                      designs["HP-LeOPArd"])
        rows.append({"task": name, "AE-LeOPArd": gain_ae,
                     "HP-LeOPArd": gain_hp})
        ae.append(gain_ae)
        hp.append(gain_hp)
    gmean_ae = geometric_mean(ae)
    gmean_hp = geometric_mean(hp)
    rows.append({"task": "GMean", "AE-LeOPArd": gmean_ae,
                 "HP-LeOPArd": gmean_hp})
    table = format_dict_table(
        rows, title="Fig. 10 — total energy reduction over the baseline")
    return ExperimentResult(
        name="fig10", title="Energy reduction", table=table,
        data={"rows": rows, "gmean_ae": gmean_ae, "gmean_hp": gmean_hp})


# ---------------------------------------------------------------------------
# Fig. 11 — energy breakdown / savings attribution
# ---------------------------------------------------------------------------

def run_fig11(scale: Scale, workloads=None,
              cache: WorkloadCache | None = None) -> ExperimentResult:
    energy = EnergyModel()
    designs = {
        "Baseline": baseline_like(AE_LEOPARD),
        # runtime pruning only: baseline front end, pruned back end
        "LeOPArd-P": replace(baseline_like(AE_LEOPARD), name="LeOPArd-P",
                             runtime_pruning=True),
        "LeOPArd": AE_LEOPARD,
    }
    suite_jobs: dict[str, list] = {}
    for name, result in _results(scale, workloads, cache):
        suite_jobs.setdefault(_suite_of(name), []).extend(result.hw_jobs())
    rows = []
    attribution = {}
    for suite, jobs in suite_jobs.items():
        totals = {}
        for design_name, config in designs.items():
            run = TileSimulator(config).run(jobs)
            breakdown = energy.breakdown(run.counters, config)
            totals[design_name] = (breakdown, config)
        base_total = totals["Baseline"][0].total
        for design_name, (breakdown, _) in totals.items():
            rows.append({
                "suite": suite, "design": design_name,
                "qk_compute": breakdown.qk_compute / base_total,
                "key_memory": breakdown.key_memory / base_total,
                "softmax": breakdown.softmax / base_total,
                "v_compute": breakdown.v_compute / base_total,
                "value_memory": breakdown.value_memory / base_total,
                "normalized_total": breakdown.total / base_total,
            })
        attribution[suite] = {
            "pruning_gain": base_total / totals["LeOPArd-P"][0].total,
            "bitserial_gain": (totals["LeOPArd-P"][0].total
                               / totals["LeOPArd"][0].total),
        }
    table = format_dict_table(
        rows, title="Fig. 11 — energy breakdown, normalized to baseline")
    return ExperimentResult(
        name="fig11", title="Energy breakdown", table=table,
        data={"rows": rows, "attribution": attribution})


# ---------------------------------------------------------------------------
# Fig. 12 — tile area breakdown
# ---------------------------------------------------------------------------

def run_fig12() -> ExperimentResult:
    model = AreaModel()
    area = model.tile_area(AE_LEOPARD)
    shares = area.shares()
    rows = [{"component": component, "share": share,
             "area_mm2": getattr(area, component)}
            for component, share in shares.items()]
    table = format_dict_table(
        rows, title=f"Fig. 12 — AE-LeOPArd tile area breakdown "
                    f"(total {area.total_mm2:.2f} mm^2 @ 65 nm)")
    return ExperimentResult(
        name="fig12", title="Area breakdown", table=table,
        data={"rows": rows, "total_mm2": area.total_mm2})


# ---------------------------------------------------------------------------
# Fig. 13 — V-PU utilization vs QK parallelism
# ---------------------------------------------------------------------------

def run_fig13(scale: Scale, workloads=None, sweep=(3, 4, 5, 6, 8, 12),
              cache: WorkloadCache | None = None) -> ExperimentResult:
    results = _results(scale, workloads, cache)
    rows = []
    mean_utilization = {}
    for n_qk in sweep:
        config = replace(AE_LEOPARD, name=f"N{n_qk}", num_qk_dpus=n_qk)
        utils = []
        stalls = 0
        for name, result in results:
            run = TileSimulator(config).run(result.hw_jobs())
            utils.append(run.vpu_utilization)
            stalls += run.frontend_stall_cycles
        mean_utilization[n_qk] = float(np.mean(utils))
        rows.append({"N_QK": n_qk,
                     "mean V-PU utilization": mean_utilization[n_qk],
                     "frontend stalls": stalls})
    table = format_dict_table(
        rows, title="Fig. 13 — back-end demand vs QK-PU parallelism")
    return ExperimentResult(
        name="fig13", title="N_QK sweep", table=table,
        data={"rows": rows, "mean_utilization": mean_utilization})


# ---------------------------------------------------------------------------
# Fig. 14 — bit-serial granularity sweep
# ---------------------------------------------------------------------------

def run_fig14(scale: Scale, workloads=None,
              cache: WorkloadCache | None = None) -> ExperimentResult:
    energy = EnergyModel()
    names = list(workloads or MEMN2N_REPRESENTATIVE)
    jobs = []
    for name, result in _results(scale, names, cache):
        jobs.extend(result.hw_jobs())
    rows = []
    per_score = {}
    for b in (1, 2, 4, 12):
        config = replace(AE_LEOPARD, name=f"B{b}", serial_bits=b)
        run = TileSimulator(config).run(jobs)
        breakdown = energy.breakdown(run.counters, config)
        per_score[b] = (breakdown.frontend
                        / max(run.counters.scores_total, 1))
        rows.append({"B": b, "QK energy/score": per_score[b],
                     "cycles/score": (run.counters.qk_lane_cycles
                                      / max(run.counters.scores_total, 1))})
    reference = per_score[12]
    normalized = {b: value / reference for b, value in per_score.items()}
    for row in rows:
        row["normalized"] = normalized[row["B"]]
    table = format_dict_table(
        rows, title="Fig. 14 — front-end energy vs bit-serial granularity")
    return ExperimentResult(
        name="fig14", title="Granularity sweep", table=table,
        data={"rows": rows, "normalized": normalized})


# ---------------------------------------------------------------------------
# Table 1 — tile configurations
# ---------------------------------------------------------------------------

def run_table1() -> ExperimentResult:
    rows = []
    for config in (AE_LEOPARD, HP_LEOPARD, baseline_like(AE_LEOPARD)):
        rows.append({
            "design": config.name,
            "N_QK": config.num_qk_dpus,
            "QK bits": config.qk_bit_format,
            "D": config.dim,
            "Key buffer (KB)": config.key_buffer_kb,
            "Value buffer (KB)": config.value_buffer_kb,
            "Freq (GHz)": config.frequency_ghz,
        })
    table = format_dict_table(rows,
                              title="Table 1 — tile microarchitectures")
    return ExperimentResult(name="table1", title="Tile configurations",
                            table=table, data={"rows": rows})


# ---------------------------------------------------------------------------
# Table 2 — comparison with A3 / SpAtten operating points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OperatingPoint:
    name: str
    tech_nm: int
    area_mm2: float
    gops_per_s: float
    gops_per_j: float

    @property
    def gops_per_s_per_mm2(self) -> float:
        return self.gops_per_s / self.area_mm2


# Published 40 nm operating points, rescaled once into this model's
# synthetic op-accounting units (ops are nominal attention MACs of the
# unpruned computation).  Relative positions follow the paper's Table 2.
LITERATURE_POINTS = (
    OperatingPoint("A3-Base", 40, 2.08, 374.0, 110_000.0),
    OperatingPoint("A3-Conservative", 40, 2.08, 490.0, 250_000.0),
    OperatingPoint("SpAtten", 40, 1.55, 806.0, 47_500.0),
)

_DENNARD = 65.0 / 40.0


def _operating_point(name: str, run, config, area_mm2: float,
                     tech_nm: int = 65) -> OperatingPoint:
    counters = run.counters
    nominal_ops = counters.scores_total * (4 * config.dim + 5)
    seconds = run.total_cycles / (config.frequency_ghz * 1e9)
    joules = EnergyModel().total(counters, config) * 1e-12
    point = OperatingPoint(
        name=name, tech_nm=tech_nm, area_mm2=area_mm2,
        gops_per_s=nominal_ops / seconds / 1e9,
        gops_per_j=nominal_ops / joules / 1e9)
    return point


def _dennard_scale(point: OperatingPoint, name: str) -> OperatingPoint:
    """65 nm -> 40 nm: area / lambda^2, delay / lambda, energy / lambda."""
    return OperatingPoint(
        name=name, tech_nm=40,
        area_mm2=point.area_mm2 / _DENNARD ** 2,
        gops_per_s=point.gops_per_s * _DENNARD,
        gops_per_j=point.gops_per_j * _DENNARD)


def run_table2(scale: Scale, workloads=None,
               cache: WorkloadCache | None = None) -> ExperimentResult:
    jobs = []
    for name, result in _results(scale, workloads, cache):
        jobs.extend(result.hw_jobs())
    area_model = AreaModel()

    hp65_run = TileSimulator(HP_LEOPARD).run(jobs)
    hp65 = _operating_point(
        "HP-LeOPArd", hp65_run, HP_LEOPARD,
        area_model.tile_area(HP_LEOPARD).total_mm2)
    hp40 = _dennard_scale(hp65, "HP-LeOPArd+")

    hp9_config = replace(HP_LEOPARD, name="HP-LeOPArd-9b", qk_bits=9)
    hp9_run = TileSimulator(hp9_config).run(jobs)
    hp9_65 = _operating_point(
        "HP-LeOPArd-9b", hp9_run, hp9_config,
        area_model.tile_area(hp9_config).total_mm2)
    hp40_9b = _dennard_scale(hp9_65, "HP-LeOPArd+*")

    points = list(LITERATURE_POINTS) + [hp65, hp40, hp40_9b]
    rows = [{
        "design": p.name, "tech (nm)": p.tech_nm, "area (mm^2)": p.area_mm2,
        "GOPs/s": p.gops_per_s, "GOPs/J": p.gops_per_j,
        "GOPs/s/mm^2": p.gops_per_s_per_mm2,
    } for p in points]
    table = format_dict_table(
        rows, title="Table 2 — operating points vs A3 / SpAtten "
                    "(LeOPArd+ = Dennard-scaled to 40 nm, * = 9-bit QK)")
    return ExperimentResult(name="table2", title="Accelerator comparison",
                            table=table, data={"rows": rows,
                                               "points": points})


# ---------------------------------------------------------------------------
# Learned thresholds vs heuristic pruning (paper §1 claim)
# ---------------------------------------------------------------------------

def run_baseline_comparison(scale: Scale,
                            workload: str = DEFAULT_DYNAMICS_WORKLOAD,
                            cache: WorkloadCache | None = None
                            ) -> ExperimentResult:
    from ..core.finetune import evaluate_accuracy
    from ..core.pruning import PruningMode
    from ..core.stats import measure_pruning
    from ..data import batches

    result = (cache or WorkloadCache()).get(get_workload(workload), scale)
    model, controller, spec = result.model, result.controller, result.spec
    data = spec.make_data(scale)
    modules = model.attention_modules()

    def operating_point(label: str, heuristic):
        try:
            for module in modules:
                module.heuristic = heuristic
            report = measure_pruning(model, controller,
                                     batches(data.test, scale.batch_size))
            accuracy = evaluate_accuracy(
                model, controller, batches(data.test, scale.batch_size),
                PruningMode.HARD)
        finally:
            # the model is shared via the session cache: never leak a
            # heuristic override to later experiments
            for module in modules:
                module.heuristic = None
        return {"method": label, "pruning_rate": report.overall_rate,
                "accuracy": accuracy}

    rows = [operating_point("learned (LeOPArd)", None)]
    for delta in (0.5, 1.0, 2.0, 4.0):
        rows.append(operating_point(f"A3-rel (d={delta})",
                                    ("relative", delta)))
    for k in (1, 2, 4, 8):
        rows.append(operating_point(f"SpAtten top-k (k={k})", ("topk", k)))
    table = format_dict_table(
        rows, title=f"Learned vs heuristic pruning on {workload}")
    return ExperimentResult(
        name="baselines", title="Learned vs heuristic pruning",
        table=table, data={"rows": rows, "workload": workload})


ALL_EXPERIMENTS = {
    "fig2": run_fig2,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "table1": run_table1,
    "table2": run_table2,
    "baselines": run_baseline_comparison,
}
