"""Workload runner + the read-through trained-model cache.

Training is the expensive step of every experiment, so ``WorkloadCache``
memoizes :func:`run_workload` results.  Lookups fall through three
tiers — in-process memory, then an optional on-disk
:class:`~repro.eval.store.WorkloadStore` (rehydrated without
retraining), then actual training — and every training-relevant
hyperparameter is part of the key via
:func:`~repro.eval.workloads.spec_hash`, so editing a spec invalidates
its cached model instead of silently serving a stale one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import (FineTuneConfig, FinetuneHistory, PruningReport,
                    SurrogateL0Config, evaluate_accuracy,
                    finetune_with_pruning, measure_pruning)
from ..core.pruning import PruningMode
from ..data import batches
from ..optim import Adam, clip_grad_norm
from .workloads import Scale, WorkloadSpec, spec_hash


@dataclass
class WorkloadResult:
    spec: WorkloadSpec
    scale: Scale
    model: object
    controller: object
    history: FinetuneHistory
    pruning_report: PruningReport
    baseline_metric: float
    pruned_metric: float

    _hw_jobs: list | None = field(default=None, repr=False)

    @property
    def metric_name(self) -> str:
        return self.spec.metric

    @property
    def records(self) -> list:
        return self.pruning_report.records

    @property
    def pruning_rate(self) -> float:
        return self.pruning_report.overall_rate

    @property
    def metric_delta(self) -> float:
        """Degradation, positive = worse (sign-aware per metric)."""
        if self.spec.metric == "perplexity":
            return self.pruned_metric - self.baseline_metric
        return self.baseline_metric - self.pruned_metric

    def hw_jobs(self) -> list:
        if self._hw_jobs is None:
            from ..hw.workload import jobs_from_records
            self._hw_jobs = jobs_from_records(self.records)
        return self._hw_jobs


def run_workload(spec: WorkloadSpec, scale: Scale,
                 track_epochs: bool = False) -> WorkloadResult:
    """Pretrain, measure the no-pruning baseline, run pruning-aware
    fine-tuning, then measure the deployed (HARD) metric and pruning."""
    del track_epochs  # epoch history is always tracked
    data = spec.make_data(scale)
    model = spec.make_model(data)
    rng = np.random.default_rng(np.random.SeedSequence([spec.seed, 101]))

    pretrain_epochs = max(1, round(
        scale.pretrain_epochs * spec.pretrain_epoch_factor))
    optimizer = Adam(model.parameters(), lr=spec.pretrain_lr)
    model.train()
    for _ in range(pretrain_epochs):
        for batch in batches(data.train, scale.batch_size, rng=rng,
                             shuffle=True):
            loss = model.loss(batch)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(optimizer.all_params(), 1.0)
            optimizer.step()

    baseline_metric = evaluate_accuracy(
        model, None, batches(data.test, scale.batch_size))

    controller = model.make_controller(
        l0_config=SurrogateL0Config(weight=spec.l0_weight))
    finetune_epochs = max(1, round(
        scale.finetune_epochs * spec.finetune_epoch_factor))
    history = finetune_with_pruning(
        model, controller,
        lambda: batches(data.train, scale.batch_size, rng=rng,
                        shuffle=True),
        FineTuneConfig(epochs=finetune_epochs, weight_lr=spec.weight_lr,
                       threshold_lr=spec.threshold_lr))

    pruned_metric = evaluate_accuracy(
        model, controller, batches(data.test, scale.batch_size),
        PruningMode.HARD)
    report = measure_pruning(
        model, controller, batches(data.test, scale.batch_size),
        keep_records=True, record_qk=True, max_records=scale.max_records)

    return WorkloadResult(
        spec=spec, scale=scale, model=model, controller=controller,
        history=history, pruning_report=report,
        baseline_metric=baseline_metric, pruned_metric=pruned_metric)


class WorkloadCache:
    """Read-through cache of trained workloads: memory -> disk -> train.

    Without a store this is the session-scoped memo it always was; with
    one, every trained result is published to disk and later sessions
    (or parallel sweep workers) rehydrate it instead of retraining.
    ``events`` logs ``(workload name, tier)`` per lookup with tier in
    {"memory", "disk", "train"} — tests and the sweep CLI assert
    resumability against it.
    """

    def __init__(self, store=None):
        self.store = store
        self._results: dict[tuple, WorkloadResult] = {}
        self.events: list[tuple[str, str]] = []

    @staticmethod
    def _key(spec: WorkloadSpec, scale: Scale) -> tuple:
        return (spec.name, scale.name, spec.seed, spec_hash(spec))

    def get(self, spec: WorkloadSpec, scale: Scale) -> WorkloadResult:
        key = self._key(spec, scale)
        if key in self._results:
            self.events.append((spec.name, "memory"))
            return self._results[key]
        if self.store is not None:
            result = self.store.load(spec, scale)
            if result is not None:
                self.events.append((spec.name, "disk"))
                self._results[key] = result
                return result
        result = run_workload(spec, scale)
        if self.store is not None:
            self.store.save(result)
        self.events.append((spec.name, "train"))
        self._results[key] = result
        return result

    def prefetch(self, workloads, scale: Scale, jobs: int = 1,
                 echo=None):
        """Train (or rehydrate) a batch of workloads up front; with
        ``jobs > 1`` training shards across worker processes through
        the store.  Returns the :class:`~repro.eval.sweep.SweepReport`."""
        from .sweep import run_sweep
        return run_sweep(workloads, scale, store=self.store, jobs=jobs,
                         cache=self, echo=echo)

    def trained(self) -> list[str]:
        """Workload names this session actually trained (cache misses
        on both the memory and disk tiers)."""
        return [name for name, tier in self.events if tier == "train"]

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key) -> bool:
        """Accepts the same (spec, scale) pair that ``get`` takes; true
        when either the memory or the disk tier would hit."""
        spec, scale = key
        if self._key(spec, scale) in self._results:
            return True
        return self.store is not None and self.store.contains(spec, scale)
