"""Workload runner + the session-scoped trained-model cache.

Training is the expensive step of every experiment, so ``WorkloadCache``
memoizes :func:`run_workload` results by (workload, scale) — the
benchmark suite trains each task exactly once per session and every
figure/table reuses the cached model, records and hardware jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import (FineTuneConfig, FinetuneHistory, PruningReport,
                    SurrogateL0Config, evaluate_accuracy,
                    finetune_with_pruning, measure_pruning)
from ..core.pruning import PruningMode
from ..data import batches
from ..optim import Adam, clip_grad_norm
from .workloads import Scale, WorkloadSpec


@dataclass
class WorkloadResult:
    spec: WorkloadSpec
    scale: Scale
    model: object
    controller: object
    history: FinetuneHistory
    pruning_report: PruningReport
    baseline_metric: float
    pruned_metric: float

    _hw_jobs: list | None = field(default=None, repr=False)

    @property
    def metric_name(self) -> str:
        return self.spec.metric

    @property
    def records(self) -> list:
        return self.pruning_report.records

    @property
    def pruning_rate(self) -> float:
        return self.pruning_report.overall_rate

    @property
    def metric_delta(self) -> float:
        """Degradation, positive = worse (sign-aware per metric)."""
        if self.spec.metric == "perplexity":
            return self.pruned_metric - self.baseline_metric
        return self.baseline_metric - self.pruned_metric

    def hw_jobs(self) -> list:
        if self._hw_jobs is None:
            from ..hw.workload import jobs_from_records
            self._hw_jobs = jobs_from_records(self.records)
        return self._hw_jobs


def run_workload(spec: WorkloadSpec, scale: Scale,
                 track_epochs: bool = False) -> WorkloadResult:
    """Pretrain, measure the no-pruning baseline, run pruning-aware
    fine-tuning, then measure the deployed (HARD) metric and pruning."""
    del track_epochs  # epoch history is always tracked
    data = spec.make_data(scale)
    model = spec.make_model(data)
    rng = np.random.default_rng(np.random.SeedSequence([spec.seed, 101]))

    pretrain_epochs = max(1, round(
        scale.pretrain_epochs * spec.pretrain_epoch_factor))
    optimizer = Adam(model.parameters(), lr=spec.pretrain_lr)
    model.train()
    for _ in range(pretrain_epochs):
        for batch in batches(data.train, scale.batch_size, rng=rng,
                             shuffle=True):
            loss = model.loss(batch)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(optimizer.all_params(), 1.0)
            optimizer.step()

    baseline_metric = evaluate_accuracy(
        model, None, batches(data.test, scale.batch_size))

    controller = model.make_controller(
        l0_config=SurrogateL0Config(weight=spec.l0_weight))
    finetune_epochs = max(1, round(
        scale.finetune_epochs * spec.finetune_epoch_factor))
    history = finetune_with_pruning(
        model, controller,
        lambda: batches(data.train, scale.batch_size, rng=rng,
                        shuffle=True),
        FineTuneConfig(epochs=finetune_epochs, weight_lr=spec.weight_lr,
                       threshold_lr=spec.threshold_lr))

    pruned_metric = evaluate_accuracy(
        model, controller, batches(data.test, scale.batch_size),
        PruningMode.HARD)
    report = measure_pruning(
        model, controller, batches(data.test, scale.batch_size),
        keep_records=True, record_qk=True, max_records=scale.max_records)

    return WorkloadResult(
        spec=spec, scale=scale, model=model, controller=controller,
        history=history, pruning_report=report,
        baseline_metric=baseline_metric, pruned_metric=pruned_metric)


class WorkloadCache:
    """Session-scoped memo of trained workloads keyed by (name, scale)."""

    def __init__(self):
        self._results: dict[tuple[str, str], WorkloadResult] = {}

    def get(self, spec: WorkloadSpec, scale: Scale) -> WorkloadResult:
        key = (spec.name, scale.name)
        if key not in self._results:
            self._results[key] = run_workload(spec, scale)
        return self._results[key]

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key) -> bool:
        """Accepts the same (spec, scale) pair that ``get`` takes."""
        spec, scale = key
        return (spec.name, scale.name) in self._results
