"""On-disk trained-model store: the persistence tier of the eval stack.

A :class:`WorkloadStore` keeps one directory per trained workload,
keyed by ``(workload name, scale, seed)`` with the spec-hyperparameter
hash recorded inside the entry.  Each entry holds everything needed to
rehydrate a full :class:`~repro.eval.runner.WorkloadResult` without
retraining:

``entry.json``
    key fields, spec hash, metrics, fine-tune history, per-layer
    pruning counters and per-record scalar metadata.
``weights.npz`` / ``engine.json``
    the deployed model, written via
    :meth:`~repro.core.engine.PrunedInferenceEngine.save` so
    :meth:`~repro.core.engine.PrunedInferenceEngine.from_directory`
    rebuilds model + controller from metadata alone.
``records.npz``
    captured attention records (scores, pruned masks, Q/K activations)
    that the hardware simulators turn into tile jobs.

Writers publish atomically (write to a ``.tmp-<pid>`` sibling, then
rename), so parallel sweep workers and a scanning parent never observe
a half-written entry.  Loading an entry whose spec hash or scale fields
no longer match the live spec deletes it — a stale model is worse than
a cache miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import asdict, dataclass

import numpy as np

from ..core import (EpochStats, FinetuneHistory, PruningReport,
                    PrunedInferenceEngine)
from ..models import AttentionRecord
from .runner import WorkloadResult
from .workloads import (QUICK, TINY, Scale, WORKLOADS, WorkloadSpec,
                        spec_hash)

FORMAT_VERSION = 1


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass(frozen=True)
class VerifyOutcome:
    """One entry's integrity verdict (``WorkloadStore.verify``)."""

    key: str
    status: str        # "ok" | "corrupt" | "stale" | "unknown" |
                       # "unhashed" | "unreadable"
    detail: str = ""

    @property
    def damaged(self) -> bool:
        """True for entries that cannot be trusted *and* would not
        self-heal on the next sweep (stale entries retrain silently;
        corrupt/unreadable ones need the operator)."""
        return self.status in ("corrupt", "unreadable")


class WorkloadStore:
    """Directory of trained workloads, shared by sweep workers.

    ``registry`` (a :class:`~repro.obs.MetricsRegistry`) opts into
    cache observability: every save / load hit / load miss /
    invalidate / evict publishes into
    ``repro_store_events_total{event=...}``."""

    _STORE_EVENTS = ("save", "hit", "miss", "invalidate", "evict")

    def __init__(self, root: str, registry=None):
        from ..obs.metrics import as_registry

        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        registry = as_registry(registry)
        self._m_events = {
            event: registry.counter(
                "repro_store_events_total",
                "workload-store cache events by outcome", event=event)
            for event in self._STORE_EVENTS}

    # -- keys -----------------------------------------------------------
    @staticmethod
    def key(spec: WorkloadSpec, scale: Scale) -> str:
        return (f"{spec.name.replace('/', '__')}"
                f"__{scale.name}__seed{spec.seed}")

    def entry_dir(self, spec: WorkloadSpec, scale: Scale) -> str:
        return os.path.join(self.root, self.key(spec, scale))

    # -- queries --------------------------------------------------------
    def _read_entry(self, directory: str) -> dict | None:
        path = os.path.join(directory, "entry.json")
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def _fresh(self, entry: dict | None, spec: WorkloadSpec,
               scale: Scale) -> bool:
        return (entry is not None
                and entry.get("format_version") == FORMAT_VERSION
                and entry.get("spec_hash") == spec_hash(spec)
                and entry.get("scale") == asdict(scale))

    def contains(self, spec: WorkloadSpec, scale: Scale) -> bool:
        """True when a *fresh* entry exists (hash + scale both match)."""
        directory = self.entry_dir(spec, scale)
        return self._fresh(self._read_entry(directory), spec, scale)

    @staticmethod
    def _is_staging(name: str) -> bool:
        """Unpublished ``<key>.tmp-<pid>`` leftovers from a killed
        writer; never surface them as real entries."""
        return ".tmp-" in name

    def entries(self) -> list[dict]:
        """entry.json of every published entry, sorted by key."""
        found = []
        for name in sorted(os.listdir(self.root)):
            if self._is_staging(name):
                continue
            entry = self._read_entry(os.path.join(self.root, name))
            if entry is not None:
                entry["key"] = name
                found.append(entry)
        return found

    def describe(self) -> str:
        """Human-readable inventory (``python -m repro.eval.sweep
        --cache-dir <dir> --describe``)."""
        entries = self.entries()
        if not entries:
            return f"{self.root}: empty store"
        lines = [f"{self.root}: {len(entries)} trained workload(s)"]
        for entry in entries:
            lines.append(
                f"  {entry['key']}  spec={entry['spec_hash']}  "
                f"{entry.get('metric', '?')}: "
                f"{entry.get('baseline_metric', float('nan')):.4f} -> "
                f"{entry.get('pruned_metric', float('nan')):.4f}  "
                f"pruning={entry.get('pruning_rate', float('nan')):.3f}")
        return "\n".join(lines)

    # -- writes ---------------------------------------------------------
    def save(self, result: WorkloadResult) -> str:
        """Publish a trained result atomically; returns the entry dir."""
        final = self.entry_dir(result.spec, result.scale)
        tmp = f"{final}.tmp-{os.getpid()}"
        if os.path.exists(tmp):
            shutil.rmtree(tmp)
        os.makedirs(tmp)

        PrunedInferenceEngine(result.model, result.controller).save(tmp)

        arrays: dict[str, np.ndarray] = {}
        record_meta = []
        for i, record in enumerate(result.records):
            arrays[f"r{i}_scores"] = record.scores
            arrays[f"r{i}_pruned"] = record.pruned_mask
            if record.valid is not None:
                arrays[f"r{i}_valid"] = record.valid
            if record.queries is not None:
                arrays[f"r{i}_queries"] = record.queries
                arrays[f"r{i}_keys"] = record.keys
            record_meta.append({
                "layer_index": record.layer_index,
                "threshold": record.threshold,
                "has_valid": record.valid is not None,
                "has_qk": record.queries is not None,
            })
        np.savez_compressed(os.path.join(tmp, "records.npz"), **arrays)

        entry = {
            "format_version": FORMAT_VERSION,
            "weights_sha256": _file_sha256(os.path.join(tmp,
                                                        "weights.npz")),
            "workload": result.spec.name,
            "seed": result.spec.seed,
            "spec_hash": spec_hash(result.spec),
            "scale": asdict(result.scale),
            "metric": result.spec.metric,
            "baseline_metric": result.baseline_metric,
            "pruned_metric": result.pruned_metric,
            "pruning_rate": result.pruning_rate,
            "history": [asdict(epoch) for epoch in result.history.epochs],
            "pruned_per_layer":
                result.pruning_report.pruned_per_layer.tolist(),
            "valid_per_layer":
                result.pruning_report.valid_per_layer.tolist(),
            "records": record_meta,
            "saved_at": time.time(),
        }
        with open(os.path.join(tmp, "entry.json"), "w") as fh:
            json.dump(entry, fh, indent=2)
            fh.flush()
            os.fsync(fh.fileno())        # a crash after publish must
                                         # never leave a torn manifest

        # publish: move any previous entry aside atomically, then claim
        # the final name.  Losing the rename race to a concurrent
        # writer is fine — training is deterministic, so the entry that
        # landed first is equivalent; just discard ours.
        if os.path.isdir(final):
            doomed = f"{final}.tmp-{os.getpid()}-old"
            try:
                os.rename(final, doomed)
            except OSError:
                pass
            else:
                shutil.rmtree(doomed, ignore_errors=True)
        try:
            os.replace(tmp, final)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
        self._m_events["save"].inc()
        return final

    def verify(self) -> list[VerifyOutcome]:
        """Integrity-check every published entry without retraining.

        Re-hashes each entry's ``weights.npz`` against the digest
        recorded at save time and checks the entry is still fresh
        against the live workload registry.  Statuses:

        * ``ok`` — hash matches, spec hash current.
        * ``corrupt`` — weights file missing or its bytes changed.
        * ``stale`` — spec hash / format version no longer match the
          registry (the next sweep would retrain it anyway).
        * ``unknown`` — workload name not in the registry.
        * ``unhashed`` — entry predates stored digests; re-save to fix.
        * ``unreadable`` — entry.json missing or unparseable.
        """
        outcomes = []
        for name in sorted(os.listdir(self.root)):
            directory = os.path.join(self.root, name)
            if self._is_staging(name) or not os.path.isdir(directory):
                continue
            entry = self._read_entry(directory)
            if entry is None:
                outcomes.append(VerifyOutcome(
                    name, "unreadable", "entry.json missing or invalid"))
                continue

            expected = entry.get("weights_sha256")
            weights = os.path.join(directory, "weights.npz")
            if not os.path.exists(weights):
                outcomes.append(VerifyOutcome(
                    name, "corrupt", "weights.npz missing"))
                continue
            if expected is None:
                outcomes.append(VerifyOutcome(
                    name, "unhashed",
                    "saved before digests were recorded"))
                continue
            actual = _file_sha256(weights)
            if actual != expected:
                outcomes.append(VerifyOutcome(
                    name, "corrupt",
                    f"weights digest {actual[:12]} != recorded "
                    f"{expected[:12]}"))
                continue

            # partial entries: a torn write (or a crashed writer that
            # somehow published) can leave the manifest missing fields
            # or the record arrays truncated — flag, don't crash
            missing = [key for key in ("history", "records",
                                       "pruned_per_layer",
                                       "valid_per_layer",
                                       "baseline_metric",
                                       "pruned_metric")
                       if key not in entry]
            if missing:
                outcomes.append(VerifyOutcome(
                    name, "corrupt",
                    "partial entry.json: missing "
                    + ", ".join(missing)))
                continue
            records_path = os.path.join(directory, "records.npz")
            try:
                with np.load(records_path) as data:
                    stored = set(data.files)
                wanted = {f"r{i}_scores"
                          for i in range(len(entry["records"]))}
                if not wanted <= stored:
                    raise ValueError(
                        f"{len(wanted - stored)} record array(s) "
                        "missing")
            except Exception as records_error:  # noqa: BLE001
                outcomes.append(VerifyOutcome(
                    name, "corrupt",
                    f"records.npz unreadable or truncated: "
                    f"{records_error}"))
                continue

            workload = entry.get("workload")
            if workload not in WORKLOADS:
                outcomes.append(VerifyOutcome(
                    name, "unknown",
                    f"workload {workload!r} not in the registry"))
                continue
            if entry.get("format_version") != FORMAT_VERSION:
                outcomes.append(VerifyOutcome(
                    name, "stale",
                    f"format v{entry.get('format_version')} != "
                    f"v{FORMAT_VERSION}"))
                continue
            current = spec_hash(WORKLOADS[workload])
            if entry.get("spec_hash") != current:
                outcomes.append(VerifyOutcome(
                    name, "stale",
                    f"spec hash {entry.get('spec_hash')} != live "
                    f"{current} (hyperparameters changed)"))
                continue
            # the same scale-freshness check contains()/load() apply:
            # if the named scale's definition drifted, the next sweep
            # retrains this entry, so report it stale — not ok
            scale_name = (entry.get("scale") or {}).get("name")
            live_scale = {TINY.name: TINY, QUICK.name: QUICK}.get(
                scale_name)
            if (live_scale is not None
                    and not self._fresh(entry, WORKLOADS[workload],
                                        live_scale)):
                outcomes.append(VerifyOutcome(
                    name, "stale",
                    f"scale {scale_name!r} definition changed"))
                continue
            outcomes.append(VerifyOutcome(name, "ok"))
        return outcomes

    # -- size-bounded eviction ------------------------------------------
    def entry_bytes(self, key: str) -> int:
        """On-disk footprint of one published entry."""
        directory = os.path.join(self.root, key)
        total = 0
        for base, _, files in os.walk(directory):
            for name in files:
                try:
                    total += os.path.getsize(os.path.join(base, name))
                except OSError:
                    pass
        return total

    def size_bytes(self) -> int:
        """Total on-disk footprint of every published entry."""
        return sum(self.entry_bytes(entry["key"])
                   for entry in self.entries())

    def evict_lru(self, max_bytes: int,
                  protect: set[str] | None = None) -> list[str]:
        """Evict least-recently-saved entries until the store fits in
        ``max_bytes``.

        ``protect`` names entry keys that must survive whatever the
        budget says (the sweep passes every entry it touched this run,
        so a tight budget can never evict the working set out from
        under the caller that just produced it).  Entries without a
        ``saved_at`` stamp sort oldest.  Returns the evicted keys.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        protect = protect or set()
        entries = self.entries()
        sizes = {e["key"]: self.entry_bytes(e["key"]) for e in entries}
        total = sum(sizes.values())
        evicted: list[str] = []
        for entry in sorted(entries,
                            key=lambda e: e.get("saved_at", 0.0)):
            if total <= max_bytes:
                break
            key = entry["key"]
            if key in protect:
                continue
            shutil.rmtree(os.path.join(self.root, key),
                          ignore_errors=True)
            total -= sizes[key]
            evicted.append(key)
            self._m_events["evict"].inc()
        return evicted

    def invalidate(self, spec: WorkloadSpec, scale: Scale) -> bool:
        """Delete the entry for (spec, scale); True if one existed."""
        directory = self.entry_dir(spec, scale)
        if not os.path.isdir(directory):
            return False
        shutil.rmtree(directory)
        self._m_events["invalidate"].inc()
        return True

    def clear(self) -> int:
        """Wipe every entry (and stale staging leftovers); returns how
        many published entries were removed."""
        removed = 0
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if os.path.isdir(path):
                shutil.rmtree(path)
                if not self._is_staging(name):
                    removed += 1
        return removed

    # -- rehydration ----------------------------------------------------
    def load(self, spec: WorkloadSpec,
             scale: Scale) -> WorkloadResult | None:
        """Rehydrate a stored entry to a full WorkloadResult, or None on
        a miss.  A stale entry (spec hash / scale mismatch) is deleted
        and reported as a miss, so the caller retrains; so is a corrupt
        one (truncated or partially-written files) — a damaged entry
        must read as a cache miss, never crash the sweep mid-parse."""
        directory = self.entry_dir(spec, scale)
        entry = self._read_entry(directory)
        if entry is None:
            self._m_events["miss"].inc()
            return None
        if not self._fresh(entry, spec, scale):
            self.invalidate(spec, scale)
            self._m_events["miss"].inc()
            return None
        try:
            result = self._rehydrate(directory, entry, spec, scale)
        except Exception:                # noqa: BLE001 — corrupt entry
            self.invalidate(spec, scale)
            self._m_events["miss"].inc()
            return None
        self._m_events["hit"].inc()
        return result

    def _rehydrate(self, directory: str, entry: dict,
                   spec: WorkloadSpec, scale: Scale) -> WorkloadResult:
        engine = PrunedInferenceEngine.from_directory(directory)
        history = FinetuneHistory(
            epochs=[EpochStats(**epoch) for epoch in entry["history"]])

        records = []
        with np.load(os.path.join(directory, "records.npz")) as data:
            for i, meta in enumerate(entry["records"]):
                records.append(AttentionRecord(
                    layer_index=meta["layer_index"],
                    scores=data[f"r{i}_scores"],
                    pruned_mask=data[f"r{i}_pruned"],
                    threshold=meta["threshold"],
                    valid=(data[f"r{i}_valid"]
                           if meta["has_valid"] else None),
                    queries=(data[f"r{i}_queries"]
                             if meta["has_qk"] else None),
                    keys=(data[f"r{i}_keys"]
                          if meta["has_qk"] else None),
                ))
        report = PruningReport(
            pruned_per_layer=np.asarray(entry["pruned_per_layer"],
                                        dtype=np.float64),
            valid_per_layer=np.asarray(entry["valid_per_layer"],
                                       dtype=np.float64),
            records=records)

        return WorkloadResult(
            spec=spec, scale=scale,
            model=engine.model, controller=engine.controller,
            history=history, pruning_report=report,
            baseline_metric=entry["baseline_metric"],
            pruned_metric=entry["pruned_metric"])
