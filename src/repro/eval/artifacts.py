"""Experiment/sweep artifact persistence (<name>.json + <name>.txt)."""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass

import numpy as np


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()
                if not k.startswith("_")}
    return repr(value)


def save_experiment(result, directory: str) -> str:
    """Write ``<name>.json`` (data payload) and ``<name>.txt`` (table);
    returns the json path."""
    os.makedirs(directory, exist_ok=True)
    json_path = os.path.join(directory, f"{result.name}.json")
    with open(json_path, "w") as fh:
        json.dump({"name": result.name, "title": result.title,
                   "data": _jsonable(result.data)}, fh, indent=2)
    with open(os.path.join(directory, f"{result.name}.txt"), "w") as fh:
        fh.write(result.table + "\n")
    return json_path


BENCH_ENV = "REPRO_BENCH_DIR"
_BENCH_SCHEMA = 1


def _git_sha() -> str | None:
    """Commit the benchmark ran against: ``GITHUB_SHA`` in CI, a quick
    ``git rev-parse`` locally, None outside any checkout."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        import subprocess
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def bench_provenance() -> dict:
    """Where/how a benchmark ran: enough to judge whether two
    artifacts are comparable before :func:`diff_bench` compares them.
    Recorded automatically on every :func:`record_bench` run."""
    import platform

    from ..hw.backends import resolve_backend_name

    try:
        backend = resolve_backend_name(None)
    except Exception:                    # noqa: BLE001 — env override
        backend = None                   # naming a missing backend
    return {
        "git_sha": _git_sha(),
        "kernel_backend": backend,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


def record_bench(name: str, metrics: dict, context: dict | None = None,
                 directory: str | None = None) -> str | None:
    """Append one benchmark run to a versioned ``BENCH_<name>.json``.

    Benchmarks call this after measuring; recording is opt-in via
    ``directory`` or the ``REPRO_BENCH_DIR`` environment variable (CI
    sets it and uploads the files as artifacts), so local test runs
    stay side-effect free.  Returns the path written, or None when
    recording is off.

    The file holds ``{"schema": 1, "name": ..., "runs": [...]}``; each
    call appends ``{"metrics": ..., "context": ..., "provenance":
    ...}`` — provenance (git SHA, kernel backend, python/numpy
    versions) is stamped automatically so accumulated runs from
    different commits stay tellable apart.  Reruns in one CI job
    accumulate rather than overwrite, and the write is atomic (temp
    file + rename) so a crashed run never leaves a truncated artifact.
    """
    directory = directory or os.environ.get(BENCH_ENV)
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    payload = {"schema": _BENCH_SCHEMA, "name": name, "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if existing.get("schema") == _BENCH_SCHEMA:
                payload = existing
        except (OSError, ValueError):
            pass                     # corrupt artifact: start fresh
    payload["runs"].append({"metrics": _jsonable(metrics),
                            "context": _jsonable(context or {}),
                            "provenance": bench_provenance()})
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2)
    os.replace(tmp, path)
    return path


def load_bench(path: str) -> dict:
    """Read a ``BENCH_<name>.json`` artifact back, validating its
    schema version; the counterpart to :func:`record_bench` for the
    ablation/regression tooling."""
    with open(path) as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema != _BENCH_SCHEMA:
        raise ValueError(f"{path}: unsupported bench schema {schema!r} "
                         f"(expected {_BENCH_SCHEMA})")
    if not isinstance(payload.get("runs"), list):
        raise ValueError(f"{path}: malformed bench artifact (no runs)")
    return payload


def diff_bench(baseline: dict, candidate: dict,
               run: int = -1) -> dict[str, dict]:
    """Compare one run of two bench artifacts metric by metric.

    Returns ``{metric: {"baseline": x, "candidate": y, "delta": y-x,
    "ratio": y/x}}`` over the union of numeric metrics (``delta`` /
    ``ratio`` are None when a side is missing or non-numeric) —
    the building block for A/B ablation reports over CI artifacts.
    ``run`` selects which accumulated run to compare (default: last).
    """
    sides = []
    for payload in (baseline, candidate):
        runs = payload["runs"]
        if not runs:
            raise ValueError(f"bench {payload.get('name')!r} has no runs")
        sides.append(runs[run]["metrics"])
    base, cand = sides
    diff: dict[str, dict] = {}
    for metric in sorted(set(base) | set(cand)):
        a, b = base.get(metric), cand.get(metric)
        numeric = all(isinstance(v, (int, float))
                      and not isinstance(v, bool) for v in (a, b))
        diff[metric] = {
            "baseline": a, "candidate": b,
            "delta": (b - a) if numeric else None,
            "ratio": (b / a) if numeric and a else None,
        }
    return diff


def save_sweep_report(report, directory: str) -> str:
    """Write ``sweep.json`` (per-task status, timings and metrics of a
    :class:`~repro.eval.sweep.SweepReport`); returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "sweep.json")
    with open(path, "w") as fh:
        json.dump({"scale": report.scale, "jobs": report.jobs,
                   "summary": report.summary(),
                   "outcomes": _jsonable(report.outcomes)}, fh, indent=2)
    return path


def _fmt_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return str(value)


def main(argv=None) -> None:
    """``python -m repro.eval.artifacts diff A.json B.json`` — compare
    two ``BENCH_*.json`` artifacts metric by metric (the A/B ablation
    report over CI uploads)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.artifacts",
        description="inspect and compare BENCH_*.json artifacts")
    sub = parser.add_subparsers(dest="command", required=True)
    diff = sub.add_parser("diff", help="metric-by-metric A/B diff of "
                                       "two bench artifacts")
    diff.add_argument("baseline", help="baseline BENCH_*.json")
    diff.add_argument("candidate", help="candidate BENCH_*.json")
    diff.add_argument("--run", type=int, default=-1,
                      help="which accumulated run to compare on each "
                           "side (default: last)")
    args = parser.parse_args(argv)

    try:
        base = load_bench(args.baseline)
        cand = load_bench(args.candidate)
        table = diff_bench(base, cand, run=args.run)
    except (OSError, ValueError, KeyError, IndexError) as error:
        raise SystemExit(f"error: {error}") from None

    for side, payload in (("baseline", base), ("candidate", cand)):
        provenance = payload["runs"][args.run].get("provenance") or {}
        sha = provenance.get("git_sha") or "unknown"
        backend = provenance.get("kernel_backend") or "unknown"
        print(f"# {side}: {payload['name']} @ {str(sha)[:12]} "
              f"(kernel {backend})")
    width = max((len(m) for m in table), default=6)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'delta':>12}  {'ratio':>8}")
    for metric, row in table.items():
        print(f"{metric:<{width}}  {_fmt_cell(row['baseline']):>12}  "
              f"{_fmt_cell(row['candidate']):>12}  "
              f"{_fmt_cell(row['delta']):>12}  "
              f"{_fmt_cell(row['ratio']):>8}")


if __name__ == "__main__":
    main()
