"""Experiment/sweep artifact persistence (<name>.json + <name>.txt)."""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass

import numpy as np


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()
                if not k.startswith("_")}
    return repr(value)


def save_experiment(result, directory: str) -> str:
    """Write ``<name>.json`` (data payload) and ``<name>.txt`` (table);
    returns the json path."""
    os.makedirs(directory, exist_ok=True)
    json_path = os.path.join(directory, f"{result.name}.json")
    with open(json_path, "w") as fh:
        json.dump({"name": result.name, "title": result.title,
                   "data": _jsonable(result.data)}, fh, indent=2)
    with open(os.path.join(directory, f"{result.name}.txt"), "w") as fh:
        fh.write(result.table + "\n")
    return json_path


def save_sweep_report(report, directory: str) -> str:
    """Write ``sweep.json`` (per-task status, timings and metrics of a
    :class:`~repro.eval.sweep.SweepReport`); returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "sweep.json")
    with open(path, "w") as fh:
        json.dump({"scale": report.scale, "jobs": report.jobs,
                   "summary": report.summary(),
                   "outcomes": _jsonable(report.outcomes)}, fh, indent=2)
    return path
