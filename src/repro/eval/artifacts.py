"""Experiment/sweep artifact persistence (<name>.json + <name>.txt)."""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass

import numpy as np


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()
                if not k.startswith("_")}
    return repr(value)


def save_experiment(result, directory: str) -> str:
    """Write ``<name>.json`` (data payload) and ``<name>.txt`` (table);
    returns the json path."""
    os.makedirs(directory, exist_ok=True)
    json_path = os.path.join(directory, f"{result.name}.json")
    with open(json_path, "w") as fh:
        json.dump({"name": result.name, "title": result.title,
                   "data": _jsonable(result.data)}, fh, indent=2)
    with open(os.path.join(directory, f"{result.name}.txt"), "w") as fh:
        fh.write(result.table + "\n")
    return json_path


BENCH_ENV = "REPRO_BENCH_DIR"
_BENCH_SCHEMA = 1


def record_bench(name: str, metrics: dict, context: dict | None = None,
                 directory: str | None = None) -> str | None:
    """Append one benchmark run to a versioned ``BENCH_<name>.json``.

    Benchmarks call this after measuring; recording is opt-in via
    ``directory`` or the ``REPRO_BENCH_DIR`` environment variable (CI
    sets it and uploads the files as artifacts), so local test runs
    stay side-effect free.  Returns the path written, or None when
    recording is off.

    The file holds ``{"schema": 1, "name": ..., "runs": [...]}``; each
    call appends ``{"metrics": ..., "context": ...}`` so reruns in one
    CI job accumulate rather than overwrite.  The write is
    atomic (temp file + rename) so a crashed run never leaves a
    truncated artifact.
    """
    directory = directory or os.environ.get(BENCH_ENV)
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    payload = {"schema": _BENCH_SCHEMA, "name": name, "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if existing.get("schema") == _BENCH_SCHEMA:
                payload = existing
        except (OSError, ValueError):
            pass                     # corrupt artifact: start fresh
    payload["runs"].append({"metrics": _jsonable(metrics),
                            "context": _jsonable(context or {})})
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2)
    os.replace(tmp, path)
    return path


def load_bench(path: str) -> dict:
    """Read a ``BENCH_<name>.json`` artifact back, validating its
    schema version; the counterpart to :func:`record_bench` for the
    ablation/regression tooling."""
    with open(path) as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema != _BENCH_SCHEMA:
        raise ValueError(f"{path}: unsupported bench schema {schema!r} "
                         f"(expected {_BENCH_SCHEMA})")
    if not isinstance(payload.get("runs"), list):
        raise ValueError(f"{path}: malformed bench artifact (no runs)")
    return payload


def diff_bench(baseline: dict, candidate: dict,
               run: int = -1) -> dict[str, dict]:
    """Compare one run of two bench artifacts metric by metric.

    Returns ``{metric: {"baseline": x, "candidate": y, "delta": y-x,
    "ratio": y/x}}`` over the union of numeric metrics (``delta`` /
    ``ratio`` are None when a side is missing or non-numeric) —
    the building block for A/B ablation reports over CI artifacts.
    ``run`` selects which accumulated run to compare (default: last).
    """
    sides = []
    for payload in (baseline, candidate):
        runs = payload["runs"]
        if not runs:
            raise ValueError(f"bench {payload.get('name')!r} has no runs")
        sides.append(runs[run]["metrics"])
    base, cand = sides
    diff: dict[str, dict] = {}
    for metric in sorted(set(base) | set(cand)):
        a, b = base.get(metric), cand.get(metric)
        numeric = all(isinstance(v, (int, float))
                      and not isinstance(v, bool) for v in (a, b))
        diff[metric] = {
            "baseline": a, "candidate": b,
            "delta": (b - a) if numeric else None,
            "ratio": (b / a) if numeric and a else None,
        }
    return diff


def save_sweep_report(report, directory: str) -> str:
    """Write ``sweep.json`` (per-task status, timings and metrics of a
    :class:`~repro.eval.sweep.SweepReport`); returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "sweep.json")
    with open(path, "w") as fh:
        json.dump({"scale": report.scale, "jobs": report.jobs,
                   "summary": report.summary(),
                   "outcomes": _jsonable(report.outcomes)}, fh, indent=2)
    return path
