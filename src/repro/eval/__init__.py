"""Workload registry, cached runner, experiments, reporting, artifacts."""

from . import experiments, reporting
from .artifacts import save_experiment
from .runner import WorkloadCache, WorkloadResult, run_workload
from .workloads import (QUICK, TINY, Scale, WorkloadSpec, get_workload,
                        list_workloads)

__all__ = ["experiments", "reporting", "save_experiment", "WorkloadCache",
           "WorkloadResult", "run_workload", "QUICK", "TINY", "Scale",
           "WorkloadSpec", "get_workload", "list_workloads"]
