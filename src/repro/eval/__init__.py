"""Workload registry, cached runner, on-disk store, sharded sweep,
experiments, reporting, artifacts."""

from . import experiments, reporting
from .artifacts import (diff_bench, load_bench, record_bench,
                        save_experiment, save_sweep_report)
from .runner import WorkloadCache, WorkloadResult, run_workload
from .store import WorkloadStore
from .workloads import (QUICK, TINY, Scale, WorkloadSpec, get_workload,
                        list_workloads, spec_hash)

__all__ = ["experiments", "reporting", "record_bench", "load_bench",
           "diff_bench", "save_experiment",
           "save_sweep_report", "WorkloadCache", "WorkloadResult",
           "run_workload", "WorkloadStore", "SweepReport", "TaskOutcome",
           "run_sweep", "QUICK", "TINY", "Scale", "WorkloadSpec",
           "get_workload", "list_workloads", "spec_hash"]

_SWEEP_EXPORTS = {"SweepReport", "TaskOutcome", "run_sweep"}


def __getattr__(name):
    # lazy so `python -m repro.eval.sweep` doesn't double-import the
    # sweep module (sys.modules RuntimeWarning)
    if name in _SWEEP_EXPORTS:
        from . import sweep
        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
