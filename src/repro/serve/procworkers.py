"""True multi-process serving: one engine replica per OS process.

``ProcessWorkerTier`` presents the exact
:class:`~repro.serve.workers.WorkerTier` surface — ``submit`` /
``open_stream`` / ``step`` / ``flush`` / ``drain`` / ``finish`` /
``cancel`` / ``stats_summary`` — but each replica's
:class:`~repro.serve.engine.ServingEngine` runs in its **own forked
process**, so N workers occupy N cores instead of time-slicing one
GIL.  The parent is a thin router over a length-prefixed binary
message protocol:

    frame     := 4-byte big-endian length | pickle(payload)
    requests  := ("submit", {...}) | ("open_stream", {...})   one-way
                 ("cancel", {...}) -> ("cancelled", bool)
                 ("finish", {...}) -> ("finished", ServeResult | exc)
                 ("step"|"flush", {now, seq}) -> ("stepped", {...})
                 ("shutdown", None) -> ("bye", None)

``step()`` round-trips **once per worker per step**: the parent sends
every live worker its step message first, then reads the replies —
workers compute their scheduler step concurrently while the parent
waits.  A step reply coalesces everything the parent needs — the
completed :class:`~repro.serve.engine.ServeResult` objects, the load
signals used for least-outstanding-tokens routing, the worker's
:class:`~repro.serve.engine.ServingStats`, a metrics snapshot, and a
trace-event delta — so there is no per-request chatter.

**Zero-copy snapshot sharing.**  Every worker rebuilds its
:class:`~repro.core.PrunedInferenceEngine` with
``from_directory(directory, mmap=True)``: the snapshot's weights are
expanded once into an ``.npy`` sidecar and each process maps the same
read-only pages, so N replicas share one physical copy of the model
in the page cache instead of N private heaps.

**Bit-identity.**  Workers pad, batch, and estimate hardware exactly
like a solo engine — outputs, masks, and hardware estimates depend
only on the request, never on the batch, the replica, or the process
boundary — so proc-tier replays are bit-identical per request to solo
reference runs (pinned by ``tests/test_procworkers.py``).

**Fault tolerance.**  Worker death (socket EOF, kill signal, step
timeout) routes through :class:`~repro.serve.health.EngineHealth` as
:meth:`~repro.serve.health.EngineHealth.mark_dead`, and the dead
worker's in-flight requests are resubmitted to the survivors with
their original arrival stamps and deadlines — bit-identity makes the
reroute invisible in the results.  With no survivors the requests
terminate fast with typed ``engine_error`` results, never stall.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import time
from dataclasses import replace

import numpy as np

from ..obs.metrics import as_registry
from ..obs.tracing import as_tracer
from .batcher import BatchPolicy
from .engine import (REASON_ERROR, RequestTiming, ServeResult,
                     ServingEngine, ServingStats)
from .health import EngineHealth, HealthPolicy
from .workers import tier_rollup

__all__ = ["ProcessWorkerTier", "WorkerDied"]

_HEADER = struct.Struct(">I")


class WorkerDied(ConnectionError):
    """The worker process behind a socket is gone (EOF, crash, or
    step timeout); the tier quarantines it and reroutes its work."""


# -- framing ------------------------------------------------------------
def _send(sock: socket.socket, message) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as error:
        raise WorkerDied(f"send failed: {error}") from error


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n > 0:
        try:
            chunk = sock.recv(min(n, 1 << 20))
        except socket.timeout as error:
            raise WorkerDied("reply timed out") from error
        except OSError as error:
            raise WorkerDied(f"recv failed: {error}") from error
        if not chunk:
            raise WorkerDied("socket closed")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv(sock: socket.socket):
    (length,) = _HEADER.unpack(_read_exact(sock, _HEADER.size))
    return pickle.loads(_read_exact(sock, length))


class _SettableClock:
    """Worker-side engine clock slaved to the parent's: every message
    carries the parent clock's ``now`` and the worker pins its clock
    to it before dispatching, so arrival stamps, deadlines, and
    timings live in one shared timebase — and virtual-clock replays
    stay exactly reproducible across the process boundary."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def __call__(self) -> float:
        return self.value


# -- worker process -----------------------------------------------------
def _worker_main(sock: socket.socket, directory: str, index: int,
                 spec: dict) -> None:
    """Worker process entry: build one engine from the shared snapshot,
    then serve protocol messages until shutdown.  Exits hard with
    ``os._exit`` so a forked pytest process never runs the parent's
    teardown machinery."""
    try:
        from ..core import PrunedInferenceEngine
        from ..obs.metrics import MetricsRegistry
        from ..obs.tracing import TraceRecorder

        clock = _SettableClock()
        registry = MetricsRegistry() if spec["metrics"] else None
        tracer = TraceRecorder() if spec["trace"] else None
        core = PrunedInferenceEngine.from_directory(
            directory, mmap=spec["mmap"])
        engine = ServingEngine(core, policy=spec["policy"], clock=clock,
                               slo=spec["slo"], name=f"worker{index}",
                               registry=registry, tracer=tracer,
                               **spec["engine_kwargs"])
        _send(sock, ("ready", {
            "pad_to": engine._pad_to,
            "capacity": engine._capacity,
            "prefill_width": engine._prefill_width,
            "decode": hasattr(engine.engine.model, "decode_step"),
        }))
        idmap: dict[int, int] = {}     # engine id -> tier id
        extra: list = []               # synthesized failure results
        traced = 0                     # trace events already shipped

        def find_inner(tier_id):
            return next((eid for eid, tid in idmap.items()
                         if tid == tier_id), None)

        while True:
            op, payload = _recv(sock)
            if op == "shutdown":
                _send(sock, ("bye", None))
                return
            clock.value = payload["now"]
            if op == "submit":
                tier_id = payload["tier_id"]
                try:
                    eid = engine.submit(
                        payload["inputs"], payload["mask"],
                        now=payload["now"],
                        deadline=payload["deadline"])
                    idmap[eid] = tier_id
                except Exception as error:     # noqa: BLE001 — shipped
                    extra.append((tier_id, ServeResult(
                        request_id=tier_id, kind="classify",
                        logits=np.zeros(0), error=error,
                        reason=REASON_ERROR,
                        timing=RequestTiming(arrival=payload["now"],
                                             finished=payload["now"]))))
            elif op == "open_stream":
                tier_id = payload["tier_id"]
                try:
                    eid = engine.open_stream(
                        payload["prompt"], payload["max_new_tokens"],
                        now=payload["now"],
                        deadline=payload["deadline"])
                    idmap[eid] = tier_id
                except Exception as error:     # noqa: BLE001 — shipped
                    extra.append((tier_id, ServeResult(
                        request_id=tier_id, kind="generate",
                        logits=np.zeros(0), error=error,
                        reason=REASON_ERROR,
                        timing=RequestTiming(arrival=payload["now"],
                                             finished=payload["now"]))))
            elif op == "cancel":
                inner = find_inner(payload["tier_id"])
                _send(sock, ("cancelled",
                             False if inner is None
                             else engine.cancel(inner)))
            elif op == "finish":
                inner = find_inner(payload["tier_id"])
                if inner is None:
                    _send(sock, ("finished", KeyError(
                        f"unknown request {payload['tier_id']}")))
                else:
                    try:
                        result = engine.collect(inner)
                    except Exception as error:  # noqa: BLE001 — shipped
                        _send(sock, ("finished", error))
                    else:
                        idmap.pop(inner, None)
                        result.request_id = payload["tier_id"]
                        _send(sock, ("finished", result))
            elif op in ("step", "flush"):
                if op == "step":
                    done = engine.step(payload["now"])
                else:
                    done = engine.flush()
                completed, extra = extra, []
                for eid in done:
                    tid = idmap.pop(eid, None)
                    if tid is None:
                        continue
                    result = engine.collect(eid)
                    # re-badge into the tier-global id space before
                    # shipping: the parent never sees engine ids
                    result.request_id = tid
                    completed.append((tid, result))
                reply = {
                    "seq": payload["seq"],
                    "completed": completed,
                    "outstanding_tokens": engine.outstanding_tokens(),
                    "kv_slots_in_use": engine.kv_slots_in_use(),
                    "queue_depth": engine.queue_depth(),
                    "has_pending": engine.has_pending(),
                    "next_deadline": engine.next_deadline(),
                    "queue_ready": engine.queue_ready(payload["now"]),
                    "last_step_errors": engine.last_step_errors,
                    "stats": engine.stats,
                }
                if registry is not None:
                    reply["metrics"] = registry.snapshot()
                if tracer is not None:
                    reply["trace"] = tracer.events[traced:]
                    traced = len(tracer.events)
                _send(sock, ("stepped", reply))
            else:
                raise ValueError(f"unknown op {op!r}")
    except (WorkerDied, KeyboardInterrupt):
        os._exit(1)
    except BaseException as error:             # noqa: BLE001 — last words
        try:
            _send(sock, ("fatal", f"{type(error).__name__}: {error}"))
        except Exception:                      # noqa: BLE001
            pass
        os._exit(1)
    finally:
        os._exit(0)


# -- parent tier --------------------------------------------------------
class ProcessWorkerTier:
    """N shared-nothing engine replicas, one OS process each, behind
    the :class:`~repro.serve.workers.WorkerTier` surface."""

    def __init__(self, directory: str, procs: int,
                 policy: BatchPolicy | None = None,
                 clock=time.monotonic, mmap: bool = True,
                 health: HealthPolicy | None = None,
                 step_timeout: float = 60.0,
                 registry=None, tracer=None, **engine_kwargs):
        if procs < 1:
            raise ValueError("procs must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("ProcessWorkerTier needs fork() "
                               "(POSIX only)")
        self._clock = clock
        self._registry = as_registry(registry)
        self._tracer = as_tracer(tracer)
        self._m_deaths = self._registry.counter(
            "repro_proc_worker_deaths_total",
            "worker processes lost (EOF, crash, or step timeout)")
        self._m_rerouted = self._registry.counter(
            "repro_proc_reroutes_total",
            "in-flight requests resubmitted off a dead worker")
        slo = engine_kwargs.pop("slo", None)
        engine_kwargs.pop("name", None)
        self._routes: dict[int, int] = {}      # tier id -> worker index
        self._payloads: dict[int, dict] = {}   # in-flight, for reroute
        self._results: dict[int, ServeResult] = {}
        self._instant: list[int] = []          # minted here, unreported
        self._next_id = 0
        self._seq = 0
        self._est: dict[int, int] = {}         # outstanding-token est.
        self._state: dict[int, dict] = {}      # last step reply
        self._trace_maps: dict[int, dict] = {} # worker pid remap tables
        self._dirty: set[int] = set()          # sends since last step
        self.health = {i: EngineHealth(health) for i in range(procs)}
        self._socks: dict[int, socket.socket] = {}
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        ctx = multiprocessing.get_context("fork")
        try:
            for index in range(procs):
                spec = {
                    "policy": policy,
                    "mmap": mmap,
                    "metrics": self._registry.enabled,
                    "trace": self._tracer.enabled,
                    "engine_kwargs": engine_kwargs,
                    # one SLOAdmission copy per worker, like WorkerTier,
                    # so EWMA refinement stays per-replica
                    "slo": replace(slo) if slo is not None else None,
                }
                parent_sock, child_sock = socket.socketpair()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_sock, directory, index, spec),
                    daemon=True)
                proc.start()
                # close our copy of the child end *now*: once every
                # parent-side dup is gone, a dead worker reads as EOF
                # (and later forks never inherit this worker's end)
                child_sock.close()
                parent_sock.settimeout(step_timeout)
                self._socks[index] = parent_sock
                self._procs[index] = proc
                self._est[index] = 0
            for index in range(procs):
                kind, info = _recv(self._socks[index])
                if kind != "ready":
                    raise RuntimeError(
                        f"worker{index} failed to start: {info}")
                if index == 0:
                    self._pad_to = info["pad_to"]
                    self._capacity = info["capacity"]
                    self._prefill_width = info["prefill_width"]
                    self._decode = info["decode"]
        except BaseException:
            self.close()
            raise

    @classmethod
    def from_snapshot(cls, directory: str, replicas: int,
                      policy: BatchPolicy | None = None,
                      clock=time.monotonic, mmap: bool = True,
                      **engine_kwargs) -> "ProcessWorkerTier":
        """:meth:`WorkerTier.from_snapshot` parity — same signature,
        same semantics, but ``replicas`` worker *processes*."""
        registry = engine_kwargs.pop("registry", None)
        tracer = engine_kwargs.pop("tracer", None)
        return cls(directory, procs=replicas, policy=policy,
                   clock=clock, mmap=mmap, registry=registry,
                   tracer=tracer, **engine_kwargs)

    # -- routing --------------------------------------------------------
    def _live(self) -> list[int]:
        return [i for i in sorted(self._socks)
                if not self.health[i].quarantined]

    def pick_worker(self) -> int:
        """Deterministic least-loaded routing over the live workers:
        fewest estimated outstanding tokens, lowest index breaking
        ties.  The estimate is resynced from every step reply and
        bumped locally per submission, so between steps it tracks the
        in-process tier's live signal exactly (shed-free traces route
        identically)."""
        live = self._live()
        if not live:
            raise WorkerDied("no live workers")
        return min(live, key=lambda i: (self._est[i], i))

    @staticmethod
    def _resolve_deadline(now, deadline, ttl):
        # mirrors ServingEngine._resolve_deadline so validation errors
        # raise synchronously in the caller, not async in a worker
        if deadline is not None and ttl is not None:
            raise ValueError("pass deadline= or ttl=, not both")
        if ttl is not None:
            if ttl <= 0:
                raise ValueError("ttl must be > 0 seconds")
            return now + ttl
        return deadline

    def _track(self, worker: int, payload: dict) -> int:
        tier_id = self._next_id
        self._next_id += 1
        self._payloads[tier_id] = payload
        self._dispatch(worker, tier_id, payload)
        return tier_id

    def _dispatch(self, worker: int, tier_id: int,
                  payload: dict) -> list[int]:
        """Send one submission to ``worker``; on a dead socket the
        failure path reroutes it (and everything else in flight there)
        to the survivors.  Returns any ids terminated by the failure
        handling (no-survivor fast-fails)."""
        self._routes[tier_id] = worker
        message = dict(payload["message"])
        message["tier_id"] = tier_id
        self._est[worker] += payload["tokens"]
        self._dirty.add(worker)
        try:
            _send(self._socks[worker], (payload["op"], message))
        except WorkerDied as error:
            return self._worker_failed(worker, error,
                                       self._clock())
        return []

    def submit(self, inputs: np.ndarray, mask: np.ndarray | None = None,
               now: float | None = None, deadline: float | None = None,
               ttl: float | None = None) -> int:
        inputs = np.asarray(inputs)
        # pre-validate against the handshake so bad requests raise
        # here, synchronously, exactly like the in-process tier
        if inputs.ndim not in (1, 2):
            raise ValueError("submit takes one sequence per request: "
                             f"(L,) or (L, D), got shape {inputs.shape}")
        if not 0 < inputs.shape[0] <= self._pad_to:
            raise ValueError(f"request length {inputs.shape[0]} outside "
                             f"[1, {self._pad_to}]")
        mask = (np.ones(inputs.shape[0], dtype=bool) if mask is None
                else np.asarray(mask, dtype=bool))
        now = self._clock() if now is None else now
        deadline = self._resolve_deadline(now, deadline, ttl)
        return self._track(self.pick_worker(), {
            "op": "submit", "kind": "classify", "arrival": now,
            "deadline": deadline, "tokens": int(inputs.shape[0]),
            "message": {"inputs": inputs, "mask": mask, "now": now,
                        "deadline": deadline},
        })

    def open_stream(self, prompt: np.ndarray, max_new_tokens: int,
                    now: float | None = None,
                    deadline: float | None = None,
                    ttl: float | None = None) -> int:
        if not self._decode:
            raise TypeError("model does not support incremental decode; "
                            "open_stream needs a causal LM")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        limit = min(self._prefill_width, self._capacity - 1)
        if prompt.size == 0 or prompt.size > limit:
            raise ValueError(f"prompt length must be in [1, {limit}]")
        now = self._clock() if now is None else now
        deadline = self._resolve_deadline(now, deadline, ttl)
        return self._track(self.pick_worker(), {
            "op": "open_stream", "kind": "generate", "arrival": now,
            "deadline": deadline,
            "tokens": int(prompt.size) + int(max_new_tokens),
            "message": {"prompt": prompt,
                        "max_new_tokens": max_new_tokens,
                        "now": now, "deadline": deadline},
        })

    # -- worker failure -------------------------------------------------
    def _worker_failed(self, index: int, error: Exception,
                       now: float) -> list[int]:
        """A worker is gone: open its breaker, reap the process, and
        resubmit its in-flight requests to the survivors (original
        arrival stamps and deadlines — bit-identity makes the reroute
        invisible).  With no survivors the orphans terminate *now*
        with typed ``engine_error`` results.  Returns ids terminated
        here."""
        if self.health[index].quarantined:
            return []
        self.health[index].mark_dead(now, error)
        self._m_deaths.inc()
        sock = self._socks.pop(index, None)
        if sock is not None:
            sock.close()
        proc = self._procs.get(index)
        if proc is not None:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        self._est.pop(index, None)
        self._dirty.discard(index)
        orphans = sorted(tid for tid, w in self._routes.items()
                         if w == index)
        completed: list[int] = []
        for tier_id in orphans:
            del self._routes[tier_id]
            payload = self._payloads.get(tier_id)
            if payload is None:
                continue
            live = self._live()
            if not live:
                del self._payloads[tier_id]
                self._results[tier_id] = ServeResult(
                    request_id=tier_id, kind=payload["kind"],
                    logits=np.zeros(0),
                    error=WorkerDied(
                        f"worker{index} died with no survivors: "
                        f"{error}"),
                    reason=REASON_ERROR,
                    timing=RequestTiming(arrival=payload["arrival"],
                                         finished=now))
                completed.append(tier_id)
                continue
            self._m_rerouted.inc()
            target = min(live, key=lambda i: (self._est[i], i))
            completed += self._dispatch(target, tier_id, payload)
        return completed

    # -- advancing ------------------------------------------------------
    def _round_trip(self, op: str, now: float) -> list[int]:
        """One ``step``/``flush`` fan-out: send every live worker its
        message first, then read the replies — the workers overlap
        their scheduler steps while the parent waits.  Returns tier
        ids completed this round (worker order, deterministic)."""
        self._seq += 1
        pending, self._instant = self._instant, []
        # ids finished by the caller before we reported them drop out,
        # exactly like WorkerTier's _completed_ids route filter
        completed = [tid for tid in pending if tid in self._results]
        message = (op, {"now": now, "seq": self._seq})
        sent = []
        for index in self._live():
            try:
                _send(self._socks[index], message)
            except WorkerDied as error:
                completed += self._worker_failed(index, error, now)
            else:
                sent.append(index)
        for index in sent:
            if self.health[index].quarantined:
                continue               # died while serving another reply
            try:
                kind, reply = _recv(self._socks[index])
                if kind == "fatal":
                    raise WorkerDied(f"worker{index}: {reply}")
                if kind != "stepped" or reply["seq"] != self._seq:
                    raise WorkerDied(
                        f"worker{index}: protocol desync ({kind!r})")
            except WorkerDied as error:
                completed += self._worker_failed(index, error, now)
                continue
            for tier_id, result in reply["completed"]:
                self._results[tier_id] = result
                self._routes.pop(tier_id, None)
                self._payloads.pop(tier_id, None)
                completed.append(tier_id)
            self._est[index] = reply["outstanding_tokens"]
            self._state[index] = reply
            self._dirty.discard(index)
            if self._registry.enabled and "metrics" in reply:
                self._registry.merge_snapshot(reply["metrics"])
            if self._tracer.enabled and "trace" in reply:
                self._trace_maps[index] = self._tracer.merge_events(
                    reply["trace"], self._trace_maps.get(index))
        return completed

    def step(self, now: float | None = None) -> list[int]:
        now = self._clock() if now is None else now
        return self._round_trip("step", now)

    def flush(self) -> list[int]:
        return self._round_trip("flush", self._clock())

    def drain(self) -> list[int]:
        completed = self.flush()
        while self.has_pending():
            completed += self.step()
        return completed

    # -- queue introspection (same surface as WorkerTier) ---------------
    def next_deadline(self) -> float | None:
        deadlines = [p["deadline"] for p in self._payloads.values()
                     if p["deadline"] is not None]
        return min(deadlines) if deadlines else None

    def queue_ready(self, now: float) -> bool:
        # conservative: new submissions since the last reply may be
        # due, else trust each worker's last self-report
        return bool(self._dirty) or any(
            self._state.get(i, {}).get("queue_ready", False)
            for i in self._live())

    def has_pending(self) -> bool:
        return bool(self._payloads) or bool(self._instant)

    def kv_slots_in_use(self) -> int:
        return sum(self._state.get(i, {}).get("kv_slots_in_use", 0)
                   for i in self._live())

    def outstanding_tokens(self) -> int:
        return sum(self._est[i] for i in self._live())

    def queue_depth(self) -> int:
        return sum(self._state.get(i, {}).get("queue_depth", 0)
                   for i in self._live())

    # -- completion -----------------------------------------------------
    def cancel(self, request_id: int) -> bool:
        if request_id in self._results:
            return False
        worker = self._routes.get(request_id)
        if worker is None:
            raise KeyError(f"unknown request {request_id}")
        try:
            _send(self._socks[worker],
                  ("cancel", {"tier_id": request_id,
                              "now": self._clock()}))
            kind, ok = _recv(self._socks[worker])
            if kind != "cancelled":
                raise WorkerDied(f"worker{worker}: protocol desync")
        except WorkerDied as error:
            self._instant += self._worker_failed(worker, error,
                                                 self._clock())
            return self.cancel(request_id)   # follow the reroute
        return ok

    def result(self, request_id: int) -> ServeResult | None:
        return self._results.get(request_id)

    def finish(self, request_id: int) -> ServeResult:
        if request_id in self._results:
            result = self._results.pop(request_id)
            self._routes.pop(request_id, None)
            self._payloads.pop(request_id, None)
            if result.error is not None:
                raise result.error
            return result
        worker = self._routes.get(request_id)
        if worker is None:
            raise KeyError(f"unknown request {request_id}")
        try:
            _send(self._socks[worker],
                  ("finish", {"tier_id": request_id,
                              "now": self._clock()}))
            kind, reply = _recv(self._socks[worker])
            if kind != "finished":
                raise WorkerDied(f"worker{worker}: protocol desync")
        except WorkerDied as error:
            self._instant += self._worker_failed(worker, error,
                                                 self._clock())
            return self.finish(request_id)   # follow the reroute
        self._routes.pop(request_id, None)
        self._payloads.pop(request_id, None)
        if isinstance(reply, Exception):
            raise reply
        if reply.error is not None:
            raise reply.error
        return reply

    # -- observability --------------------------------------------------
    @property
    def workers(self) -> list[int]:
        """Live worker indexes (surface parity helper for ``len``)."""
        return self._live()

    @property
    def stats(self) -> dict[str, ServingStats]:
        """Last :class:`ServingStats` each worker shipped (empty stats
        before its first step reply; dead workers keep their last)."""
        return {f"worker{i}": self._state.get(i, {}).get(
                    "stats", ServingStats())
                for i in sorted(self.health)}

    def stats_summary(self) -> dict[str, dict]:
        """Same rollup shape as :meth:`WorkerTier.stats_summary`, from
        each worker's last step reply; a dead worker keeps its last
        reported numbers under ``health: "quarantined"``."""
        rows = {}
        for index in sorted(self.health):
            state = self._state.get(index, {})
            stats = state.get("stats", ServingStats())
            if self.health[index].quarantined:
                health = "quarantined"
            else:
                health = "erroring" if stats.errors else "ok"
            rows[f"worker{index}"] = {
                "health": health,
                "completed": stats.completed,
                "reasons": dict(stats.reasons),
                "shed": stats.shed,
                "errors": stats.errors,
                "retries": stats.retries,
                "preemptions": stats.preemptions,
                "outstanding_tokens": state.get("outstanding_tokens", 0),
                "kv_slots_in_use": state.get("kv_slots_in_use", 0),
                "queue_depth": state.get("queue_depth", 0),
            }
        return tier_rollup(rows)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down cleanly (best-effort ``shutdown`` /
        ``bye`` round-trip, then join; a worker that won't exit is
        killed).  Idempotent."""
        for index in sorted(self._socks):
            sock = self._socks[index]
            try:
                _send(sock, ("shutdown", None))
                _recv(sock)
            except Exception:                  # noqa: BLE001
                pass
            sock.close()
        self._socks.clear()
        for proc in self._procs.values():
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        self._procs.clear()

    def __enter__(self) -> "ProcessWorkerTier":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:                      # noqa: BLE001
            pass
