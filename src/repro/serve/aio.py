"""Awaitable front door over the synchronous serving core.

Concurrent clients ``await submit(...)``; a single runner task watches
the arrival queue and steps the core engine whenever a batch fills or
the oldest request's ``max_wait`` deadline passes — so requests from
independent coroutines coalesce into shared batches.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from .engine import ServeResult, ServingEngine


class AsyncServingEngine:
    """asyncio wrapper: ``async with AsyncServingEngine(core) as s: ...``"""

    def __init__(self, serving: ServingEngine, clock=time.monotonic):
        self._serving = serving
        self._clock = clock
        self._futures: dict[int, asyncio.Future] = {}
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False

    async def __aenter__(self) -> "AsyncServingEngine":
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        for future in self._futures.values():
            if not future.done():
                future.cancel()
        self._futures.clear()

    async def submit(self, inputs: np.ndarray,
                     mask: np.ndarray | None = None) -> ServeResult:
        """Queue one request and wait for its result; requests from
        concurrent tasks are dynamically batched together."""
        if self._task is None:
            raise RuntimeError("engine not started; use 'async with'")
        request_id = self._serving.submit(inputs, mask)
        future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        self._wake.set()
        return await future

    async def _run(self) -> None:
        while not self._closed:
            now = self._clock()
            if self._serving.queue_ready(now):
                self._step(lambda: self._serving.step(now))
                continue
            deadline = self._serving.next_deadline()
            try:
                if deadline is None:
                    await self._wake.wait()
                else:
                    await asyncio.wait_for(self._wake.wait(),
                                           max(deadline - now, 0.0))
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
        # serve whatever is still queued before shutting down
        self._step(self._serving.flush)

    def _step(self, advance) -> None:
        """Advance the core engine; a serve-time error must fail the
        waiting clients, never silently kill the runner task.  Batch
        errors are contained per request by the core, so the blanket
        except only fires on scheduler-level bugs."""
        try:
            completed = advance()
        except Exception as error:       # noqa: BLE001 — fanned out
            for future in self._futures.values():
                if not future.done():
                    future.set_exception(error)
            self._futures.clear()
            return
        for request_id in completed:
            future = self._futures.pop(request_id, None)
            try:
                # always collect, even with no waiting future (client
                # cancelled, or a blanket failure cleared it): finish()
                # releases the engine-side result state
                result = self._serving.finish(request_id)
            except Exception as error:   # noqa: BLE001 — per-request
                if future is not None and not future.done():
                    future.set_exception(error)
                continue
            if future is not None and not future.done():
                future.set_result(result)
