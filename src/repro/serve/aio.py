"""Awaitable front door over the synchronous serving core.

Concurrent clients ``await submit(...)``; a single runner task watches
the arrival queue and steps the core whenever a batch fills or the
oldest request's ``max_wait`` deadline passes — so requests from
independent coroutines coalesce into shared batches.

The core may be a single :class:`~repro.serve.engine.ServingEngine`,
a :class:`~repro.serve.router.ModelRouter`, or a
:class:`~repro.serve.workers.WorkerTier` — all expose the same
submit/step/finish surface; with a router, ``submit(..., model=...)``
routes each awaiting client to its model, and with a worker tier each
request lands on the least-loaded replica, while every queue is
driven by the one runner task.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from .engine import ServeResult, ServingEngine


class AsyncServingEngine:
    """asyncio wrapper: ``async with AsyncServingEngine(core) as s: ...``

    ``registry`` opts into the Prometheus front door:
    :meth:`serve_metrics` mounts a ``GET /metrics`` endpoint on the
    same event loop (the registry the core engines publish into is
    usually the one passed here, but any registry works)."""

    def __init__(self, serving, clock=time.monotonic, registry=None):
        self._serving = serving
        self._clock = clock
        self._registry = registry
        self._metrics_endpoint = None
        self._futures: dict[int, asyncio.Future] = {}
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False
        self._broken = False

    async def __aenter__(self) -> "AsyncServingEngine":
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def serve_metrics(self, host: str = "127.0.0.1",
                            port: int = 0):
        """Mount the Prometheus-text exposition endpoint next to the
        front door; returns the started
        :class:`~repro.obs.http.MetricsEndpoint` (its ``.port`` is the
        bound port — handy with ``port=0``).  Stopped by
        :meth:`close`."""
        if self._registry is None:
            raise ValueError("AsyncServingEngine needs registry= to "
                             "serve /metrics")
        from ..obs.http import MetricsEndpoint
        self._metrics_endpoint = MetricsEndpoint(self._registry,
                                                 host=host, port=port)
        await self._metrics_endpoint.start()
        return self._metrics_endpoint

    async def close(self) -> None:
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        if self._metrics_endpoint is not None:
            await self._metrics_endpoint.stop()
            self._metrics_endpoint = None
        for future in self._futures.values():
            if not future.done():
                future.cancel()
        self._futures.clear()

    async def _await_result(self, request_id: int) -> ServeResult:
        """Wait for a request's fan-out; cancelling the awaiting task
        cancels the request inside the core (its queue entries and KV
        state are released, and the terminal result is typed
        ``cancelled``)."""
        future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        self._wake.set()
        try:
            return await future
        except asyncio.CancelledError:
            self._futures.pop(request_id, None)
            try:
                self._serving.cancel(request_id)
            except KeyError:
                pass
            self._wake.set()
            raise

    async def submit(self, inputs: np.ndarray,
                     mask: np.ndarray | None = None,
                     model: str | None = None,
                     deadline: float | None = None,
                     ttl: float | None = None) -> ServeResult:
        """Queue one request and wait for its result; requests from
        concurrent tasks are dynamically batched together.  ``model``
        routes the request when the core is a ``ModelRouter``;
        ``deadline``/``ttl`` bound its lifetime (a missed deadline
        raises ``DeadlineExceeded`` here)."""
        if self._task is None:
            raise RuntimeError("engine not started; use 'async with'")
        kwargs = {"deadline": deadline, "ttl": ttl}
        if model is not None:
            kwargs["model"] = model
        request_id = self._serving.submit(inputs, mask, **kwargs)
        return await self._await_result(request_id)

    async def open_stream(self, prompt: np.ndarray, max_new_tokens: int,
                          model: str | None = None,
                          deadline: float | None = None,
                          ttl: float | None = None) -> ServeResult:
        """Open a generation stream and wait for its full result."""
        if self._task is None:
            raise RuntimeError("engine not started; use 'async with'")
        kwargs = {"deadline": deadline, "ttl": ttl}
        if model is not None:
            kwargs["model"] = model
        request_id = self._serving.open_stream(prompt, max_new_tokens,
                                               **kwargs)
        return await self._await_result(request_id)

    def cancel(self, request_id: int) -> bool:
        """Cancel a pending request by id (False if already terminal);
        its awaiting client receives ``RequestCancelled``."""
        cancelled = self._serving.cancel(request_id)
        if self._wake is not None:
            self._wake.set()
        return cancelled

    def _stream_pending(self) -> bool:
        if self._broken:
            # a scheduler-level failure already failed every waiting
            # client; stepping the same broken streams again would
            # spin (or hang close()) forever
            return False
        serving = self._serving
        engines = (serving.engines.values()
                   if hasattr(serving, "engines") else [serving])
        return any(not s.done for engine in engines
                   for s in engine._streams.values())

    async def _run(self) -> None:
        while not self._closed:
            now = self._clock()
            if self._serving.queue_ready(now) or self._stream_pending():
                self._step(lambda: self._serving.step(now))
                # a decode/prefill step is real work; yield so clients
                # can enqueue between steps instead of blocking the loop
                await asyncio.sleep(0)
                continue
            deadline = self._serving.next_deadline()
            try:
                if deadline is None:
                    await self._wake.wait()
                else:
                    await asyncio.wait_for(self._wake.wait(),
                                           max(deadline - now, 0.0))
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
        # serve whatever is still queued before shutting down
        self._step(self._serving.flush)
        while self._stream_pending():
            self._step(self._serving.step)

    def _step(self, advance) -> None:
        """Advance the core engine; a serve-time error must fail the
        waiting clients, never silently kill the runner task.  Batch
        errors are contained per request by the core, so the blanket
        except only fires on scheduler-level bugs."""
        try:
            completed = advance()
        except Exception as error:       # noqa: BLE001 — fanned out
            # stream errors are not contained per request the way
            # classify batch errors are, so a failure here may leave
            # live streams that can never finish — stop stepping them
            if self._stream_pending():
                self._broken = True
            for future in self._futures.values():
                if not future.done():
                    future.set_exception(error)
            self._futures.clear()
            return
        for request_id in completed:
            future = self._futures.pop(request_id, None)
            try:
                # always collect, even with no waiting future (client
                # cancelled, or a blanket failure cleared it): finish()
                # releases the engine-side result state
                result = self._serving.finish(request_id)
            except Exception as error:   # noqa: BLE001 — per-request
                if future is not None and not future.done():
                    future.set_exception(error)
                continue
            if future is not None and not future.done():
                future.set_result(result)
