"""Continuous-batching step planner: admission, eviction, preemption.

The round-based scheduler prefills every waiting stream immediately and
decodes *all* live streams each step in ``max_batch_size`` chunks — so
mixed arrival traffic pays many partially-filled forwards (the
remainder chunk) exactly when queue pressure is highest.  The
:class:`StepPlanner` replaces those rounds with vLLM-style continuous
batching over a fixed pool of decode slots:

* finished streams release their slot in place (no barrier);
* waiting streams are admitted straight into free slots — at most
  ``free`` per step, so prefill work is *chunked* across steps and
  piggybacks alongside the running streams' decode tokens instead of
  stalling them;
* when the waiting queue exceeds the pressure threshold, the
  longest-running streams (largest ``steps_since_admit``) are
  preempted to swappable per-stream KV state and re-enter the back of
  the waiting queue, so fresh arrivals cannot be starved by
  long-running residents.

The planner is pure bookkeeping — it never touches model state — which
keeps every scheduling decision deterministic and testable, and keeps
the bit-exactness argument local to the KV buffer: whatever plan is
chosen, each stream's kernel shapes depend only on its own request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .streams import StreamState


@dataclass(frozen=True)
class SchedulerConfig:
    """Continuous-scheduler knobs (`--continuous` / `--preempt-after`).

    ``max_slots``: decode slots (the running-set size; defaults to the
    batch policy's ``max_batch_size``).
    ``preempt_after``: decode steps a stream may run while the queue is
    pressured before it is swapped out; ``None`` disables preemption.
    ``pressure``: how many streams must be waiting (beyond the free
    slots that would absorb them) before preemption kicks in.
    """

    max_slots: int
    preempt_after: int | None = None
    pressure: int = 1

    def __post_init__(self):
        if self.max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if self.preempt_after is not None and self.preempt_after < 1:
            raise ValueError("preempt_after must be >= 1 (or None)")
        if self.pressure < 1:
            raise ValueError("pressure must be >= 1")


@dataclass
class StepPlan:
    """One step's scheduling decisions, in execution order."""

    preempt: list[StreamState] = field(default_factory=list)
    admit_slots: int = 0                 # waiting streams to pull in
    budget: int = 0                      # decode rows allowed this step

    @property
    def idle(self) -> bool:
        return not self.preempt and self.admit_slots == 0


class StepPlanner:
    """Plans one scheduler step from queue state alone."""

    def __init__(self, config: SchedulerConfig):
        self.config = config

    def plan(self, running: list[StreamState], waiting: int,
             budget: int | None = None) -> StepPlan:
        """Decide preemptions and admissions for this step.

        ``running``: streams currently holding slots; ``waiting``: how
        many streams sit in the admission queue; ``budget``: slots this
        step may use (a router sharing its step budget across engines
        passes a smaller number; default: ``max_slots``).
        """
        slots = self.config.max_slots
        if budget is not None:
            slots = max(1, min(slots, budget))
        plan = StepPlan(budget=slots)

        # forced preemption: the budget shrank below the running set
        # (router rebalancing) — swap out the longest-running overflow
        overflow = len(running) - slots
        victims: list[StreamState] = []
        if overflow > 0:
            victims = self._longest_running(running, overflow)

        free = slots - (len(running) - len(victims))
        # pressure preemption: waiting streams beyond what free slots
        # absorb evict residents that have held a slot long enough
        pressured = waiting - max(free, 0)
        if (self.config.preempt_after is not None
                and pressured >= self.config.pressure):
            eligible = [s for s in running if s not in victims
                        and s.steps_since_admit
                        >= self.config.preempt_after]
            extra = self._longest_running(eligible,
                                          min(pressured, len(eligible)))
            victims += extra
            free += len(extra)

        plan.preempt = victims
        plan.admit_slots = max(0, min(free, waiting))
        return plan

    @staticmethod
    def _longest_running(streams: list[StreamState],
                         count: int) -> list[StreamState]:
        """The ``count`` longest-running streams (most decode steps
        since admission; stream id breaks ties deterministically)."""
        ranked = sorted(streams,
                        key=lambda s: (-s.steps_since_admit, s.stream_id))
        return ranked[:count]
