"""Continuous-batching step planner: admission, eviction, preemption.

The round-based scheduler prefills every waiting stream immediately and
decodes *all* live streams each step in ``max_batch_size`` chunks — so
mixed arrival traffic pays many partially-filled forwards (the
remainder chunk) exactly when queue pressure is highest.  The
:class:`StepPlanner` replaces those rounds with vLLM-style continuous
batching over a fixed pool of decode slots:

* finished streams release their slot in place (no barrier);
* waiting streams are admitted straight into free slots — at most
  ``free`` per step, so prefill work is *chunked* across steps and
  piggybacks alongside the running streams' decode tokens instead of
  stalling them;
* when the waiting queue exceeds the pressure threshold, the
  longest-running streams (largest ``steps_since_admit``) are
  preempted to swappable per-stream KV state and re-enter the back of
  the waiting queue, so fresh arrivals cannot be starved by
  long-running residents.

The planner is pure bookkeeping — it never touches model state — which
keeps every scheduling decision deterministic and testable, and keeps
the bit-exactness argument local to the KV buffer: whatever plan is
chosen, each stream's kernel shapes depend only on its own request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import COUNT_BUCKETS, NULL_METRIC, as_registry
from .streams import StreamState


@dataclass(frozen=True)
class SchedulerConfig:
    """Continuous-scheduler knobs (`--continuous` / `--preempt-after`).

    ``max_slots``: decode slots (the running-set size; defaults to the
    batch policy's ``max_batch_size``).
    ``preempt_after``: decode steps a stream may run while the queue is
    pressured before it is swapped out; ``None`` disables preemption.
    ``pressure``: how many streams must be waiting (beyond the free
    slots that would absorb them) before preemption kicks in.
    ``step_token_budget``: vLLM-style per-step token budget.  Every
    surviving resident costs one decode token, and an admitted *fresh*
    stream additionally charges its whole prompt (the chunked-prefill
    work piggybacked into the step), so admissions are throttled by the
    tokens a step will actually push through the model — not just by
    free decode slots.  ``None`` keeps the slots-only discipline.
    """

    max_slots: int
    preempt_after: int | None = None
    pressure: int = 1
    step_token_budget: int | None = None

    def __post_init__(self):
        if self.max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if self.preempt_after is not None and self.preempt_after < 1:
            raise ValueError("preempt_after must be >= 1 (or None)")
        if self.pressure < 1:
            raise ValueError("pressure must be >= 1")
        if self.step_token_budget is not None and self.step_token_budget < 1:
            raise ValueError("step_token_budget must be >= 1 (or None)")


@dataclass
class StepPlan:
    """One step's scheduling decisions, in execution order."""

    preempt: list[StreamState] = field(default_factory=list)
    admit_slots: int = 0                 # waiting streams to pull in
    budget: int = 0                      # decode rows allowed this step
    step_tokens: int = 0                 # decode + prefill tokens planned

    @property
    def idle(self) -> bool:
        return not self.preempt and self.admit_slots == 0


class StepPlanner:
    """Plans one scheduler step from queue state alone.

    ``registry``/``labels`` opt into publishing per-plan metrics
    (plans made, planned step tokens, budget-capped admissions); by
    default the planner binds no-op handles and records nothing.
    """

    def __init__(self, config: SchedulerConfig, registry=None,
                 labels: dict | None = None):
        self.config = config
        metrics = as_registry(registry)
        labels = labels or {}
        self._m_plans = metrics.counter(
            "repro_scheduler_plans_total",
            "continuous-scheduler planning passes", **labels)
        self._m_step_tokens = metrics.histogram(
            "repro_scheduler_step_tokens",
            "tokens planned into one step (decode + chunked prefill)",
            buckets=COUNT_BUCKETS, **labels)
        self._m_budget_capped = metrics.counter(
            "repro_scheduler_budget_capped_total",
            "admissions deferred because the step token budget was full",
            **labels)

    def plan(self, running: list[StreamState], waiting: int,
             budget: int | None = None,
             waiting_tokens: list[int] | None = None) -> StepPlan:
        """Decide preemptions and admissions for this step.

        ``running``: streams currently holding slots; ``waiting``: how
        many streams sit in the admission queue; ``budget``: slots this
        step may use (a router sharing its step budget across engines
        passes a smaller number; default: ``max_slots``).
        ``waiting_tokens``: per-stream step cost of the waiting queue's
        head, FIFO order — prompt length + 1 for a fresh stream (its
        chunked prefill rides this step), 1 for a swapped-out resumer.
        Only consulted under a ``step_token_budget``.
        """
        slots = self.config.max_slots
        if budget is not None:
            slots = max(1, min(slots, budget))
        plan = StepPlan(budget=slots)

        # forced preemption: the budget shrank below the running set
        # (router rebalancing) — swap out the longest-running overflow
        overflow = len(running) - slots
        victims: list[StreamState] = []
        if overflow > 0:
            victims = self._longest_running(running, overflow)

        free = slots - (len(running) - len(victims))
        # pressure preemption: waiting streams beyond what free slots
        # absorb evict residents that have held a slot long enough
        pressured = waiting - max(free, 0)
        if (self.config.preempt_after is not None
                and pressured >= self.config.pressure):
            eligible = [s for s in running if s not in victims
                        and s.steps_since_admit
                        >= self.config.preempt_after]
            extra = self._longest_running(eligible,
                                          min(pressured, len(eligible)))
            victims += extra
            free += len(extra)

        plan.preempt = victims
        plan.admit_slots = max(0, min(free, waiting))
        # every surviving resident decodes one token this step
        plan.step_tokens = len(running) - len(victims)
        slot_admits = plan.admit_slots
        plan.admit_slots, admit_tokens = self._token_budget_cap(
            plan.admit_slots, plan.step_tokens, waiting_tokens)
        plan.step_tokens += admit_tokens
        self._m_plans.inc()
        self._m_step_tokens.observe(plan.step_tokens)
        if slot_admits > plan.admit_slots:
            self._m_budget_capped.inc(slot_admits - plan.admit_slots)
        return plan

    def _token_budget_cap(self, admit_slots: int, decode_tokens: int,
                          waiting_tokens: list[int] | None
                          ) -> tuple[int, int]:
        """Shrink the slot-based admission count so the step's total
        token work (resident decode + admitted streams' prefill/decode
        tokens) fits ``step_token_budget``.  Admission is strictly FIFO
        — the first waiting stream that does not fit stops the scan, so
        a long prompt is never starved by later short ones.  When
        nothing is running and nothing fits, one stream is still
        admitted (a prompt longer than the budget must make progress).
        Returns (admissions, their token cost)."""
        budget = self.config.step_token_budget
        if budget is None or waiting_tokens is None or admit_slots == 0:
            return admit_slots, 0
        admitted = used = 0
        for cost in waiting_tokens[:admit_slots]:
            if decode_tokens + used + cost > budget:
                break
            admitted += 1
            used += cost
        if admitted == 0 and decode_tokens == 0 and waiting_tokens:
            # progress floor: an idle engine always takes one stream
            admitted, used = 1, waiting_tokens[0]
        return admitted, used

    @staticmethod
    def _longest_running(streams: list[StreamState],
                         count: int) -> list[StreamState]:
        """The ``count`` longest-running streams (most decode steps
        since admission; stream id breaks ties deterministically)."""
        ranked = sorted(streams,
                        key=lambda s: (-s.steps_since_admit, s.stream_id))
        return ranked[:count]


@dataclass
class SLOAdmission:
    """SLO-aware admission control: shed work whose latency target is
    already unattainable at submission time.

    The model is deliberately simple and deterministic: an engine
    pushes about ``tokens_per_step`` tokens through the model per
    scheduler step, and one step takes ``step_time`` seconds (a fixed
    estimate by default; :meth:`observe_step` lets the serving engine
    refine it with an EWMA over measured step durations).  A new
    request's best-case time-to-first-token is then

        ``(backlog_tokens / tokens_per_step + 1) * step_time``

    — the steps needed to drain the work already queued ahead of it,
    plus the step that serves its own prefill.  If that exceeds
    ``ttft_target`` the request is shed *now* with a typed
    ``shed_overload`` result instead of queueing into a certain SLO
    miss (fail fast keeps the clients that can still be served inside
    their targets).  ``tbt_target`` below the per-step time is
    unattainable for any stream (decode emits one token per step), so
    it sheds streams regardless of load.
    """

    ttft_target: float | None = None   # seconds; None = no TTFT gate
    tbt_target: float | None = None    # seconds; None = no TBT gate
    step_time: float = 1e-3            # estimated seconds per step
    smoothing: float = 0.25            # EWMA weight for observed steps

    # metric handles; no-ops unless bind_metrics() swaps in live ones.
    # Class attributes, not fields, so dataclasses.replace() clones
    # (one SLOAdmission per tier replica) start unbound.
    _m_admitted = NULL_METRIC
    _m_shed = NULL_METRIC
    _m_predicted_ttft = NULL_METRIC

    def bind_metrics(self, registry, labels: dict | None = None) -> None:
        """Publish admission verdicts + predicted TTFT into a registry."""
        labels = labels or {}
        registry = as_registry(registry)
        self._m_admitted = registry.counter(
            "repro_slo_admitted_total",
            "requests the SLO admission gate let through", **labels)
        self._m_shed = registry.counter(
            "repro_slo_shed_total",
            "requests shed because the SLO target was unattainable",
            **labels)
        self._m_predicted_ttft = registry.histogram(
            "repro_slo_predicted_ttft_seconds",
            "predicted TTFT at admission time", **labels)

    def __post_init__(self):
        if self.ttft_target is not None and self.ttft_target <= 0:
            raise ValueError("ttft_target must be > 0 (or None)")
        if self.tbt_target is not None and self.tbt_target <= 0:
            raise ValueError("tbt_target must be > 0 (or None)")
        if self.step_time <= 0:
            raise ValueError("step_time must be > 0")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")

    def observe_step(self, duration: float) -> None:
        """Fold one measured step duration into the estimate (zero
        durations — virtual clocks — leave it untouched, so tests stay
        deterministic)."""
        if duration > 0:
            self.step_time = ((1 - self.smoothing) * self.step_time
                              + self.smoothing * duration)

    def predicted_ttft(self, backlog_tokens: int,
                       tokens_per_step: int) -> float:
        steps = backlog_tokens / max(tokens_per_step, 1)
        return (steps + 1.0) * self.step_time

    def admit(self, backlog_tokens: int, tokens_per_step: int,
              stream: bool = True) -> str | None:
        """None to admit, or a human-readable shed reason when the
        targets are unattainable for work queued behind
        ``backlog_tokens`` tokens."""
        if (stream and self.tbt_target is not None
                and self.step_time > self.tbt_target):
            self._m_shed.inc()
            return (f"TBT SLO {self.tbt_target:.4f}s unattainable: one "
                    f"step takes ~{self.step_time:.4f}s")
        if self.ttft_target is not None:
            predicted = self.predicted_ttft(backlog_tokens,
                                            tokens_per_step)
            self._m_predicted_ttft.observe(predicted)
            if predicted > self.ttft_target:
                self._m_shed.inc()
                return (f"TTFT SLO {self.ttft_target:.4f}s unattainable:"
                        f" ~{predicted:.4f}s predicted behind "
                        f"{backlog_tokens} backlog tokens")
        self._m_admitted.inc()
        return None
