"""Batched serving: async request queue + dynamic batcher with
per-stream KV caches in front of ``PrunedInferenceEngine``."""

from .aio import AsyncServingEngine
from .batcher import BatchPolicy, CoalescedBatch, DynamicBatcher, \
    QueuedRequest, coalesce
from .engine import ServeResult, ServingEngine, ServingStats
from .hardware import HardwareTotals, slice_record
from .streams import StreamState, stack_caches, unstack_caches

__all__ = ["AsyncServingEngine", "BatchPolicy", "CoalescedBatch",
           "DynamicBatcher", "QueuedRequest", "coalesce", "ServeResult",
           "ServingEngine", "ServingStats", "HardwareTotals",
           "slice_record", "StreamState", "stack_caches",
           "unstack_caches"]
