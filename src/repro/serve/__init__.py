"""Batched serving: async request queue + dynamic batcher with
per-stream KV caches in front of ``PrunedInferenceEngine``; stream
scheduling is round-based or continuous (``continuous=True``),
``ModelRouter`` fronts several engines behind one queue discipline
with health-checked routing, ``WorkerTier`` scales one model across
shared-nothing engine replicas (``ProcessWorkerTier`` puts each
replica in its own OS process over a binary socket protocol, sharing
one memory-mapped snapshot), and the reliability layer adds
deadlines/cancellation, typed terminal reason codes, admission
control (token backlog + TTFT/TBT SLO prediction), and deterministic
fault injection (``FaultPlan``).  ``repro.serve.loadgen`` drives it
all with seeded, replayable traces and percentile SLO reports."""

from .aio import AsyncServingEngine
from .batcher import BatchPolicy, CoalescedBatch, DynamicBatcher, \
    LadderOption, QueuedRequest, coalesce
from .engine import (DeadlineExceeded, REASON_CANCELLED, REASON_DEADLINE,
                     REASON_ERROR, REASON_OK, REASON_SHED,
                     RequestCancelled, RequestTiming, ServeResult,
                     ServingEngine, ServingStats, ShedOverload)
from .faults import Fault, FaultPlan, InjectedKernelError
from .hardware import HardwareTotals, slice_record
from .health import EngineHealth, HealthPolicy
from .procworkers import ProcessWorkerTier, WorkerDied
from .router import (EngineQuarantined, ModelRouter, UnknownModelError)
from .scheduler import SchedulerConfig, SLOAdmission, StepPlan, \
    StepPlanner
from .streams import KVSlotBuffer, StreamState, stack_caches, \
    unstack_caches
from .workers import WorkerTier

__all__ = ["AsyncServingEngine", "BatchPolicy", "CoalescedBatch",
           "DynamicBatcher", "LadderOption", "QueuedRequest", "coalesce",
           "ServeResult",
           "ServingEngine", "ServingStats", "HardwareTotals",
           "slice_record", "ModelRouter", "SchedulerConfig", "StepPlan",
           "StepPlanner", "KVSlotBuffer", "StreamState", "stack_caches",
           "unstack_caches",
           # reliability layer
           "DeadlineExceeded", "RequestCancelled", "ShedOverload",
           "REASON_OK", "REASON_DEADLINE", "REASON_CANCELLED",
           "REASON_ERROR", "REASON_SHED",
           "Fault", "FaultPlan", "InjectedKernelError",
           "EngineHealth", "HealthPolicy",
           "EngineQuarantined", "UnknownModelError",
           # load generation & SLOs
           "RequestTiming", "SLOAdmission", "WorkerTier",
           "ProcessWorkerTier", "WorkerDied",
           "TraceSpec", "TraceRequest", "VirtualClock", "replay_trace",
           "LoadReport", "RequestOutcome"]

_LOADGEN_EXPORTS = {"TraceSpec", "TraceRequest", "VirtualClock",
                    "replay_trace", "LoadReport", "RequestOutcome"}


def __getattr__(name):
    # lazy so `python -m repro.serve.loadgen` doesn't double-import the
    # loadgen module (sys.modules RuntimeWarning)
    if name in _LOADGEN_EXPORTS:
        from . import loadgen
        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
