"""Batched serving: async request queue + dynamic batcher with
per-stream KV caches in front of ``PrunedInferenceEngine``; stream
scheduling is round-based or continuous (``continuous=True``), and
``ModelRouter`` fronts several engines behind one queue discipline."""

from .aio import AsyncServingEngine
from .batcher import BatchPolicy, CoalescedBatch, DynamicBatcher, \
    QueuedRequest, coalesce
from .engine import ServeResult, ServingEngine, ServingStats
from .hardware import HardwareTotals, slice_record
from .router import ModelRouter
from .scheduler import SchedulerConfig, StepPlan, StepPlanner
from .streams import KVSlotBuffer, StreamState, stack_caches, \
    unstack_caches

__all__ = ["AsyncServingEngine", "BatchPolicy", "CoalescedBatch",
           "DynamicBatcher", "QueuedRequest", "coalesce", "ServeResult",
           "ServingEngine", "ServingStats", "HardwareTotals",
           "slice_record", "ModelRouter", "SchedulerConfig", "StepPlan",
           "StepPlanner", "KVSlotBuffer", "StreamState", "stack_caches",
           "unstack_caches"]
