"""Batched serving: async request queue + dynamic batcher with
per-stream KV caches in front of ``PrunedInferenceEngine``; stream
scheduling is round-based or continuous (``continuous=True``),
``ModelRouter`` fronts several engines behind one queue discipline
with health-checked routing, and the reliability layer adds
deadlines/cancellation, typed terminal reason codes, admission
control, and deterministic fault injection (``FaultPlan``)."""

from .aio import AsyncServingEngine
from .batcher import BatchPolicy, CoalescedBatch, DynamicBatcher, \
    LadderOption, QueuedRequest, coalesce
from .engine import (DeadlineExceeded, REASON_CANCELLED, REASON_DEADLINE,
                     REASON_ERROR, REASON_OK, REASON_SHED,
                     RequestCancelled, ServeResult, ServingEngine,
                     ServingStats, ShedOverload)
from .faults import Fault, FaultPlan, InjectedKernelError
from .hardware import HardwareTotals, slice_record
from .health import EngineHealth, HealthPolicy
from .router import (EngineQuarantined, ModelRouter, UnknownModelError)
from .scheduler import SchedulerConfig, StepPlan, StepPlanner
from .streams import KVSlotBuffer, StreamState, stack_caches, \
    unstack_caches

__all__ = ["AsyncServingEngine", "BatchPolicy", "CoalescedBatch",
           "DynamicBatcher", "LadderOption", "QueuedRequest", "coalesce",
           "ServeResult",
           "ServingEngine", "ServingStats", "HardwareTotals",
           "slice_record", "ModelRouter", "SchedulerConfig", "StepPlan",
           "StepPlanner", "KVSlotBuffer", "StreamState", "stack_caches",
           "unstack_caches",
           # reliability layer
           "DeadlineExceeded", "RequestCancelled", "ShedOverload",
           "REASON_OK", "REASON_DEADLINE", "REASON_CANCELLED",
           "REASON_ERROR", "REASON_SHED",
           "Fault", "FaultPlan", "InjectedKernelError",
           "EngineHealth", "HealthPolicy",
           "EngineQuarantined", "UnknownModelError"]
