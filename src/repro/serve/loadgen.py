"""Trace-driven load generator and SLO measurement harness.

``python -m repro.serve.loadgen`` — and the ``replay_trace`` helper
the tests drive directly — generates realistic request traffic
against the serving stack and measures what production cares about:
per-request time-to-first-token (TTFT), time-between-tokens (TBT),
end-to-end latency percentiles, and aggregate tokens/second.

Everything is seeded and replayable.  A :class:`TraceSpec` describes
the workload (arrival process, prompt/generation length mix, request
count) and expands to the *same* list of :class:`TraceRequest` every
time — one ``np.random.default_rng(seed)`` with a fixed draw order per
request: (1) inter-arrival gap, (2) request kind, (3) prompt length,
(4) prompt tokens, (5) generation budget.  Two arrival processes:

* ``poisson`` — exponential inter-arrival gaps at ``rate`` req/s;
* ``bursty`` — a two-state Markov-modulated Poisson process (MMPP):
  a calm state at ``rate`` and a burst state at ``burst_rate``, with
  per-arrival switch probabilities ``p_enter``/``p_exit``.  This is
  the millions-of-users traffic shape — long quiet stretches broken
  by arrival storms that overrun any fixed provisioning.

``replay_trace`` feeds a trace into any serving core (a
:class:`~repro.serve.engine.ServingEngine`,
:class:`~repro.serve.workers.WorkerTier`, or
:class:`~repro.serve.router.ModelRouter`) and returns a
:class:`LoadReport`.  Driven with a :class:`VirtualClock` the whole
replay is deterministic — arrivals land at exact trace times and
every latency number replays bit-identically; driven with the wall
clock it measures real throughput for the CI SLO gate
(``--check --max-ttft-p99 ... --min-tok-s ...``), publishing a
``BENCH_serving_slo.json`` artifact via
:func:`~repro.eval.artifacts.record_bench`.

``--procs N`` swaps the in-process tier for a
:class:`~repro.serve.procworkers.ProcessWorkerTier` — one engine
replica per OS process over a shared memory-mapped snapshot — and
``--check --min-proc-speedup X`` gates its wall-clock tok/s against a
same-trace in-process baseline (recorded to
``BENCH_serving_procs.json``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..eval.artifacts import record_bench


@dataclass(eq=False)
class TraceRequest:
    """One request of an expanded trace (identity comparison only —
    ``tokens`` is an array)."""

    index: int
    arrival: float                      # seconds from trace start
    kind: str                           # "generate" | "classify"
    tokens: np.ndarray                  # prompt (generate) or inputs
    max_new_tokens: int = 0             # generate only
    ttl: float | None = None            # optional per-request lifetime


@dataclass(frozen=True)
class TraceSpec:
    """Seeded description of a workload; ``generate()`` expands it to
    the same request list every time.

    ``prompt_tokens`` / ``new_tokens`` are inclusive ``(lo, hi)``
    ranges sampled uniformly per request; ``classify_fraction`` mixes
    one-shot classification requests into the stream traffic (their
    input length is drawn from ``prompt_tokens`` too).  ``ttl`` bounds
    every request's lifetime (seconds from arrival) — useful for
    deadline-pressure traces.
    """

    seed: int = 0
    requests: int = 32
    process: str = "poisson"            # "poisson" | "bursty"
    rate: float = 100.0                 # calm-state arrivals per second
    burst_rate: float = 1000.0          # burst-state arrivals per second
    p_enter: float = 0.1                # calm -> burst per arrival
    p_exit: float = 0.3                 # burst -> calm per arrival
    prompt_tokens: tuple[int, int] = (1, 8)
    new_tokens: tuple[int, int] = (2, 8)
    vocab_size: int = 64
    classify_fraction: float = 0.0
    ttl: float | None = None

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.process not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.process!r}")
        if min(self.rate, self.burst_rate) <= 0:
            raise ValueError("arrival rates must be > 0")
        for name, (lo, hi) in (("prompt_tokens", self.prompt_tokens),
                               ("new_tokens", self.new_tokens)):
            if not 1 <= lo <= hi:
                raise ValueError(f"{name} range must satisfy "
                                 f"1 <= lo <= hi, got ({lo}, {hi})")
        if not 0.0 <= self.classify_fraction <= 1.0:
            raise ValueError("classify_fraction must be in [0, 1]")

    def generate(self) -> list[TraceRequest]:
        """Expand to the request list.  One rng, fixed per-request draw
        order — the replayability contract."""
        rng = np.random.default_rng(self.seed)
        requests: list[TraceRequest] = []
        now = 0.0
        bursting = False
        for index in range(self.requests):
            if self.process == "bursty":
                # state switch is evaluated per arrival (MMPP with
                # per-arrival transitions keeps the draw count fixed)
                flip = rng.random()
                bursting = (flip >= self.p_exit if bursting
                            else flip < self.p_enter)
            rate = self.burst_rate if bursting else self.rate
            now += float(rng.exponential(1.0 / rate))
            kind = ("classify" if rng.random() < self.classify_fraction
                    else "generate")
            length = int(rng.integers(self.prompt_tokens[0],
                                      self.prompt_tokens[1] + 1))
            tokens = rng.integers(0, self.vocab_size, size=length)
            new_tokens = int(rng.integers(self.new_tokens[0],
                                          self.new_tokens[1] + 1))
            requests.append(TraceRequest(
                index=index, arrival=now, kind=kind, tokens=tokens,
                max_new_tokens=(new_tokens if kind == "generate" else 0),
                ttl=self.ttl))
        return requests


class VirtualClock:
    """Injectable deterministic clock: ``clock()`` reads it,
    ``advance`` moves it.  Replays driven by one are bit-identical —
    timings included — run to run."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@dataclass(eq=False)
class RequestOutcome:
    """One trace request's terminal result with its latency marks."""

    request: TraceRequest
    result: object                      # ServeResult

    @property
    def reason(self) -> str:
        return self.result.reason

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def timing(self):
        return self.result.timing

    @property
    def ttft(self) -> float | None:
        timing = self.result.timing
        return None if timing is None else timing.ttft

    @property
    def latency(self) -> float | None:
        timing = self.result.timing
        return None if timing is None else timing.latency

    @property
    def tbts(self) -> tuple[float, ...]:
        timing = self.result.timing
        return () if timing is None else timing.tbts

    @property
    def new_tokens(self) -> int:
        if self.result.tokens is None:
            return 0
        return max(len(self.result.tokens) - len(self.request.tokens), 0)


def _percentile(values: list[float], q: float) -> float | None:
    return float(np.percentile(values, q)) if values else None


@dataclass
class LoadReport:
    """What one trace replay measured."""

    outcomes: list[RequestOutcome]
    duration: float                     # clock seconds, first submit
                                        # to final completion
    steps: int = 0
    reasons: dict = field(default_factory=dict)

    @property
    def ttfts(self) -> list[float]:
        return [o.ttft for o in self.outcomes
                if o.ok and o.ttft is not None]

    @property
    def tbts(self) -> list[float]:
        return [tbt for o in self.outcomes if o.ok for tbt in o.tbts]

    @property
    def latencies(self) -> list[float]:
        return [o.latency for o in self.outcomes
                if o.ok and o.latency is not None]

    @property
    def generated_tokens(self) -> int:
        return sum(o.new_tokens for o in self.outcomes if o.ok)

    @property
    def tok_s(self) -> float:
        return self.generated_tokens / max(self.duration, 1e-12)

    def metrics(self) -> dict:
        """Flat dict for ``record_bench`` / the CI SLO gate."""
        return {
            "requests": len(self.outcomes),
            "completed_ok": sum(1 for o in self.outcomes if o.ok),
            "reasons": dict(self.reasons),
            "duration_s": self.duration,
            "steps": self.steps,
            "generated_tokens": self.generated_tokens,
            "tok_s": self.tok_s,
            "ttft_p50": _percentile(self.ttfts, 50),
            "ttft_p95": _percentile(self.ttfts, 95),
            "ttft_p99": _percentile(self.ttfts, 99),
            "tbt_p50": _percentile(self.tbts, 50),
            "tbt_p99": _percentile(self.tbts, 99),
            "latency_p50": _percentile(self.latencies, 50),
            "latency_p99": _percentile(self.latencies, 99),
        }

    def check(self, max_ttft_p99: float | None = None,
              min_tok_s: float | None = None,
              max_tbt_p99: float | None = None) -> "LoadReport":
        """SLO gate: raise ``SystemExit`` listing every breached
        target (the CI job's failure mode); returns self when clean."""
        metrics = self.metrics()
        failures = []
        if max_ttft_p99 is not None:
            p99 = metrics["ttft_p99"]
            if p99 is None or p99 > max_ttft_p99:
                failures.append(f"ttft_p99 {p99} > {max_ttft_p99}")
        if max_tbt_p99 is not None:
            p99 = metrics["tbt_p99"]
            if p99 is not None and p99 > max_tbt_p99:
                failures.append(f"tbt_p99 {p99} > {max_tbt_p99}")
        if min_tok_s is not None and metrics["tok_s"] < min_tok_s:
            failures.append(f"tok_s {metrics['tok_s']:.1f} < {min_tok_s}")
        if failures:
            raise SystemExit("SLO check failed: " + "; ".join(failures))
        return self


def replay_trace(core, trace, clock=None,
                 virtual_dt: float = 1e-3) -> LoadReport:
    """Feed a trace into a serving core and measure it.

    ``core`` is anything with the engine surface (``ServingEngine``,
    ``WorkerTier``, ``ModelRouter``); ``trace`` a :class:`TraceSpec`
    or an expanded request list.  ``clock=None`` runs on a fresh
    :class:`VirtualClock` advanced ``virtual_dt`` per step (fully
    deterministic — the default for tests); any object with an
    ``advance`` attribute is treated as a virtual clock too, and a
    plain callable (``time.monotonic``) runs the replay in real time.

    Requests are submitted with ``now=`` pinned to their exact trace
    arrival, so arrival timestamps — and everything derived from them
    — never depend on the stepping cadence.
    """
    requests = (trace.generate() if isinstance(trace, TraceSpec)
                else list(trace))
    if clock is None:
        clock = VirtualClock()
    virtual = hasattr(clock, "advance")
    start = clock()
    in_flight: dict[int, TraceRequest] = {}
    outcomes: list[RequestOutcome] = []
    reasons: dict[str, int] = {}

    def collect(completed_ids) -> None:
        for request_id in completed_ids:
            request = in_flight.pop(request_id, None)
            if request is None:
                continue
            result = core.result(request_id)
            try:
                core.finish(request_id)  # release engine-side state
            except Exception:            # noqa: BLE001 — typed terminal
                pass                     # failure; result already peeked
            reasons[result.reason] = reasons.get(result.reason, 0) + 1
            outcomes.append(RequestOutcome(request=request,
                                           result=result))

    next_up = 0
    while next_up < len(requests) or in_flight:
        now = clock()
        while (next_up < len(requests)
               and start + requests[next_up].arrival <= now):
            request = requests[next_up]
            arrival = start + request.arrival
            if request.kind == "classify":
                request_id = core.submit(request.tokens, now=arrival,
                                         ttl=request.ttl)
            else:
                request_id = core.open_stream(
                    request.tokens, request.max_new_tokens,
                    now=arrival, ttl=request.ttl)
            in_flight[request_id] = request
            next_up += 1
        collect(core.step(now))
        if virtual:
            # advance one step; when fully idle, jump the dead air to
            # the next arrival (deterministic — the jump target is a
            # trace time, not a measurement)
            gap = virtual_dt
            if not in_flight and next_up < len(requests):
                gap = max(gap,
                          start + requests[next_up].arrival - clock())
            clock.advance(gap)
    # the report sorts by trace index so replays compare positionally
    outcomes.sort(key=lambda o: o.request.index)
    stats = getattr(core, "stats", None)
    values = (stats.values() if isinstance(stats, dict)
              else [stats] if stats is not None else [])
    return LoadReport(outcomes=outcomes, duration=clock() - start,
                      reasons=reasons,
                      steps=sum(s.steps for s in values))


def print_report(report: LoadReport, label: str = "loadgen") -> None:
    metrics = report.metrics()
    def fmt(key, scale=1e3, unit="ms"):
        value = metrics[key]
        return "    -" if value is None else f"{value * scale:7.2f}{unit}"
    print(f"== {label}: {metrics['requests']} requests in "
          f"{metrics['duration_s']:.3f}s ==")
    print(f"  outcomes: {metrics['reasons']}")
    print(f"  TTFT    p50 {fmt('ttft_p50')}  p95 {fmt('ttft_p95')}  "
          f"p99 {fmt('ttft_p99')}")
    print(f"  TBT     p50 {fmt('tbt_p50')}  p99 {fmt('tbt_p99')}")
    print(f"  latency p50 {fmt('latency_p50')}  p99 "
          f"{fmt('latency_p99')}")
    print(f"  throughput {metrics['tok_s']:.1f} tok/s "
          f"({metrics['generated_tokens']} tokens, "
          f"{metrics['steps']} engine steps)")


def main(argv=None) -> None:
    from .batcher import BatchPolicy
    from .scheduler import SLOAdmission
    from .workers import WorkerTier
    from .__main__ import build_lm_engine

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="trace-driven load & SLO harness over a "
                    "multi-worker serving tier")
    parser.add_argument("--engine-dir", default=None,
                        help="saved LM snapshot to serve (default: "
                             "build the toy TransformerLM and snapshot "
                             "it to a temp dir)")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--procs", type=int, default=None, metavar="N",
                        help="serve through a ProcessWorkerTier of N "
                             "worker processes (one engine replica per "
                             "OS process, shared mmap snapshot) instead "
                             "of the in-process WorkerTier")
    parser.add_argument("--min-proc-speedup", type=float, default=None,
                        metavar="X",
                        help="with --procs and --check: also replay the "
                             "trace on the in-process tier (--replicas "
                             "workers, one process) and require the "
                             "proc tier to sustain at least X times its "
                             "tok/s (wall clock only)")
    parser.add_argument("--dim", type=int, default=32,
                        help="toy LM model width (default 32; raise it "
                             "so each forward dominates IPC overhead "
                             "in throughput benchmarks)")
    parser.add_argument("--layers", type=int, default=2,
                        help="toy LM transformer layers (default 2)")
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--process", choices=["poisson", "bursty"],
                        default="bursty")
    parser.add_argument("--rate", type=float, default=200.0)
    parser.add_argument("--burst-rate", type=float, default=2000.0)
    parser.add_argument("--new-tokens", type=int, nargs=2,
                        default=(2, 8), metavar=("LO", "HI"))
    parser.add_argument("--prompt-tokens", type=int, nargs=2,
                        default=(1, 8), metavar=("LO", "HI"))
    parser.add_argument("--max-batch-size", type=int, default=4)
    parser.add_argument("--step-token-budget", type=int, default=32)
    parser.add_argument("--ttft-slo", type=float, default=None,
                        help="shed arrivals whose predicted TTFT "
                             "exceeds this many seconds")
    parser.add_argument("--virtual", action="store_true",
                        help="replay on a deterministic virtual clock "
                             "instead of the wall clock")
    parser.add_argument("--check", action="store_true",
                        help="gate the SLO thresholds below (exit "
                             "non-zero on breach)")
    parser.add_argument("--max-ttft-p99", type=float, default=None)
    parser.add_argument("--max-tbt-p99", type=float, default=None)
    parser.add_argument("--min-tok-s", type=float, default=None)
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve GET /metrics on 127.0.0.1:PORT "
                             "from a background thread during the "
                             "replay (0 = ephemeral)")
    parser.add_argument("--metrics-linger", type=float, default=0.0,
                        metavar="SECONDS",
                        help="keep the --metrics-port endpoint alive "
                             "this long after the replay so an "
                             "external scraper catches the final "
                             "counters")
    parser.add_argument("--metrics-dump", action="store_true",
                        help="print the Prometheus-text exposition "
                             "after the replay")
    parser.add_argument("--trace-export", default=None, metavar="PATH",
                        help="write per-request spans as Chrome "
                             "trace-event JSON (open in Perfetto); "
                             "byte-identical across --virtual replays")
    args = parser.parse_args(argv)
    if args.procs is not None and args.procs < 1:
        parser.error("--procs must be >= 1")
    if args.min_proc_speedup is not None:
        if args.procs is None:
            parser.error("--min-proc-speedup needs --procs")
        if args.virtual:
            parser.error("--min-proc-speedup measures wall-clock "
                         "throughput; drop --virtual")

    registry = tracer = metrics_server = None
    if args.metrics_dump or args.metrics_port is not None:
        from ..obs import MetricsRegistry
        registry = MetricsRegistry()
    if args.trace_export:
        from ..obs import TraceRecorder
        tracer = TraceRecorder()
    if args.metrics_port is not None:
        from ..obs import start_metrics_server
        metrics_server = start_metrics_server(registry,
                                              port=args.metrics_port)
        print(f"[metrics] serving http://127.0.0.1:"
              f"{metrics_server.server_address[1]}/metrics")

    baseline = None
    with tempfile.TemporaryDirectory() as scratch:
        directory = args.engine_dir
        if directory is None:
            directory = scratch
            build_lm_engine(args.seed, dim=args.dim,
                            num_layers=args.layers).save(directory)
        clock = VirtualClock() if args.virtual else time.monotonic
        slo = (SLOAdmission(ttft_target=args.ttft_slo)
               if args.ttft_slo is not None else None)
        policy = BatchPolicy(max_batch_size=args.max_batch_size,
                             max_wait=0.0)
        tier_kwargs = dict(
            policy=policy, clock=clock, continuous=True,
            step_token_budget=args.step_token_budget, slo=slo,
            registry=registry, tracer=tracer)
        trace = TraceSpec(
            seed=args.seed, requests=args.requests,
            process=args.process, rate=args.rate,
            burst_rate=args.burst_rate,
            prompt_tokens=tuple(args.prompt_tokens),
            new_tokens=tuple(args.new_tokens))
        if args.procs is not None:
            from .procworkers import ProcessWorkerTier
            tier = ProcessWorkerTier.from_snapshot(
                directory, replicas=args.procs, **tier_kwargs)
            try:
                report = replay_trace(tier, trace, clock=clock)
            finally:
                tier.close()
        else:
            tier = WorkerTier.from_snapshot(
                directory, replicas=args.replicas, **tier_kwargs)
            report = replay_trace(tier, trace, clock=clock)
        if args.min_proc_speedup is not None:
            # same trace, same policy, same replica count — one
            # process, so the GIL serializes what the proc tier runs
            # on real cores
            base_tier = WorkerTier.from_snapshot(
                directory, replicas=args.replicas, policy=policy,
                clock=clock, continuous=True,
                step_token_budget=args.step_token_budget,
                slo=(SLOAdmission(ttft_target=args.ttft_slo)
                     if args.ttft_slo is not None else None))
            baseline = replay_trace(base_tier, trace, clock=clock)

    if args.procs is not None:
        label = (f"{args.process} x{args.procs} worker processes "
                 f"({'virtual' if args.virtual else 'wall'} clock)")
    else:
        label = (f"{args.process} x{args.replicas} replicas "
                 f"({'virtual' if args.virtual else 'wall'} clock)")
    print_report(report, label)
    context = {
        "replicas": args.replicas, "procs": args.procs,
        "process": args.process,
        "seed": args.seed, "requests": args.requests,
        "rate": args.rate, "burst_rate": args.burst_rate,
        "step_token_budget": args.step_token_budget,
        "dim": args.dim, "layers": args.layers,
        "clock": "virtual" if args.virtual else "wall",
        "python": sys.version.split()[0]}
    metrics = report.metrics()
    bench_name = "serving_slo"
    if args.procs is not None:
        bench_name = "serving_procs"
        if baseline is not None:
            print_report(baseline,
                         f"{args.process} x{args.replicas} in-process "
                         "replicas (baseline)")
            speedup = report.tok_s / max(baseline.tok_s, 1e-12)
            print(f"  [procs] {report.tok_s:.1f} tok/s over "
                  f"{baseline.tok_s:.1f} tok/s in-process -> "
                  f"{speedup:.2f}x")
            metrics["baseline_tok_s"] = baseline.tok_s
            metrics["proc_speedup"] = speedup
    path = record_bench(bench_name, metrics, context=context)
    if path:
        print(f"  [bench] recorded -> {path}")
    if tracer is not None:
        tracer.save(args.trace_export)
        print(f"  [trace] wrote {len(tracer.events)} events to "
              f"{args.trace_export}")
    if metrics_server is not None:
        if args.metrics_linger > 0:
            time.sleep(args.metrics_linger)
        metrics_server.shutdown()
    if args.metrics_dump:
        print(registry.exposition(), end="")
    if args.check:
        report.check(max_ttft_p99=args.max_ttft_p99,
                     min_tok_s=args.min_tok_s,
                     max_tbt_p99=args.max_tbt_p99)
        if args.min_proc_speedup is not None and baseline is not None:
            speedup = report.tok_s / max(baseline.tok_s, 1e-12)
            if speedup < args.min_proc_speedup:
                raise SystemExit(
                    f"SLO check failed: proc_speedup {speedup:.2f} < "
                    f"{args.min_proc_speedup}")
        print("  [check] SLOs met")


if __name__ == "__main__":
    main()
