"""Multi-model router: several serving engines behind one front door.

``ModelRouter`` owns one :class:`~repro.serve.engine.ServingEngine`
per model name (each wrapping its own
:class:`~repro.core.PrunedInferenceEngine`, with its own per-model
bucket queues and stream queue) and presents the single-engine
surface — ``submit`` / ``open_stream`` / ``step`` / ``finish`` /
``drain`` — with a ``model=`` argument for routing.  Request ids are
router-global, so callers never juggle per-engine id spaces.

Scheduling is budget-shared: each router step splits ``step_budget``
decode slots across the engines that have stream work, proportionally
to their load with a rotating remainder (deficit round-robin), and
passes each engine its share — under the continuous scheduler an
engine whose share shrank below its running set swaps the overflow
out to per-stream KV state until pressure moves elsewhere.  Because
every engine keeps its own pad widths and KV buffers, routing is
bit-invisible: a request's outputs and hardware estimates are
identical to serving it on that model's engine alone.
"""

from __future__ import annotations

import time

import numpy as np

from .engine import ServeResult, ServingEngine


class ModelRouter:
    """Route requests across named serving engines with one queue
    discipline and a shared per-step decode budget."""

    is_router = True

    def __init__(self, engines: dict[str, ServingEngine],
                 step_budget: int | None = None,
                 clock=time.monotonic):
        if not engines:
            raise ValueError("ModelRouter needs at least one engine")
        self.engines = dict(engines)
        self.step_budget = step_budget
        self._clock = clock
        self._routes: dict[int, tuple[str, int]] = {}
        self._next_id = 0
        self._turn = 0                   # rotating remainder pointer

    # -- routing --------------------------------------------------------
    def _engine(self, model: str | None) -> tuple[str, ServingEngine]:
        if model is None:
            if len(self.engines) == 1:
                return next(iter(self.engines.items()))
            raise ValueError("several models are mounted; pass model= "
                             f"(one of {sorted(self.engines)})")
        try:
            return model, self.engines[model]
        except KeyError:
            raise KeyError(f"unknown model {model!r}; mounted models: "
                           f"{sorted(self.engines)}") from None

    def _track(self, model: str, inner_id: int) -> int:
        router_id = self._next_id
        self._next_id += 1
        self._routes[router_id] = (model, inner_id)
        return router_id

    def submit(self, inputs: np.ndarray, mask: np.ndarray | None = None,
               model: str | None = None, now: float | None = None) -> int:
        name, engine = self._engine(model)
        now = self._clock() if now is None else now
        return self._track(name, engine.submit(inputs, mask, now=now))

    def open_stream(self, prompt: np.ndarray, max_new_tokens: int,
                    model: str | None = None,
                    now: float | None = None) -> int:
        name, engine = self._engine(model)
        now = self._clock() if now is None else now
        return self._track(name, engine.open_stream(prompt,
                                                    max_new_tokens,
                                                    now=now))

    # -- queue introspection (same surface as ServingEngine) ------------
    def next_deadline(self) -> float | None:
        deadlines = [d for engine in self.engines.values()
                     if (d := engine.next_deadline()) is not None]
        return min(deadlines) if deadlines else None

    def queue_ready(self, now: float) -> bool:
        return any(engine.queue_ready(now)
                   for engine in self.engines.values())

    def has_pending(self) -> bool:
        return any(engine.has_pending()
                   for engine in self.engines.values())

    # -- advancing ------------------------------------------------------
    def _stream_demand(self, engine: ServingEngine) -> int:
        if engine.continuous:
            running = (len(engine._slots)
                       if engine._slots is not None else 0)
        else:                            # round-based: live = has caches
            running = sum(1 for s in engine._streams.values()
                          if not s.done and s.caches is not None)
        return running + engine._batcher.stream_count()

    def _shares(self, demands: dict[str, int]) -> dict[str, int]:
        """Split the step budget across engines with stream demand:
        proportional shares (each capped by its demand, min 1 so every
        model makes progress), the leftover dealt round-robin from a
        rotating start so no model systematically wins ties.  The
        shares never exceed the budget (except the unavoidable
        one-slot-per-model floor when more models than slots have
        work)."""
        active = {name: d for name, d in demands.items() if d > 0}
        if not active or self.step_budget is None:
            return {name: None for name in active}
        budget = max(self.step_budget, len(active))
        total = sum(active.values())
        shares = {name: min(d, max(1, budget * d // total))
                  for name, d in active.items()}
        # the min-1 floor can push the sum past the budget: claw back
        # from the largest shares (they were floored least) until the
        # budget holds again
        overrun = sum(shares.values()) - budget
        for name in sorted(active, key=lambda n: (-shares[n], n)):
            if overrun <= 0:
                break
            give_back = min(shares[name] - 1, overrun)
            shares[name] -= give_back
            overrun -= give_back
        # deal any leftover budget round-robin
        leftover = budget - sum(shares.values())
        names = sorted(active)
        start = self._turn % len(names)
        self._turn += 1
        index = 0
        while leftover > 0 and index < 4 * len(names):
            name = names[(start + index) % len(names)]
            if shares[name] < active[name]:
                shares[name] += 1
                leftover -= 1
            index += 1
        return shares

    def step(self, now: float | None = None) -> list[int]:
        """Advance every mounted engine one step, splitting the shared
        decode budget across the models with stream work.  Returns
        router-global ids completed this step."""
        now = self._clock() if now is None else now
        demands = {name: self._stream_demand(engine)
                   for name, engine in self.engines.items()}
        shares = self._shares(demands)
        completed: list[int] = []
        for name in sorted(self.engines):
            engine = self.engines[name]
            done = engine.step(now, budget=shares.get(name))
            completed += self._completed_ids(name, done)
        return completed

    def flush(self) -> list[int]:
        completed: list[int] = []
        for name in sorted(self.engines):
            completed += self._completed_ids(name,
                                             self.engines[name].flush())
        return completed

    def drain(self) -> list[int]:
        completed = self.flush()
        while self.has_pending():
            completed += self.step()
        return completed

    def _completed_ids(self, model: str, inner_ids: list[int]
                       ) -> list[int]:
        by_inner = {inner: rid
                    for rid, (name, inner) in self._routes.items()
                    if name == model}
        return [by_inner[inner] for inner in inner_ids
                if inner in by_inner]

    # -- completion -----------------------------------------------------
    def result(self, request_id: int) -> ServeResult | None:
        route = self._routes.get(request_id)
        if route is None:
            return None
        model, inner = route
        return self.engines[model].result(inner)

    def finish(self, request_id: int) -> ServeResult:
        route = self._routes.get(request_id)
        if route is None:
            raise KeyError(f"unknown request {request_id}")
        model, inner = route
        result = self.engines[model].finish(inner)
        del self._routes[request_id]
        return result

    # -- observability --------------------------------------------------
    @property
    def stats(self) -> dict[str, object]:
        return {name: engine.stats
                for name, engine in self.engines.items()}
