"""Multi-model router: several serving engines behind one front door.

``ModelRouter`` owns one :class:`~repro.serve.engine.ServingEngine`
per model name (each wrapping its own
:class:`~repro.core.PrunedInferenceEngine`, with its own per-model
bucket queues and stream queue) and presents the single-engine
surface — ``submit`` / ``open_stream`` / ``step`` / ``cancel`` /
``finish`` — with a ``model=`` argument for routing.  Request ids are
router-global, so callers never juggle per-engine id spaces.

Scheduling is budget-shared: each router step splits ``step_budget``
decode slots across the engines that have stream work, proportionally
to their load with a rotating remainder (deficit round-robin), and
passes each engine its share — under the continuous scheduler an
engine whose share shrank below its running set swaps the overflow
out to per-stream KV state until pressure moves elsewhere.  Because
every engine keeps its own pad widths and KV buffers, routing is
bit-invisible: a request's outputs and hardware estimates are
identical to serving it on that model's engine alone.

Routing is also **health-checked**: every engine carries an
:class:`~repro.serve.health.EngineHealth` circuit breaker fed by its
step outcomes.  Consecutive failures degrade the engine (skipped
until an exponential backoff window passes, then retried); enough of
them quarantine it, at which point its waiting work is rerouted to
the configured fallback model (``fallbacks={"model": "other"}``) or
failed fast with typed ``engine_error`` results — never silently
stalled — and new submissions fast-reject (or reroute) until the
optional cooldown lets the engine back in as a half-open probe.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.metrics import as_registry
from .engine import (REASON_ERROR, REASON_SHED, RequestTiming,
                     ServeResult, ServingEngine, ShedOverload)
from .health import EngineHealth, HealthPolicy
from .scheduler import SLOAdmission

_BREAKER_LEVELS = {"healthy": 0, "degraded": 1, "quarantined": 2}


class UnknownModelError(KeyError):
    """Routing asked for a model name that is not mounted."""

    def __init__(self, model: str, mounted):
        self.model = model
        self.mounted = sorted(mounted)
        super().__init__(model)

    def __str__(self) -> str:
        return (f"unknown model {self.model!r}; mounted models: "
                + ", ".join(repr(name) for name in self.mounted))


class EngineQuarantined(RuntimeError):
    """The target engine's circuit breaker is open and no fallback
    model is mounted for it."""


class ModelRouter:
    """Route requests across named serving engines with one queue
    discipline, a shared per-step decode budget, and per-engine
    circuit breakers."""

    is_router = True

    def __init__(self, engines: dict[str, ServingEngine],
                 step_budget: int | None = None,
                 clock=time.monotonic,
                 health: HealthPolicy | None = None,
                 fallbacks: dict[str, str] | None = None,
                 admission: SLOAdmission | None = None,
                 registry=None):
        """``admission`` (an :class:`~repro.serve.scheduler
        .SLOAdmission`) moves SLO shedding to the front door: the
        router prices every submission against the *target* engine's
        backlog before enqueueing and sheds hopeless work itself with
        a typed ``shed_overload`` result — the engine never sees it,
        so shed decisions are made once, centrally, instead of
        per-engine.  One shared instance covers all mounted models
        (its step-time EWMA refines from router step durations)."""
        if not engines:
            raise ValueError("ModelRouter needs at least one engine")
        self.engines = dict(engines)
        self.step_budget = step_budget
        self._clock = clock
        self._admission = admission
        self._routes: dict[int, tuple[str, int]] = {}
        self._next_id = 0
        self._turn = 0                   # rotating remainder pointer
        self.health = {name: EngineHealth(health) for name in engines}
        # breaker observability: a per-model state gauge (0 healthy,
        # 1 degraded, 2 quarantined), transition counters, reroute /
        # fast-reject counters.  No-op handles without a registry.
        self._registry = as_registry(registry)
        self._m_breaker = {
            name: self._registry.gauge(
                "repro_breaker_state",
                "circuit state: 0 healthy, 1 degraded, 2 quarantined",
                model=name)
            for name in engines}
        self._m_transitions = {
            (name, state): self._registry.counter(
                "repro_breaker_transitions_total",
                "circuit-breaker state changes", model=name, to=state)
            for name in engines for state in _BREAKER_LEVELS}
        self._m_rerouted = {
            name: self._registry.counter(
                "repro_reroutes_total",
                "waiting requests rerouted off a quarantined model",
                model=name)
            for name in engines}
        self._m_rejected = self._registry.counter(
            "repro_router_fast_rejects_total",
            "submissions rejected because no healthy engine was mounted")
        self._m_shed_front = self._registry.counter(
            "repro_router_admission_shed_total",
            "submissions shed at the router by SLO admission control")
        if admission is not None:
            admission.bind_metrics(self._registry, {"scope": "router"})
        self._breaker_seen = {name: "healthy" for name in engines}
        self.fallbacks = dict(fallbacks or {})
        for model, fallback in self.fallbacks.items():
            if model not in self.engines:
                raise UnknownModelError(model, self.engines)
            if fallback not in self.engines:
                raise UnknownModelError(fallback, self.engines)
            if fallback == model:
                raise ValueError(f"model {model!r} cannot fall back "
                                 "to itself")
        # router-terminal results (fast-rejected submissions) and their
        # not-yet-reported ids
        self._local: dict[int, ServeResult] = {}
        self._instant: list[int] = []

    # -- routing --------------------------------------------------------
    def _engine(self, model: str | None) -> tuple[str, ServingEngine]:
        if model is None:
            if len(self.engines) == 1:
                return next(iter(self.engines.items()))
            raise ValueError("several models are mounted; pass model= "
                             f"(one of {sorted(self.engines)})")
        try:
            return model, self.engines[model]
        except KeyError:
            raise UnknownModelError(model, self.engines) from None

    def _route_healthy(self, model: str | None) -> tuple[str,
                                                         ServingEngine]:
        """Resolve a model for new work, walking the fallback chain
        away from quarantined engines."""
        name, engine = self._engine(model)
        seen = set()
        while self.health[name].quarantined:
            seen.add(name)
            fallback = self.fallbacks.get(name)
            if fallback is None or fallback in seen:
                raise EngineQuarantined(
                    f"model {name!r} is quarantined "
                    f"({self.health[name].last_error!r}) and no healthy "
                    "fallback is mounted")
            name, engine = fallback, self.engines[fallback]
        return name, engine

    def _track(self, model: str, inner_id: int) -> int:
        router_id = self._next_id
        self._next_id += 1
        self._routes[router_id] = (model, inner_id)
        return router_id

    def _reject(self, kind: str, error: Exception) -> int:
        """Mint a router id whose result is already a typed terminal
        failure (fast-reject: quarantined target, no fallback)."""
        self._m_rejected.inc()
        router_id = self._next_id
        self._next_id += 1
        self._local[router_id] = ServeResult(
            request_id=router_id, kind=kind, logits=np.zeros(0),
            error=error, reason=REASON_ERROR)
        self._instant.append(router_id)
        return router_id

    def _shed_front(self, kind: str, verdict: str) -> int:
        """Mint a router id whose result is a typed ``shed_overload``:
        the admission gate judged the SLO unattainable, so the request
        never reaches an engine queue."""
        self._m_shed_front.inc()
        router_id = self._next_id
        self._next_id += 1
        self._local[router_id] = ServeResult(
            request_id=router_id, kind=kind, logits=np.zeros(0),
            error=ShedOverload(verdict), reason=REASON_SHED)
        self._instant.append(router_id)
        return router_id

    def _admit(self, engine: ServingEngine, tokens: int,
               stream: bool) -> str | None:
        """Front-door SLO check against the routed engine's backlog;
        None admits, a reason string sheds."""
        if self._admission is None:
            return None
        return self._admission.admit(
            engine.backlog_tokens() + tokens, engine.tokens_per_step(),
            stream=stream)

    def submit(self, inputs: np.ndarray, mask: np.ndarray | None = None,
               model: str | None = None, now: float | None = None,
               deadline: float | None = None,
               ttl: float | None = None) -> int:
        try:
            name, engine = self._route_healthy(model)
        except EngineQuarantined as error:
            return self._reject("classify", error)
        inputs = np.asarray(inputs)
        tokens = int(inputs.shape[0]) if inputs.ndim else 1
        verdict = self._admit(engine, tokens, stream=False)
        if verdict is not None:
            return self._shed_front("classify", verdict)
        now = self._clock() if now is None else now
        return self._track(name, engine.submit(
            inputs, mask, now=now, deadline=deadline, ttl=ttl))

    def open_stream(self, prompt: np.ndarray, max_new_tokens: int,
                    model: str | None = None,
                    now: float | None = None,
                    deadline: float | None = None,
                    ttl: float | None = None) -> int:
        try:
            name, engine = self._route_healthy(model)
        except EngineQuarantined as error:
            return self._reject("generate", error)
        prompt = np.asarray(prompt)
        tokens = int(prompt.size) + max(int(max_new_tokens), 0)
        verdict = self._admit(engine, tokens, stream=True)
        if verdict is not None:
            return self._shed_front("generate", verdict)
        now = self._clock() if now is None else now
        return self._track(name, engine.open_stream(
            prompt, max_new_tokens, now=now, deadline=deadline, ttl=ttl))

    def cancel(self, request_id: int) -> bool:
        """Cancel wherever the request is routed; False if already
        terminal."""
        if request_id in self._local:
            return False
        route = self._routes.get(request_id)
        if route is None:
            raise KeyError(f"unknown request {request_id}")
        model, inner = route
        return self.engines[model].cancel(inner)

    # -- queue introspection (same surface as ServingEngine) ------------
    def _live_engines(self):
        return ((name, engine) for name, engine in self.engines.items()
                if not self.health[name].quarantined)

    def next_deadline(self) -> float | None:
        deadlines = [d for _, engine in self._live_engines()
                     if (d := engine.next_deadline()) is not None]
        return min(deadlines) if deadlines else None

    def queue_ready(self, now: float) -> bool:
        return bool(self._instant) or any(
            engine.queue_ready(now) for _, engine in self._live_engines())

    def has_pending(self) -> bool:
        return bool(self._instant) or any(
            engine.has_pending() for _, engine in self._live_engines())

    # -- health ---------------------------------------------------------
    def health_states(self) -> dict[str, str]:
        """{model: "healthy" | "degraded" | "quarantined"}."""
        return {name: health.state
                for name, health in self.health.items()}

    def _quarantine(self, name: str, now: float,
                    error: Exception) -> list[int]:
        """The circuit just opened for ``name``: reroute its waiting
        work to the fallback model (if one is mounted and alive), fail
        everything else fast, and report the terminated ids.  Nothing
        is ever left to stall in a dead engine's queues."""
        engine = self.engines[name]
        by_inner = {inner: rid
                    for rid, (model, inner) in self._routes.items()
                    if model == name}
        completed: list[int] = []
        fallback = self.fallbacks.get(name)
        if fallback is not None and not self.health[fallback].quarantined:
            target = self.engines[fallback]
            requests, streams = engine.drain_waiting()
            for request in requests:
                rid = by_inner.get(request.request_id)
                try:
                    inner = target.submit(request.inputs, request.mask,
                                          now=now,
                                          deadline=request.deadline)
                except Exception as reroute_error:  # noqa: BLE001
                    if rid is not None:
                        self._local[rid] = ServeResult(
                            request_id=rid, kind="classify",
                            logits=np.zeros(0), error=reroute_error,
                            reason=REASON_ERROR)
                        completed.append(rid)
                        del self._routes[rid]
                    continue
                self._m_rerouted[name].inc()
                if rid is not None:
                    self._routes[rid] = (fallback, inner)
            for stream in streams:
                rid = by_inner.get(stream.stream_id)
                try:
                    inner = target.open_stream(stream.tokens,
                                               stream.max_new_tokens,
                                               now=now,
                                               deadline=stream.deadline)
                except Exception as reroute_error:  # noqa: BLE001
                    if rid is not None:
                        self._local[rid] = ServeResult(
                            request_id=rid, kind="generate",
                            logits=np.zeros(0), error=reroute_error,
                            reason=REASON_ERROR)
                        completed.append(rid)
                        del self._routes[rid]
                    continue
                self._m_rerouted[name].inc()
                if rid is not None:
                    self._routes[rid] = (fallback, inner)
        completed += self._completed_ids(name, engine.abort_all(error))
        return completed

    # -- advancing ------------------------------------------------------
    def _stream_demand(self, engine: ServingEngine) -> int:
        if engine.continuous:
            running = (len(engine._slots)
                       if engine._slots is not None else 0)
        else:                            # round-based: live = has caches
            running = sum(1 for s in engine._streams.values()
                          if not s.done and s.caches is not None)
        return running + engine._batcher.stream_count()

    def _shares(self, demands: dict[str, int]) -> dict[str, int]:
        """Split the step budget across engines with stream demand:
        proportional shares (each capped by its demand, min 1 so every
        model makes progress), the leftover dealt round-robin from a
        rotating start so no model systematically wins ties.  The
        shares never exceed the budget (except the unavoidable
        one-slot-per-model floor when more models than slots have
        work)."""
        active = {name: d for name, d in demands.items() if d > 0}
        if not active or self.step_budget is None:
            return {name: None for name in active}
        budget = max(self.step_budget, len(active))
        total = sum(active.values())
        shares = {name: min(d, max(1, budget * d // total))
                  for name, d in active.items()}
        # the min-1 floor can push the sum past the budget: claw back
        # from the largest shares (they were floored least) until the
        # budget holds again
        overrun = sum(shares.values()) - budget
        for name in sorted(active, key=lambda n: (-shares[n], n)):
            if overrun <= 0:
                break
            give_back = min(shares[name] - 1, overrun)
            shares[name] -= give_back
            overrun -= give_back
        # deal any leftover budget round-robin
        leftover = budget - sum(shares.values())
        names = sorted(active)
        start = self._turn % len(names)
        self._turn += 1
        index = 0
        while leftover > 0 and index < 4 * len(names):
            name = names[(start + index) % len(names)]
            if shares[name] < active[name]:
                shares[name] += 1
                leftover -= 1
            index += 1
        return shares

    def step(self, now: float | None = None) -> list[int]:
        """Advance every healthy mounted engine one step, splitting the
        shared decode budget across the models with stream work.  Step
        outcomes feed each engine's circuit breaker: a failing engine
        is retried after exponential backoff, and a quarantined one has
        its work rerouted or failed fast.  Returns router-global ids
        completed this step."""
        now = self._clock() if now is None else now
        completed, self._instant = self._instant, []
        demands = {name: self._stream_demand(engine)
                   for name, engine in self._live_engines()}
        shares = self._shares(demands)
        for name in sorted(self.engines):
            engine = self.engines[name]
            health = self.health[name]
            if health.probe_due(now):
                health.reinstate()       # half-open: one strike left
            if not health.ready(now):
                continue
            try:
                done = engine.step(now, budget=shares.get(name))
            except Exception as error:   # noqa: BLE001 — breaker input
                if health.record_failure(now, error) == "quarantined":
                    completed += self._quarantine(name, now, error)
                continue
            completed += self._completed_ids(name, done)
            if engine.last_step_errors:
                error = RuntimeError(
                    f"{engine.last_step_errors} forward failure(s) in "
                    f"one step of model {name!r}")
                if health.record_failure(now, error) == "quarantined":
                    completed += self._quarantine(name, now, error)
            else:
                health.record_success()
        if self._admission is not None:
            self._admission.observe_step(self._clock() - now)
        if self._registry.enabled:
            self._sync_breaker_metrics()
        return completed

    def _sync_breaker_metrics(self) -> None:
        """Publish breaker states after a step: the gauge tracks the
        current level, and every observed state *change* ticks the
        transition counter for the state entered."""
        for name, health in self.health.items():
            state = health.state
            self._m_breaker[name].set(_BREAKER_LEVELS[state])
            if state != self._breaker_seen[name]:
                self._breaker_seen[name] = state
                self._m_transitions[(name, state)].inc()

    def flush(self) -> list[int]:
        completed, self._instant = self._instant, []
        for name in sorted(self.engines):
            if self.health[name].quarantined:
                continue
            completed += self._completed_ids(name,
                                             self.engines[name].flush())
        return completed

    def drain(self) -> list[int]:
        completed = self.flush()
        while self.has_pending():
            completed += self.step()
        return completed

    def _completed_ids(self, model: str, inner_ids: list[int]
                       ) -> list[int]:
        by_inner = {inner: rid
                    for rid, (name, inner) in self._routes.items()
                    if name == model}
        return [by_inner[inner] for inner in inner_ids
                if inner in by_inner]

    # -- completion -----------------------------------------------------
    def result(self, request_id: int) -> ServeResult | None:
        if request_id in self._local:
            return self._local[request_id]
        route = self._routes.get(request_id)
        if route is None:
            return None
        model, inner = route
        return self.engines[model].result(inner)

    def finish(self, request_id: int) -> ServeResult:
        if request_id in self._local:
            result = self._local.pop(request_id)
            if result.error is not None:
                raise result.error
            return result
        route = self._routes.get(request_id)
        if route is None:
            raise KeyError(f"unknown request {request_id}")
        model, inner = route
        result = self.engines[model].finish(inner)
        del self._routes[request_id]
        return result

    # -- observability --------------------------------------------------
    @property
    def stats(self) -> dict[str, object]:
        return {name: engine.stats
                for name, engine in self.engines.items()}

    def stats_summary(self) -> dict[str, dict]:
        """Health/observability rollup per mounted model: circuit-
        breaker state, terminal-reason counts (summing to
        ``completed``), and the reliability counters — the numbers
        ``python -m repro.serve --stats`` prints."""
        summary = {}
        for name, engine in self.engines.items():
            stats = engine.stats
            summary[name] = {
                "health": self.health[name].state,
                "completed": stats.completed,
                "reasons": dict(stats.reasons),
                "errors": stats.errors,
                "retries": stats.retries,
                "shed": stats.shed,
                "preemptions": stats.preemptions,
            }
        return summary
