"""Per-engine health tracking: circuit breaker + exponential backoff.

The :class:`~repro.serve.router.ModelRouter` keeps one
:class:`EngineHealth` per mounted engine and feeds it step outcomes.
Health walks a three-state ladder driven by *consecutive* failures:

``healthy``
    steps run normally.
``degraded``
    at least ``degraded_after`` consecutive failures; the router skips
    the engine until an exponential backoff window (``backoff_base`` ·
    ``backoff_factor``^(failures-1), capped at ``max_backoff``) has
    passed, then retries — transient faults recover here and a single
    success snaps the engine back to ``healthy``.
``quarantined``
    ``quarantine_after`` consecutive failures; the circuit is open.
    The router immediately re-routes the engine's waiting work to the
    configured fallback model (or fails it fast with a typed
    ``engine_error``) and fast-rejects new submissions — quarantined
    work is never silently stalled.  With a ``cooldown`` configured
    the engine is let back in as ``degraded`` (half-open probe) after
    the cooldown elapses.

The tracker is pure bookkeeping over an injected clock, so chaos tests
drive it deterministically with virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass

HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthPolicy:
    """Circuit-breaker thresholds and retry backoff schedule."""

    degraded_after: int = 1        # consecutive failures -> degraded
    quarantine_after: int = 3      # consecutive failures -> quarantined
    backoff_base: float = 0.01     # seconds before the first retry
    backoff_factor: float = 2.0    # growth per consecutive failure
    max_backoff: float = 1.0       # backoff ceiling, seconds
    cooldown: float | None = None  # quarantine -> half-open probe delay
                                   # (None: quarantine is terminal)

    def __post_init__(self):
        if self.degraded_after < 1:
            raise ValueError("degraded_after must be >= 1")
        if self.quarantine_after < self.degraded_after:
            raise ValueError("quarantine_after must be >= degraded_after")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, consecutive_failures: int) -> float:
        """Retry delay after the N-th consecutive failure (N >= 1)."""
        delay = (self.backoff_base
                 * self.backoff_factor ** (consecutive_failures - 1))
        return min(delay, self.max_backoff)


class EngineHealth:
    """One engine's health state machine."""

    def __init__(self, policy: HealthPolicy | None = None):
        self.policy = policy or HealthPolicy()
        self.consecutive_failures = 0
        self.total_failures = 0
        self.retry_at: float | None = None   # backoff gate (degraded)
        self.quarantined_at: float | None = None
        self.last_error: Exception | None = None

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> str:
        if self.quarantined_at is not None:
            return QUARANTINED
        if self.consecutive_failures >= self.policy.degraded_after:
            return DEGRADED
        return HEALTHY

    @property
    def quarantined(self) -> bool:
        return self.quarantined_at is not None

    def ready(self, now: float) -> bool:
        """May the router step this engine right now?  Quarantined
        engines are never stepped; degraded engines wait out their
        backoff window."""
        if self.quarantined:
            return False
        return self.retry_at is None or now >= self.retry_at

    def probe_due(self, now: float) -> bool:
        """Quarantine cooldown has elapsed: let the engine back in as
        a half-open probe (one failure re-quarantines it)."""
        return (self.quarantined
                and self.policy.cooldown is not None
                and now >= self.quarantined_at + self.policy.cooldown)

    # -- transitions ----------------------------------------------------
    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.retry_at = None
        self.last_error = None

    def record_failure(self, now: float,
                       error: Exception | None = None) -> str:
        """One failed step; returns the resulting state."""
        self.consecutive_failures += 1
        self.total_failures += 1
        self.last_error = error
        if self.consecutive_failures >= self.policy.quarantine_after:
            self.quarantined_at = now
            self.retry_at = None
        else:
            self.retry_at = now + self.policy.backoff(
                self.consecutive_failures)
        return self.state

    def mark_dead(self, now: float,
                  error: Exception | None = None) -> str:
        """A hard, non-transient failure — the worker *process* behind
        this engine died (socket EOF, kill signal).  No point walking
        the backoff ladder: open the circuit immediately so the router
        or tier reroutes the in-flight work at once.  With a
        ``cooldown`` configured the usual half-open probe still
        applies, which is how a restarted worker would be let back
        in."""
        self.consecutive_failures = max(self.consecutive_failures + 1,
                                        self.policy.quarantine_after)
        self.total_failures += 1
        self.last_error = error
        self.quarantined_at = now
        self.retry_at = None
        return self.state

    def reinstate(self) -> None:
        """Half-open probe admission: back to degraded with one strike
        left before re-quarantine."""
        self.quarantined_at = None
        self.consecutive_failures = max(self.policy.quarantine_after - 1,
                                        0)
        self.retry_at = None
