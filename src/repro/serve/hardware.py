"""Per-request hardware accounting for coalesced batches.

``estimate_hardware`` on the core engine simulates whatever records a
forward captured.  Under serving, one forward covers many requests, so
the records are (B, H, Sq, Sk) with padding; this module slices out a
single request's rows — trimmed to its true lengths — so the tile
simulator sees exactly the jobs a solo run of that request would have
produced, and aggregates the resulting per-request estimates into
traffic totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import HardwareEstimate
from ..models.attention import AttentionRecord


def slice_record(record: AttentionRecord, item: int, q_length: int,
                 k_length: int) -> AttentionRecord:
    """Extract one request's slice of a coalesced attention record.

    ``q_length``/``k_length`` are the request's true query/key extents
    (equal for prefill; 1 and history+1 for a decode step).  Arrays are
    copied so the slice outlives the batch's reused buffers.
    """

    def take4(array, rows, cols):          # (B, H, rows, cols)
        if array is None:
            return None
        return array[item:item + 1, :, :rows, :cols].copy()

    return AttentionRecord(
        layer_index=record.layer_index,
        scores=take4(record.scores, q_length, k_length),
        pruned_mask=take4(record.pruned_mask, q_length, k_length),
        threshold=record.threshold,
        valid=(None if record.valid is None else
               record.valid[item:item + 1, :q_length, :k_length].copy()),
        queries=(None if record.queries is None else
                 record.queries[item:item + 1, :, :q_length].copy()),
        keys=(None if record.keys is None else
              record.keys[item:item + 1, :, :k_length].copy()),
    )


@dataclass
class HardwareTotals:
    """Cycles/energy aggregated across all served requests."""

    requests: int = 0
    runtime_ns: float = 0.0
    baseline_runtime_ns: float = 0.0
    energy_pj: float = 0.0
    baseline_energy_pj: float = 0.0

    def add(self, estimate: HardwareEstimate) -> None:
        self.requests += 1
        self.runtime_ns += estimate.runtime_ns
        self.baseline_runtime_ns += estimate.baseline_runtime_ns
        self.energy_pj += estimate.energy_pj
        self.baseline_energy_pj += estimate.baseline_energy_pj

    @property
    def speedup_vs_baseline(self) -> float:
        return self.baseline_runtime_ns / max(self.runtime_ns, 1e-12)

    @property
    def energy_reduction(self) -> float:
        return self.baseline_energy_pj / max(self.energy_pj, 1e-12)
