"""Dynamic batching: arrival queue, wait policy, and request coalescing.

The batcher is deliberately clock-agnostic — callers pass ``now`` — so
property tests can drive it with a virtual clock and the asyncio front
end can drive it with ``time.monotonic``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


def _ceil_div(n: int, d: int) -> int:
    return -(-n // d)


@dataclass(frozen=True)
class LadderOption:
    """One candidate bucket ladder and what the observed traffic would
    have paid on it — the fullness-vs-padding tradeoff made explicit.

    ``served_slots`` is the decision currency: every flushed batch
    occupies ``max_batch_size`` model slots at its bucket's width, so
    ``sum(ceil(n_b / B) * B * width_b)`` charges padding waste (wide
    buckets) and empty-slot waste (many sparse buckets) in the same
    unit.  ``padded_tokens`` alone — the old objective — always prefers
    more buckets, which shatters small workloads into batches of one.
    """

    buckets: tuple[int, ...]
    padded_tokens: int          # sum of bucket widths over requests
    batches: int                # full flushes at max_batch_size
    served_slots: int           # batches x batch size x width
    fullness: float             # requests / (batches * max_batch_size)


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing knobs.

    ``max_batch_size``: flush as soon as this many requests are queued.
    ``max_wait``: seconds a request may sit in the queue before the
    batch is flushed anyway (the no-starvation bound).
    ``pad_to``: fixed width every coalesced batch is padded to; None
    lets the serving engine pick the model's ``max_seq_len``.  Padding
    to a width that is a function of the request alone (never of the
    batch) keeps every kernel shape independent of batch composition,
    which is what makes a coalesced request bit-identical to the same
    request served alone.
    ``buckets``: optional ascending pad-width ladder.  Each request is
    assigned the smallest bucket that fits it (falling back to
    ``pad_to``) and only coalesces with requests of the same bucket,
    so short requests stop paying the full-width padding tax without
    giving up bit-stability.
    ``bucket_batch_sizes``: optional per-bucket flush sizes, one per
    ladder entry (matched to ``buckets`` by position, kept paired when
    the ladder is sorted).  A wide bucket can then cap its batches
    small — bounding the tokens one flush pushes through the model —
    while narrow buckets still coalesce deep.  Buckets without an
    entry (and the ``pad_to`` fallback bucket) use ``max_batch_size``.
    """

    max_batch_size: int = 8
    max_wait: float = 0.002
    pad_to: int | None = None
    buckets: tuple[int, ...] | None = None
    bucket_batch_sizes: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.bucket_batch_sizes is not None and self.buckets is None:
            raise ValueError("bucket_batch_sizes needs a bucket ladder")
        if self.buckets is not None:
            if any(b < 1 for b in self.buckets):
                raise ValueError("buckets must be positive widths")
            if self.bucket_batch_sizes is None:
                object.__setattr__(self, "buckets",
                                   tuple(sorted(set(self.buckets))))
            else:
                if len(self.bucket_batch_sizes) != len(self.buckets):
                    raise ValueError(
                        "bucket_batch_sizes must pair one size per "
                        f"bucket: {len(self.bucket_batch_sizes)} sizes "
                        f"for {len(self.buckets)} buckets")
                if any(s < 1 for s in self.bucket_batch_sizes):
                    raise ValueError("bucket batch sizes must be >= 1")
                pairs = sorted(zip(self.buckets,
                                   self.bucket_batch_sizes))
                widths = tuple(w for w, _ in pairs)
                if len(set(widths)) != len(widths):
                    raise ValueError("duplicate bucket widths are "
                                     "ambiguous with per-bucket batch "
                                     "sizes")
                object.__setattr__(self, "buckets", widths)
                object.__setattr__(self, "bucket_batch_sizes",
                                   tuple(s for _, s in pairs))

    def bucket_for(self, length: int, pad_to: int) -> int:
        """The fixed pad width a request of ``length`` is served at."""
        if self.buckets is not None:
            for bucket in self.buckets:
                if length <= bucket <= pad_to:
                    return bucket
        return pad_to

    def batch_size_for(self, bucket: int) -> int:
        """The flush size of one bucket's queue: its ladder entry in
        ``bucket_batch_sizes`` when configured, else the global
        ``max_batch_size`` (which also covers the ``pad_to`` fallback
        bucket)."""
        if self.buckets is not None and self.bucket_batch_sizes is not None:
            for width, size in zip(self.buckets,
                                   self.bucket_batch_sizes):
                if width == bucket:
                    return size
        return self.max_batch_size

    @classmethod
    def ladder_options(cls, lengths, max_buckets: int = 4,
                       max_batch_size: int | None = None
                       ) -> list["LadderOption"]:
        """Score the best ladder at every bucket count 1..max_buckets.

        For each ``k`` an exact O(u² · k) dynamic program over the
        ``u`` unique observed lengths finds the ladder minimizing
        ``served_slots`` — every batch occupies ``max_batch_size``
        slots at its bucket's width, so the objective charges both the
        padding tax of wide buckets *and* the empty-slot tax of
        splitting a small workload across many sparse buckets (the
        failure mode of a padded-tokens-only objective with few
        observed lengths: every length its own bucket, every batch
        nearly empty).  The widest bucket is always ``max(lengths)``
        so every observed length is servable.  Returns one
        :class:`LadderOption` per bucket count, ascending — callers
        can inspect the fullness-vs-padding tradeoff;
        :meth:`from_observed` just takes the cheapest.
        """
        lengths = [int(n) for n in lengths]
        if not lengths or any(n < 1 for n in lengths):
            raise ValueError("from_observed needs positive lengths")
        if max_buckets < 1:
            raise ValueError("max_buckets must be >= 1")
        size = (max_batch_size if max_batch_size is not None
                else cls.max_batch_size)
        if size < 1:
            raise ValueError("max_batch_size must be >= 1")
        unique = sorted(set(lengths))
        u = len(unique)
        weight = [lengths.count(n) for n in unique]
        prefix = [0] * (u + 1)
        for i, w in enumerate(weight):
            prefix[i + 1] = prefix[i] + w

        # cost[i][j]: served slots when unique[i..j] form one bucket
        # at width unique[j] — their requests share one queue, so they
        # flush in ceil(count / size) batches of `size` slots each
        cost = [[_ceil_div(prefix[j + 1] - prefix[i], size)
                 * size * unique[j]
                 for j in range(u)] for i in range(u)]
        # best[k][j]: min served slots covering unique[0..j] with k
        # buckets, the last at unique[j]
        top = min(max_buckets, u)
        best = [[float("inf")] * u for _ in range(top + 1)]
        choice = [[-1] * u for _ in range(top + 1)]
        for j in range(u):
            best[1][j] = cost[0][j]
        for k in range(2, top + 1):
            for j in range(k - 1, u):
                for prev in range(k - 2, j):
                    total = best[k - 1][prev] + cost[prev + 1][j]
                    if total < best[k][j]:
                        best[k][j] = total
                        choice[k][j] = prev
        options = []
        for k in range(1, top + 1):
            if best[k][u - 1] == float("inf"):
                continue
            bounds = []
            kk, j = k, u - 1
            while j >= 0 and kk >= 1:
                bounds.append(j)
                j = choice[kk][j]
                kk -= 1
            bounds.reverse()
            padded = batches = 0
            start = 0
            for j in bounds:
                n = prefix[j + 1] - prefix[start]
                padded += n * unique[j]
                batches += _ceil_div(n, size)
                start = j + 1
            options.append(LadderOption(
                buckets=tuple(unique[j] for j in bounds),
                padded_tokens=padded, batches=batches,
                served_slots=int(best[k][u - 1]),
                fullness=len(lengths) / (batches * size)))
        return options

    @classmethod
    def from_observed(cls, lengths, max_buckets: int = 4,
                      max_batch_tokens: int | None = None,
                      **kwargs) -> "BatchPolicy":
        """Auto-tune the bucket ladder from an observed request-length
        distribution.

        Evaluates the best ladder at each bucket count (see
        :meth:`ladder_options`) and picks the one with the fewest
        served slots — ties broken toward fewer buckets, then fewer
        padded tokens — so a handful of observed lengths yields a
        compact ladder with full batches instead of one near-empty
        bucket per length.  Remaining ``BatchPolicy`` fields pass
        through ``kwargs`` (``max_batch_size`` also shapes the slot
        costs).

        ``max_batch_tokens`` additionally derives per-bucket flush
        sizes: each bucket's batch is capped at
        ``clamp(max_batch_tokens // width, 1, max_batch_size)``, so
        every flush pushes roughly the same padded-token volume
        through the model no matter which bucket it came from (wide
        buckets flush shallow, narrow buckets flush deep).
        """
        options = cls.ladder_options(
            lengths, max_buckets=max_buckets,
            max_batch_size=kwargs.get("max_batch_size"))
        winner = min(options, key=lambda o: (o.served_slots,
                                             len(o.buckets),
                                             o.padded_tokens))
        if max_batch_tokens is not None:
            if max_batch_tokens < 1:
                raise ValueError("max_batch_tokens must be >= 1")
            size = kwargs.get("max_batch_size", cls.max_batch_size)
            sizes = tuple(max(1, min(size, max_batch_tokens // width))
                          for width in winner.buckets)
            return cls(buckets=winner.buckets,
                       bucket_batch_sizes=sizes, **kwargs)
        return cls(buckets=winner.buckets, **kwargs)


@dataclass
class QueuedRequest:
    """One waiting single-sequence request."""

    request_id: int
    inputs: np.ndarray              # (L,) token ids or (L, D) patches
    mask: np.ndarray                # (L,) bool
    arrival: float
    deadline: float | None = None   # absolute; shed once now >= deadline

    @property
    def length(self) -> int:
        return self.inputs.shape[0]

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class CoalescedBatch:
    """Several requests padded into one fixed-width model batch."""

    request_ids: list[int]
    inputs: np.ndarray              # (B, pad_to[, D])
    mask: np.ndarray                # (B, pad_to) bool
    lengths: np.ndarray             # (B,) true lengths

    def __len__(self) -> int:
        return len(self.request_ids)


class DynamicBatcher:
    """Per-bucket FIFO queues with a size-or-deadline flush policy.

    Requests queue under their own pad bucket (a single bucket unless
    the policy sets a ladder).  A queue flushes when it reaches
    ``max_batch_size`` or its oldest request has waited ``max_wait``;
    pops always take a queue's oldest requests first, so no request is
    starved by later arrivals.

    Generation streams wait in a separate FIFO admission queue that the
    scheduler drains explicitly: the round-based loop pops everything
    each step, while the continuous planner pops exactly as many
    streams as it has free decode slots (``pop_streams``), and
    preempted streams re-enter at the back so fresh arrivals are never
    starved by swapped-out residents.  Under a model router each model
    owns its own batcher, so every queue here — buckets and streams —
    is per-model by construction.
    """

    def __init__(self, policy: BatchPolicy, pad_to: int):
        self.policy = policy
        self.pad_to = pad_to
        self._queues: dict[int, deque[QueuedRequest]] = {}
        self._streams: deque = deque()

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # -- stream admission queue (planner-driven) ------------------------
    def add_stream(self, stream) -> None:
        """Enqueue a stream for admission (new arrivals and preempted
        streams alike join the back — FIFO by enqueue time)."""
        self._streams.append(stream)

    def stream_count(self) -> int:
        return len(self._streams)

    def pop_streams(self, limit: int | None = None) -> list:
        """Dequeue up to ``limit`` waiting streams (all, if None)."""
        if limit is None:
            limit = len(self._streams)
        out = []
        while self._streams and len(out) < limit:
            out.append(self._streams.popleft())
        return out

    def peek_streams(self, limit: int | None = None) -> list:
        """The first ``limit`` waiting streams in FIFO order, without
        dequeuing them — the token-budget planner prices the queue head
        before deciding how many streams this step can afford."""
        if limit is None:
            limit = len(self._streams)
        return [stream for stream, _ in zip(self._streams, range(limit))]

    def discard_stream(self, stream_id: int) -> bool:
        """Drop a waiting stream (client hung up before admission)."""
        for stream in self._streams:
            if stream.stream_id == stream_id:
                self._streams.remove(stream)
                return True
        return False

    def add(self, request: QueuedRequest) -> None:
        bucket = self.policy.bucket_for(request.length, self.pad_to)
        self._queues.setdefault(bucket, deque()).append(request)

    def discard(self, request_id: int) -> QueuedRequest | None:
        """Drop one waiting classification request (cancellation)."""
        for queue in self._queues.values():
            for request in queue:
                if request.request_id == request_id:
                    queue.remove(request)
                    return request
        return None

    def shed_expired(self, now: float) -> list[QueuedRequest]:
        """Remove and return every queued request whose deadline has
        passed — expired work must never occupy a batch slot."""
        shed: list[QueuedRequest] = []
        for bucket, queue in self._queues.items():
            keep = deque(r for r in queue if not r.expired(now))
            if len(keep) != len(queue):
                shed += [r for r in queue if r.expired(now)]
                self._queues[bucket] = keep
        return shed

    def backlog_tokens(self) -> int:
        """Tokens waiting in the bucket queues plus the stream
        admission queue — the admission controller's pressure gauge.
        Streams are charged their full KV demand (prompt + budgeted new
        tokens), the work they will actually occupy the engine with."""
        queued = sum(r.length for q in self._queues.values() for r in q)
        streams = sum(s.length + s.max_new_tokens for s in self._streams)
        return queued + streams

    def next_deadline(self) -> float | None:
        """Earliest time any queue's oldest request must flush by."""
        arrivals = [q[0].arrival for q in self._queues.values() if q]
        if not arrivals:
            return None
        return min(arrivals) + self.policy.max_wait

    def ready(self, now: float) -> bool:
        return self._ready_bucket(now) is not None

    def _ready_bucket(self, now: float) -> int | None:
        """The due queue holding the oldest request, if any is due."""
        best = None
        best_arrival = None
        for bucket, queue in self._queues.items():
            if not queue:
                continue
            due = (len(queue) >= self.policy.batch_size_for(bucket)
                   or now >= queue[0].arrival + self.policy.max_wait)
            if due and (best is None or queue[0].arrival < best_arrival):
                best, best_arrival = bucket, queue[0].arrival
        return best

    def _oldest_bucket(self) -> int | None:
        best = None
        best_arrival = None
        for bucket, queue in self._queues.items():
            if queue and (best is None or queue[0].arrival < best_arrival):
                best, best_arrival = bucket, queue[0].arrival
        return best

    def pop(self, now: float | None = None
            ) -> tuple[int, list[QueuedRequest]]:
        """Dequeue up to the bucket's flush size (``batch_size_for``)
        oldest requests from the most urgent queue; returns
        (bucket width, requests)."""
        bucket = None
        if now is not None:
            bucket = self._ready_bucket(now)
        if bucket is None:
            bucket = self._oldest_bucket()
        if bucket is None:
            return self.pad_to, []
        queue = self._queues[bucket]
        size = self.policy.batch_size_for(bucket)
        out = []
        while queue and len(out) < size:
            out.append(queue.popleft())
        return bucket, out


def coalesce(requests: list[QueuedRequest], pad_to: int) -> CoalescedBatch:
    """Pad requests into one left-aligned (B, pad_to[, D]) batch."""
    lengths = np.array([r.length for r in requests], dtype=np.int64)
    over = lengths.max(initial=0)
    if over > pad_to:
        raise ValueError(f"request of length {over} exceeds pad_to={pad_to}")
    first = requests[0].inputs
    shape = (len(requests), pad_to) + first.shape[1:]
    inputs = np.zeros(shape, dtype=first.dtype)
    mask = np.zeros((len(requests), pad_to), dtype=bool)
    for i, request in enumerate(requests):
        if request.inputs.shape[1:] != first.shape[1:]:
            raise ValueError("cannot coalesce requests with mismatched "
                             "feature dimensions")
        inputs[i, :request.length] = request.inputs
        mask[i, :request.length] = request.mask
    return CoalescedBatch(
        request_ids=[r.request_id for r in requests],
        inputs=inputs, mask=mask, lengths=lengths)
