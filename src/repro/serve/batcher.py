"""Dynamic batching: arrival queue, wait policy, and request coalescing.

The batcher is deliberately clock-agnostic — callers pass ``now`` — so
property tests can drive it with a virtual clock and the asyncio front
end can drive it with ``time.monotonic``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing knobs.

    ``max_batch_size``: flush as soon as this many requests are queued.
    ``max_wait``: seconds a request may sit in the queue before the
    batch is flushed anyway (the no-starvation bound).
    ``pad_to``: fixed width every coalesced batch is padded to; None
    lets the serving engine pick the model's ``max_seq_len``.  Padding
    to a width that is a function of the request alone (never of the
    batch) keeps every kernel shape independent of batch composition,
    which is what makes a coalesced request bit-identical to the same
    request served alone.
    ``buckets``: optional ascending pad-width ladder.  Each request is
    assigned the smallest bucket that fits it (falling back to
    ``pad_to``) and only coalesces with requests of the same bucket,
    so short requests stop paying the full-width padding tax without
    giving up bit-stability.
    """

    max_batch_size: int = 8
    max_wait: float = 0.002
    pad_to: int | None = None
    buckets: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.buckets is not None:
            object.__setattr__(self, "buckets",
                               tuple(sorted(set(self.buckets))))
            if any(b < 1 for b in self.buckets):
                raise ValueError("buckets must be positive widths")

    def bucket_for(self, length: int, pad_to: int) -> int:
        """The fixed pad width a request of ``length`` is served at."""
        if self.buckets is not None:
            for bucket in self.buckets:
                if length <= bucket <= pad_to:
                    return bucket
        return pad_to


@dataclass
class QueuedRequest:
    """One waiting single-sequence request."""

    request_id: int
    inputs: np.ndarray              # (L,) token ids or (L, D) patches
    mask: np.ndarray                # (L,) bool
    arrival: float

    @property
    def length(self) -> int:
        return self.inputs.shape[0]


@dataclass
class CoalescedBatch:
    """Several requests padded into one fixed-width model batch."""

    request_ids: list[int]
    inputs: np.ndarray              # (B, pad_to[, D])
    mask: np.ndarray                # (B, pad_to) bool
    lengths: np.ndarray             # (B,) true lengths

    def __len__(self) -> int:
        return len(self.request_ids)


class DynamicBatcher:
    """Per-bucket FIFO queues with a size-or-deadline flush policy.

    Requests queue under their own pad bucket (a single bucket unless
    the policy sets a ladder).  A queue flushes when it reaches
    ``max_batch_size`` or its oldest request has waited ``max_wait``;
    pops always take a queue's oldest requests first, so no request is
    starved by later arrivals.
    """

    def __init__(self, policy: BatchPolicy, pad_to: int):
        self.policy = policy
        self.pad_to = pad_to
        self._queues: dict[int, deque[QueuedRequest]] = {}

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def add(self, request: QueuedRequest) -> None:
        bucket = self.policy.bucket_for(request.length, self.pad_to)
        self._queues.setdefault(bucket, deque()).append(request)

    def next_deadline(self) -> float | None:
        """Earliest time any queue's oldest request must flush by."""
        arrivals = [q[0].arrival for q in self._queues.values() if q]
        if not arrivals:
            return None
        return min(arrivals) + self.policy.max_wait

    def ready(self, now: float) -> bool:
        return self._ready_bucket(now) is not None

    def _ready_bucket(self, now: float) -> int | None:
        """The due queue holding the oldest request, if any is due."""
        best = None
        best_arrival = None
        for bucket, queue in self._queues.items():
            if not queue:
                continue
            due = (len(queue) >= self.policy.max_batch_size
                   or now >= queue[0].arrival + self.policy.max_wait)
            if due and (best is None or queue[0].arrival < best_arrival):
                best, best_arrival = bucket, queue[0].arrival
        return best

    def _oldest_bucket(self) -> int | None:
        best = None
        best_arrival = None
        for bucket, queue in self._queues.items():
            if queue and (best is None or queue[0].arrival < best_arrival):
                best, best_arrival = bucket, queue[0].arrival
        return best

    def pop(self, now: float | None = None
            ) -> tuple[int, list[QueuedRequest]]:
        """Dequeue up to ``max_batch_size`` oldest requests from the
        most urgent queue; returns (bucket width, requests)."""
        bucket = None
        if now is not None:
            bucket = self._ready_bucket(now)
        if bucket is None:
            bucket = self._oldest_bucket()
        if bucket is None:
            return self.pad_to, []
        queue = self._queues[bucket]
        out = []
        while queue and len(out) < self.policy.max_batch_size:
            out.append(queue.popleft())
        return bucket, out


def coalesce(requests: list[QueuedRequest], pad_to: int) -> CoalescedBatch:
    """Pad requests into one left-aligned (B, pad_to[, D]) batch."""
    lengths = np.array([r.length for r in requests], dtype=np.int64)
    over = lengths.max(initial=0)
    if over > pad_to:
        raise ValueError(f"request of length {over} exceeds pad_to={pad_to}")
    first = requests[0].inputs
    shape = (len(requests), pad_to) + first.shape[1:]
    inputs = np.zeros(shape, dtype=first.dtype)
    mask = np.zeros((len(requests), pad_to), dtype=bool)
    for i, request in enumerate(requests):
        if request.inputs.shape[1:] != first.shape[1:]:
            raise ValueError("cannot coalesce requests with mismatched "
                             "feature dimensions")
        inputs[i, :request.length] = request.inputs
        mask[i, :request.length] = request.mask
    return CoalescedBatch(
        request_ids=[r.request_id for r in requests],
        inputs=inputs, mask=mask, lengths=lengths)
