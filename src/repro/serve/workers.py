"""Shared-nothing multi-worker serving tier.

``WorkerTier`` scales the serving stack past one engine: N replica
workers, each wrapping its *own* :class:`~repro.core
.PrunedInferenceEngine` (typically rebuilt independently from the same
saved snapshot via :meth:`from_snapshot`), behind the familiar
submit / open_stream / step / finish surface.  Nothing is shared
between workers — no KV buffers, no queues, no model state — so a
replica failing, preempting, or shedding never perturbs its siblings,
and the tier composes directly with the asyncio front door
(:class:`~repro.serve.aio.AsyncServingEngine`) the way a
:class:`~repro.serve.router.ModelRouter` does.

Routing is deterministic least-loaded: each new request goes to the
worker owing the fewest :meth:`~repro.serve.engine.ServingEngine
.outstanding_tokens` (queued backlog plus the remaining generation
budget of running streams), with the lowest-index worker breaking
ties.  Because every worker pads and batches exactly like a solo
engine, placement is bit-invisible: a request's outputs, masks, and
hardware estimates are identical no matter which replica serves it —
the invariant the trace-replay tests in ``tests/test_loadgen.py`` pin.

Request ids are tier-global; per-worker SLO admission / token-budget
planning / fault injection arrive via the ``**engine_kwargs`` passed
through to each :class:`~repro.serve.engine.ServingEngine`.
"""

from __future__ import annotations

import time

import numpy as np

from .batcher import BatchPolicy
from .engine import ServeResult, ServingEngine


def tier_rollup(workers: dict[str, dict]) -> dict[str, dict]:
    """Aggregate per-worker stat rows into the tier summary shape
    shared by :class:`WorkerTier` and
    :class:`~repro.serve.procworkers.ProcessWorkerTier`:
    ``{"tier": {...}, "workers": rows}`` where the tier entry sums the
    terminal-reason counts, reliability tallies, and live load signals
    across every replica row."""
    tier = {"replicas": len(workers), "completed": 0,
            "reasons": {}, "shed": 0, "errors": 0, "retries": 0,
            "preemptions": 0, "outstanding_tokens": 0,
            "kv_slots_in_use": 0, "queue_depth": 0}
    for row in workers.values():
        for reason, count in row["reasons"].items():
            tier["reasons"][reason] = (tier["reasons"].get(reason, 0)
                                       + count)
        for key in ("completed", "shed", "errors", "retries",
                    "preemptions", "outstanding_tokens",
                    "kv_slots_in_use", "queue_depth"):
            tier[key] += row[key]
    return {"tier": tier, "workers": workers}


class WorkerTier:
    """N shared-nothing engine replicas behind one front door."""

    def __init__(self, workers: list[ServingEngine],
                 clock=time.monotonic):
        if not workers:
            raise ValueError("WorkerTier needs at least one worker")
        self.workers = list(workers)
        self._clock = clock
        # aio front-door compatibility: the runner's stream-pending
        # probe iterates ``engines.values()`` for router-like cores
        self.engines = {f"worker{i}": worker
                        for i, worker in enumerate(self.workers)}
        self._routes: dict[int, tuple[int, int]] = {}
        self._next_id = 0

    @classmethod
    def from_snapshot(cls, directory: str, replicas: int,
                      policy: BatchPolicy | None = None,
                      clock=time.monotonic, mmap: bool = False,
                      **engine_kwargs) -> "WorkerTier":
        """Build a tier of ``replicas`` workers, each rebuilding its own
        :class:`~repro.core.PrunedInferenceEngine` from the saved
        snapshot at ``directory`` — shared-nothing by construction
        (independent weights arrays, caches, and queues).
        ``mmap=True`` loads each replica's weights as read-only
        memory maps of one shared on-disk sidecar instead of private
        heap copies (see :func:`repro.core.engine.load_mmap_state`).
        ``engine_kwargs`` (``continuous=``, ``step_token_budget=``,
        ``slo=``, ``estimate_hardware=``, ``registry=``, ``tracer=``,
        ...) configure every worker's
        :class:`~repro.serve.engine.ServingEngine` identically; pass a
        fresh :class:`~repro.serve.scheduler.SLOAdmission` per tier, it
        is copied per worker so EWMA refinement stays per-replica.
        Workers are named ``worker0..N-1`` (their metric label and
        trace track), so don't pass ``name=``."""
        from dataclasses import replace

        from ..core import PrunedInferenceEngine

        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        slo = engine_kwargs.pop("slo", None)
        engine_kwargs.pop("name", None)
        workers = []
        for index in range(replicas):
            core = PrunedInferenceEngine.from_directory(directory,
                                                        mmap=mmap)
            workers.append(ServingEngine(
                core, policy=policy, clock=clock,
                slo=replace(slo) if slo is not None else None,
                name=f"worker{index}", **engine_kwargs))
        return cls(workers, clock=clock)

    # -- routing --------------------------------------------------------
    def pick_worker(self) -> int:
        """Deterministic least-loaded routing: the worker owing the
        fewest outstanding tokens, lowest index breaking ties."""
        loads = [worker.outstanding_tokens() for worker in self.workers]
        return min(range(len(loads)), key=lambda i: (loads[i], i))

    def _track(self, worker: int, inner_id: int) -> int:
        tier_id = self._next_id
        self._next_id += 1
        self._routes[tier_id] = (worker, inner_id)
        return tier_id

    def submit(self, inputs: np.ndarray, mask: np.ndarray | None = None,
               now: float | None = None, deadline: float | None = None,
               ttl: float | None = None) -> int:
        now = self._clock() if now is None else now
        worker = self.pick_worker()
        return self._track(worker, self.workers[worker].submit(
            inputs, mask, now=now, deadline=deadline, ttl=ttl))

    def open_stream(self, prompt: np.ndarray, max_new_tokens: int,
                    now: float | None = None,
                    deadline: float | None = None,
                    ttl: float | None = None) -> int:
        now = self._clock() if now is None else now
        worker = self.pick_worker()
        return self._track(worker, self.workers[worker].open_stream(
            prompt, max_new_tokens, now=now, deadline=deadline, ttl=ttl))

    def cancel(self, request_id: int) -> bool:
        route = self._routes.get(request_id)
        if route is None:
            raise KeyError(f"unknown request {request_id}")
        worker, inner = route
        return self.workers[worker].cancel(inner)

    # -- queue introspection (same surface as ServingEngine) ------------
    def next_deadline(self) -> float | None:
        deadlines = [d for worker in self.workers
                     if (d := worker.next_deadline()) is not None]
        return min(deadlines) if deadlines else None

    def queue_ready(self, now: float) -> bool:
        return any(worker.queue_ready(now) for worker in self.workers)

    def has_pending(self) -> bool:
        return any(worker.has_pending() for worker in self.workers)

    def kv_slots_in_use(self) -> int:
        return sum(worker.kv_slots_in_use() for worker in self.workers)

    def outstanding_tokens(self) -> int:
        return sum(worker.outstanding_tokens()
                   for worker in self.workers)

    # -- advancing ------------------------------------------------------
    def step(self, now: float | None = None) -> list[int]:
        """Advance every worker one step; returns tier-global ids
        completed this step (worker order, so completions are
        deterministic under a shared virtual clock)."""
        now = self._clock() if now is None else now
        completed: list[int] = []
        for index, worker in enumerate(self.workers):
            completed += self._completed_ids(index, worker.step(now))
        return completed

    def flush(self) -> list[int]:
        completed: list[int] = []
        for index, worker in enumerate(self.workers):
            completed += self._completed_ids(index, worker.flush())
        return completed

    def drain(self) -> list[int]:
        completed = self.flush()
        while self.has_pending():
            completed += self.step()
        return completed

    def _completed_ids(self, worker: int,
                       inner_ids: list[int]) -> list[int]:
        by_inner = {inner: tid
                    for tid, (index, inner) in self._routes.items()
                    if index == worker}
        return [by_inner[inner] for inner in inner_ids
                if inner in by_inner]

    # -- completion -----------------------------------------------------
    def result(self, request_id: int) -> ServeResult | None:
        route = self._routes.get(request_id)
        if route is None:
            return None
        worker, inner = route
        return self.workers[worker].result(inner)

    def finish(self, request_id: int) -> ServeResult:
        route = self._routes.get(request_id)
        if route is None:
            raise KeyError(f"unknown request {request_id}")
        worker, inner = route
        result = self.workers[worker].finish(inner)
        del self._routes[request_id]
        return result

    # -- observability --------------------------------------------------
    @property
    def stats(self) -> dict[str, object]:
        return {name: engine.stats
                for name, engine in self.engines.items()}

    def stats_summary(self) -> dict[str, dict]:
        """Tier-level rollup plus the per-worker breakdown.

        ``{"tier": {...}, "workers": {"worker0": {...}, ...}}`` — the
        tier entry aggregates terminal-reason counts and the
        reliability tallies across every replica (the numbers
        ``python -m repro.serve --stats --replicas N`` prints), and
        each worker row adds its live load signals and a coarse
        ``health`` verdict (``ok`` until the worker has contained
        forward errors, then ``erroring``)."""
        workers = {}
        for name, engine in self.engines.items():
            stats = engine.stats
            workers[name] = {
                "health": "erroring" if stats.errors else "ok",
                "completed": stats.completed,
                "reasons": dict(stats.reasons),
                "shed": stats.shed,
                "errors": stats.errors,
                "retries": stats.retries,
                "preemptions": stats.preemptions,
                "outstanding_tokens": engine.outstanding_tokens(),
                "kv_slots_in_use": engine.kv_slots_in_use(),
                "queue_depth": engine.queue_depth(),
            }
        return tier_rollup(workers)
