"""Serving demo: ``python -m repro.serve``.

By default builds a small pruned classifier and a causal LM; with
``--engine-dir`` it instead serves any saved
``PrunedInferenceEngine.from_directory`` snapshot (e.g. an entry of the
eval store, or anything ``engine.save`` wrote) — pass ``--engine-dir``
several times (optionally as ``NAME=PATH``) to mount a ``ModelRouter``
over all of them behind one queue.  Pushes a burst of mixed-length
requests / generation streams through the dynamic batcher and prints
per-request results plus aggregate hardware accounting (cycles and
energy charged per request even though the traffic was served
coalesced).  ``--continuous`` swaps the round-based stream loop for
the step-planned continuous scheduler (``--preempt-after`` enables
preemption under queue pressure); ``--kernel-backend`` picks which
bit-serial kernel backend produces the hardware estimates; each
estimate records the backend that made it.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace

import numpy as np

from ..core import PrunedInferenceEngine
from ..hw import AE_LEOPARD, get_backend
from ..models import (ClassifierConfig, LMConfig, TransformerClassifier,
                      TransformerLM)
from . import BatchPolicy, ModelRouter, ServingEngine, UnknownModelError


def build_classifier_engine(seed: int = 0) -> PrunedInferenceEngine:
    model = TransformerClassifier(ClassifierConfig(
        vocab_size=64, max_seq_len=24, dim=32, num_heads=2,
        num_layers=2, num_classes=2, seed=seed))
    controller = model.make_controller()
    controller.set_threshold_values(np.zeros(2))
    return PrunedInferenceEngine(model, controller)


def build_lm_engine(seed: int = 0, max_seq_len: int = 32,
                    dim: int = 32,
                    num_layers: int = 2) -> PrunedInferenceEngine:
    """Toy causal LM engine; ``dim``/``num_layers`` scale the model so
    throughput benchmarks can make each forward expensive enough to
    dominate scheduling overhead."""
    model = TransformerLM(LMConfig(
        vocab_size=64, max_seq_len=max_seq_len, dim=dim, num_heads=2,
        num_layers=num_layers, seed=seed))
    controller = model.make_controller()
    controller.set_threshold_values(np.zeros(num_layers))
    return PrunedInferenceEngine(model, controller)


def load_engine(directory: str) -> PrunedInferenceEngine:
    """Rebuild a saved engine and check it is servable (single-sequence
    requests; MemN2N's (story, question) pairs don't fit the queue)."""
    engine = PrunedInferenceEngine.from_directory(directory)
    config = getattr(engine.model, "config", None)
    if getattr(config, "max_seq_len", None) is None:
        raise SystemExit(
            f"error: {type(engine.model).__name__} snapshots take "
            "multi-part inputs the serving queue does not model; "
            "serve a TransformerClassifier or TransformerLM snapshot")
    return engine


def _random_inputs(config, length: int, rng) -> np.ndarray:
    """One request's inputs: token ids, or patch features for
    continuous-input (ViT-style) classifiers."""
    if config.vocab_size is not None:
        return rng.integers(0, config.vocab_size, size=length)
    return rng.standard_normal((length, config.input_dim))


def make_serving(args, engine, hw_config,
                 name: str | None = None) -> ServingEngine:
    return ServingEngine(
        engine,
        BatchPolicy(max_batch_size=args.max_batch_size,
                    max_wait=args.max_wait),
        estimate_hardware=True, hw_config=hw_config,
        continuous=args.continuous, preempt_after=args.preempt_after,
        registry=args.obs_registry, tracer=args.obs_tracer, name=name)


def print_reason_stats(name: str, stats, health: str | None = None
                       ) -> None:
    """One observability line: terminal outcomes by reason code plus
    the reliability counters (and the circuit-breaker state when a
    router is mounted)."""
    reasons = ", ".join(f"{reason}={count}"
                        for reason, count in sorted(stats.reasons.items()))
    line = (f"  [stats] {name}: {stats.completed} terminal "
            f"({reasons or 'none'}); errors={stats.errors} "
            f"retries={stats.retries}")
    if health is not None:
        line += f" health={health}"
    print(line)


def classify_demo(args, engine: PrunedInferenceEngine,
                  hw_config) -> None:
    print("== one-shot classification traffic ==")
    serving = make_serving(args, engine, hw_config, name="classifier")
    config = engine.model.config
    rng = np.random.default_rng(args.seed)
    lengths = rng.integers(3, config.max_seq_len + 1, size=args.requests)
    ids = [serving.submit(_random_inputs(config, int(length), rng))
           for length in lengths]
    serving.drain()
    for request_id in ids:
        result = serving.finish(request_id)
        hw = result.hardware
        print(f"  request {request_id}: class {result.prediction}  "
              f"batch of {result.batch_sizes[0]}  "
              f"{hw.runtime_ns:8.1f} ns ({hw.speedup_vs_baseline:.2f}x "
              f"vs baseline, pruning {hw.pruning_rate:.0%}, "
              f"kernel {hw.kernel_backend})")
    stats = serving.stats
    print(f"  -> {stats.completed} requests in {stats.batches} batches "
          f"(mean size {stats.mean_batch_size:.1f}); traffic totals "
          f"{stats.hardware.runtime_ns / 1e3:.1f} us, "
          f"{stats.hardware.energy_pj / 1e6:.2f} uJ "
          f"({stats.hardware.speedup_vs_baseline:.2f}x cycles, "
          f"{stats.hardware.energy_reduction:.2f}x energy vs baseline)")
    if args.stats:
        print_reason_stats("classifier", stats)
    print()


def generate_demo(args, engine: PrunedInferenceEngine,
                  hw_config) -> None:
    scheduler = "continuous" if args.continuous else "round-based"
    print(f"== concurrent generation streams ({scheduler} scheduler, "
          "per-stream KV caches) ==")
    serving = make_serving(args, engine, hw_config, name="lm")
    config = engine.model.config
    rng = np.random.default_rng(args.seed)
    prompt_cap = max(2, min(9, config.max_seq_len // 2))
    ids = [serving.open_stream(
               rng.integers(1, config.vocab_size, size=int(length)),
               max_new_tokens=args.new_tokens)
           for length in rng.integers(1, prompt_cap, size=args.streams)]
    steps = 0
    while serving.has_pending():
        serving.step()
        steps += 1
    for stream_id in ids:
        result = serving.finish(stream_id)
        hw = result.hardware
        print(f"  stream {stream_id}: {len(result.tokens)} tokens "
              f"{result.tokens[:8].tolist()}...  coalesced with up to "
              f"{max(result.batch_sizes)} streams  "
              f"{hw.runtime_ns:8.1f} ns ({hw.speedup_vs_baseline:.2f}x, "
              f"kernel {hw.kernel_backend})")
    stats = serving.stats
    print(f"  -> {len(ids)} streams, {stats.decode_rounds} coalesced "
          f"decode rounds over {steps} engine steps; traffic totals "
          f"{stats.hardware.runtime_ns / 1e3:.1f} us "
          f"({stats.hardware.speedup_vs_baseline:.2f}x cycles, "
          f"{stats.hardware.energy_reduction:.2f}x energy vs baseline)")
    if args.continuous:
        print(f"     scheduler: {stats.admitted} admissions, "
              f"{stats.preemptions} preemptions, "
              f"{stats.resumes} resumes over {stats.steps} planned steps")
    if args.stats:
        print_reason_stats("lm", stats)


def tier_demo(args, directory: str, hw_config) -> None:
    from .workers import WorkerTier

    print(f"== shared-nothing worker tier ({args.replicas} replicas, "
          "least-loaded routing) ==")
    tier = WorkerTier.from_snapshot(
        directory, replicas=args.replicas,
        policy=BatchPolicy(max_batch_size=args.max_batch_size,
                           max_wait=args.max_wait),
        estimate_hardware=True, hw_config=hw_config,
        continuous=args.continuous, preempt_after=args.preempt_after,
        registry=args.obs_registry, tracer=args.obs_tracer)
    config = tier.workers[0].engine.model.config
    rng = np.random.default_rng(args.seed)
    prompt_cap = max(2, min(9, config.max_seq_len // 2))
    ids = [tier.open_stream(
               rng.integers(1, config.vocab_size, size=int(length)),
               max_new_tokens=args.new_tokens)
           for length in rng.integers(1, prompt_cap, size=args.streams)]
    tier.drain()
    for stream_id in ids:
        result = tier.finish(stream_id)
        hw = result.hardware
        print(f"  stream {stream_id}: {len(result.tokens)} tokens  "
              f"{hw.runtime_ns:8.1f} ns "
              f"({hw.speedup_vs_baseline:.2f}x, kernel "
              f"{hw.kernel_backend})")
    summary = tier.stats_summary()
    tier_row = summary["tier"]
    reasons = ", ".join(f"{reason}={count}" for reason, count
                        in sorted(tier_row["reasons"].items()))
    print(f"  -> tier: {tier_row['completed']} terminal across "
          f"{tier_row['replicas']} replicas ({reasons or 'none'}); "
          f"shed={tier_row['shed']} errors={tier_row['errors']} "
          f"preemptions={tier_row['preemptions']}")
    for name, row in summary["workers"].items():
        print(f"  -> {name}: {row['completed']} served, "
              f"{row['outstanding_tokens']} tokens outstanding, "
              f"health={row['health']}")
        if args.stats:
            print_reason_stats(name, tier.engines[name].stats,
                               health=row["health"])


def proc_tier_demo(args, directory: str, hw_config) -> None:
    from .procworkers import ProcessWorkerTier

    print(f"== multi-process worker tier ({args.procs} worker "
          "processes, shared mmap snapshot, least-loaded routing) ==")
    tier = ProcessWorkerTier.from_snapshot(
        directory, replicas=args.procs,
        policy=BatchPolicy(max_batch_size=args.max_batch_size,
                           max_wait=args.max_wait),
        estimate_hardware=True, hw_config=hw_config,
        continuous=args.continuous, preempt_after=args.preempt_after,
        registry=args.obs_registry, tracer=args.obs_tracer)
    try:
        rng = np.random.default_rng(args.seed)
        prompt_cap = max(2, min(9, tier._capacity // 2))
        ids = [tier.open_stream(
                   rng.integers(1, 64, size=int(length)),
                   max_new_tokens=args.new_tokens)
               for length in rng.integers(1, prompt_cap,
                                          size=args.streams)]
        tier.drain()
        for stream_id in ids:
            result = tier.finish(stream_id)
            hw = result.hardware
            print(f"  stream {stream_id}: {len(result.tokens)} tokens  "
                  f"{hw.runtime_ns:8.1f} ns "
                  f"({hw.speedup_vs_baseline:.2f}x, kernel "
                  f"{hw.kernel_backend})")
        summary = tier.stats_summary()
        tier_row = summary["tier"]
        reasons = ", ".join(f"{reason}={count}" for reason, count
                            in sorted(tier_row["reasons"].items()))
        print(f"  -> tier: {tier_row['completed']} terminal across "
              f"{tier_row['replicas']} worker processes "
              f"({reasons or 'none'}); shed={tier_row['shed']} "
              f"errors={tier_row['errors']}")
        for name, row in summary["workers"].items():
            print(f"  -> {name}: {row['completed']} served, "
                  f"health={row['health']}")
            if args.stats:
                print_reason_stats(name, tier.stats[name],
                                   health=row["health"])
    finally:
        tier.close()


def router_demo(args, engines: dict[str, PrunedInferenceEngine],
                hw_config) -> None:
    print(f"== multi-model router ({len(engines)} engines, shared "
          f"step budget {args.max_batch_size}) ==")
    router = ModelRouter(
        {name: make_serving(args, engine, hw_config, name=name)
         for name, engine in engines.items()},
        step_budget=args.max_batch_size, registry=args.obs_registry)
    rng = np.random.default_rng(args.seed)
    targets = engines.items()
    if args.model is not None:
        if args.model not in engines:
            # hand the typo to the router so the user sees its
            # canonical unknown-model error (which lists the mounts)
            router.submit(np.zeros(3, dtype=np.int64), model=args.model)
        targets = [(args.model, engines[args.model])]
    ids: list[tuple[str, int]] = []
    for name, engine in targets:
        config = engine.model.config
        if hasattr(engine.model, "decode_step"):
            prompt_cap = max(2, min(9, config.max_seq_len // 2))
            for length in rng.integers(1, prompt_cap, size=args.streams):
                prompt = rng.integers(1, config.vocab_size,
                                      size=int(length))
                ids.append((name, router.open_stream(
                    prompt, args.new_tokens, model=name)))
        else:
            lengths = rng.integers(3, config.max_seq_len + 1,
                                   size=args.requests)
            for length in lengths:
                ids.append((name, router.submit(
                    _random_inputs(config, int(length), rng),
                    model=name)))
    router.drain()
    for name, request_id in ids:
        result = router.finish(request_id)
        hw = result.hardware
        what = (f"{len(result.tokens)} tokens" if result.kind == "generate"
                else f"class {result.prediction}")
        print(f"  [{name}] request {request_id}: {what}  "
              f"{hw.runtime_ns:8.1f} ns "
              f"({hw.speedup_vs_baseline:.2f}x, kernel "
              f"{hw.kernel_backend})")
    for name, stats in router.stats.items():
        print(f"  -> {name}: {stats.completed} served, "
              f"{stats.batches} batches (mean size "
              f"{stats.mean_batch_size:.1f}), "
              f"{stats.hardware.runtime_ns / 1e3:.1f} us total")
    if args.stats:
        summary = router.stats_summary()
        for name, stats in router.stats.items():
            print_reason_stats(name, stats,
                               health=summary[name]["health"])


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="batched serving demo over the pruned engine")
    parser.add_argument("--mode", choices=["classify", "generate", "both"],
                        default="both")
    parser.add_argument("--engine-dir", action="append", default=None,
                        metavar="[NAME=]PATH",
                        help="serve a saved PrunedInferenceEngine "
                             "snapshot instead of the built-in toys; "
                             "repeat to mount a multi-model router "
                             "(NAME defaults to the directory name)")
    parser.add_argument("--continuous", action="store_true",
                        help="continuous-batching stream scheduler "
                             "(admit into free decode slots each step) "
                             "instead of round-based")
    parser.add_argument("--preempt-after", type=int, default=None,
                        metavar="STEPS",
                        help="continuous mode: preempt streams that ran "
                             "this many decode steps when the waiting "
                             "queue is pressured (default: never)")
    parser.add_argument("--requests", type=int, default=12,
                        help="one-shot requests to submit (classify)")
    parser.add_argument("--streams", type=int, default=6,
                        help="concurrent generation streams")
    parser.add_argument("--new-tokens", type=int, default=8,
                        help="tokens to generate per stream")
    parser.add_argument("--max-batch-size", type=int, default=4)
    parser.add_argument("--max-wait", type=float, default=0.002)
    parser.add_argument("--model", default=None, metavar="NAME",
                        help="router mode: direct the whole demo burst "
                             "at one mounted model (a typo exits with "
                             "the router's unknown-model error instead "
                             "of a traceback)")
    parser.add_argument("--replicas", type=int, default=1,
                        metavar="N",
                        help="serve generation traffic through a "
                             "shared-nothing WorkerTier of N engine "
                             "replicas (each rebuilt from the same "
                             "snapshot) instead of one engine")
    parser.add_argument("--procs", type=int, default=None,
                        metavar="N",
                        help="like --replicas but each replica runs in "
                             "its own OS process (ProcessWorkerTier), "
                             "all memory-mapping one shared snapshot")
    parser.add_argument("--stats", action="store_true",
                        help="print per-engine terminal-reason counters "
                             "(and circuit-breaker states under the "
                             "router) after each demo")
    parser.add_argument("--kernel-backend", default=None,
                        help="bit-serial kernel backend for hardware "
                             "estimates (see repro.hw.backends)")
    parser.add_argument("--metrics-dump", action="store_true",
                        help="print the Prometheus-text metrics "
                             "exposition after the demo (non-server "
                             "snapshot surface)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve GET /metrics on 127.0.0.1:PORT "
                             "from a background thread for the "
                             "duration of the demo (0 = ephemeral)")
    parser.add_argument("--metrics-linger", type=float, default=0.0,
                        metavar="SECONDS",
                        help="keep the --metrics-port endpoint alive "
                             "this long after the demo finishes (lets "
                             "an external scraper catch the final "
                             "counters)")
    parser.add_argument("--trace-export", default=None, metavar="PATH",
                        help="record per-request trace spans and write "
                             "Chrome trace-event JSON here (open in "
                             "Perfetto)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    hw_config = None
    if args.kernel_backend:
        get_backend(args.kernel_backend)      # typo -> error before traffic
        hw_config = replace(AE_LEOPARD, kernel_backend=args.kernel_backend)
    if args.preempt_after is not None and not args.continuous:
        parser.error("--preempt-after needs --continuous")
    if args.model is not None and len(args.engine_dir or []) < 2:
        parser.error("--model routes within a multi-model router; mount "
                     "at least two --engine-dir snapshots")
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    if args.procs is not None:
        if args.procs < 1:
            parser.error("--procs must be >= 1")
        if args.replicas > 1:
            parser.error("--procs and --replicas are alternatives: "
                         "pick in-process replicas or worker processes")
    if ((args.replicas > 1 or args.procs is not None)
            and len(args.engine_dir or []) > 1):
        parser.error("--replicas/--procs scale one snapshot; mount at "
                     "most one --engine-dir")

    # observability surfaces are opt-in: without these flags every
    # engine binds no-op handles and the demo runs uninstrumented
    args.obs_registry = None
    args.obs_tracer = None
    metrics_server = None
    if args.metrics_dump or args.metrics_port is not None:
        from ..obs import MetricsRegistry
        args.obs_registry = MetricsRegistry()
    if args.trace_export:
        from ..obs import TraceRecorder
        args.obs_tracer = TraceRecorder()
    if args.metrics_port is not None:
        from ..obs import start_metrics_server
        metrics_server = start_metrics_server(args.obs_registry,
                                              port=args.metrics_port)
        print(f"[metrics] serving http://127.0.0.1:"
              f"{metrics_server.server_address[1]}/metrics")
    try:
        _dispatch(args, hw_config)
    finally:
        if metrics_server is not None:
            if args.metrics_linger > 0:
                import time
                time.sleep(args.metrics_linger)
            metrics_server.shutdown()
        if args.obs_tracer is not None:
            args.obs_tracer.save(args.trace_export)
            print(f"[trace] wrote {len(args.obs_tracer.events)} events "
                  f"to {args.trace_export}")
        if args.metrics_dump:
            print(args.obs_registry.exposition(), end="")


def _dispatch(args, hw_config) -> None:
    if args.replicas > 1 or args.procs is not None:
        import tempfile
        with tempfile.TemporaryDirectory() as scratch:
            if args.engine_dir:
                directory = args.engine_dir[0].rpartition("=")[2] \
                    or args.engine_dir[0]
                load_engine(directory)   # validate before replication
            else:
                directory = scratch
                build_lm_engine(args.seed).save(directory)
            if args.procs is not None:
                proc_tier_demo(args, directory, hw_config)
            else:
                tier_demo(args, directory, hw_config)
        return

    if args.engine_dir:
        engines: dict[str, PrunedInferenceEngine] = {}
        for spec in args.engine_dir:
            name, _, path = spec.rpartition("=")
            path = path or spec
            name = name or os.path.basename(os.path.normpath(path))
            if name in engines:
                raise SystemExit(f"error: duplicate model name {name!r}; "
                                 "disambiguate with NAME=PATH")
            engines[name] = load_engine(path)
        if len(engines) > 1:
            try:
                router_demo(args, engines, hw_config)
            except UnknownModelError as error:
                raise SystemExit(f"error: {error}") from None
            return
        (directory,), (engine,) = args.engine_dir, engines.values()
        generative = hasattr(engine.model, "decode_step")
        print(f"[engine] {directory}: "
              f"{type(engine.model).__name__} "
              f"({'generate' if generative else 'classify'} traffic)")
        if generative:
            generate_demo(args, engine, hw_config)
        else:
            classify_demo(args, engine, hw_config)
        return

    if args.mode in ("classify", "both"):
        classify_demo(args, build_classifier_engine(args.seed), hw_config)
    if args.mode in ("generate", "both"):
        generate_demo(args, build_lm_engine(args.seed), hw_config)


if __name__ == "__main__":
    main()
