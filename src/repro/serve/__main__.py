"""Serving demo: ``python -m repro.serve``.

Builds a small pruned classifier and a causal LM, pushes a burst of
mixed-length requests / generation streams through the dynamic
batcher, and prints per-request results plus aggregate hardware
accounting (cycles and energy charged per request even though the
traffic was served coalesced).
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core import PrunedInferenceEngine
from ..models import (ClassifierConfig, LMConfig, TransformerClassifier,
                      TransformerLM)
from . import BatchPolicy, ServingEngine


def build_classifier_engine(seed: int = 0) -> PrunedInferenceEngine:
    model = TransformerClassifier(ClassifierConfig(
        vocab_size=64, max_seq_len=24, dim=32, num_heads=2,
        num_layers=2, num_classes=2, seed=seed))
    controller = model.make_controller()
    controller.set_threshold_values(np.zeros(2))
    return PrunedInferenceEngine(model, controller)


def build_lm_engine(seed: int = 0,
                    max_seq_len: int = 32) -> PrunedInferenceEngine:
    model = TransformerLM(LMConfig(
        vocab_size=64, max_seq_len=max_seq_len, dim=32, num_heads=2,
        num_layers=2, seed=seed))
    controller = model.make_controller()
    controller.set_threshold_values(np.zeros(2))
    return PrunedInferenceEngine(model, controller)


def classify_demo(args) -> None:
    print("== one-shot classification traffic ==")
    serving = ServingEngine(
        build_classifier_engine(args.seed),
        BatchPolicy(max_batch_size=args.max_batch_size,
                    max_wait=args.max_wait),
        estimate_hardware=True)
    rng = np.random.default_rng(args.seed)
    ids = [serving.submit(rng.integers(0, 64, size=int(length)))
           for length in rng.integers(3, 25, size=args.requests)]
    serving.drain()
    for request_id in ids:
        result = serving.finish(request_id)
        hw = result.hardware
        print(f"  request {request_id}: class {result.prediction}  "
              f"batch of {result.batch_sizes[0]}  "
              f"{hw.runtime_ns:8.1f} ns ({hw.speedup_vs_baseline:.2f}x "
              f"vs baseline, pruning {hw.pruning_rate:.0%})")
    stats = serving.stats
    print(f"  -> {stats.completed} requests in {stats.batches} batches "
          f"(mean size {stats.mean_batch_size:.1f}); traffic totals "
          f"{stats.hardware.runtime_ns / 1e3:.1f} us, "
          f"{stats.hardware.energy_pj / 1e6:.2f} uJ "
          f"({stats.hardware.speedup_vs_baseline:.2f}x cycles, "
          f"{stats.hardware.energy_reduction:.2f}x energy vs baseline)\n")


def generate_demo(args) -> None:
    print("== concurrent generation streams (per-stream KV caches) ==")
    serving = ServingEngine(
        build_lm_engine(args.seed),
        BatchPolicy(max_batch_size=args.max_batch_size,
                    max_wait=args.max_wait),
        estimate_hardware=True)
    rng = np.random.default_rng(args.seed)
    ids = [serving.open_stream(rng.integers(1, 64, size=int(length)),
                               max_new_tokens=args.new_tokens)
           for length in rng.integers(1, 9, size=args.streams)]
    steps = 0
    while serving.has_pending():
        serving.step()
        steps += 1
    for stream_id in ids:
        result = serving.finish(stream_id)
        hw = result.hardware
        print(f"  stream {stream_id}: {len(result.tokens)} tokens "
              f"{result.tokens[:8].tolist()}...  coalesced with up to "
              f"{max(result.batch_sizes)} streams  "
              f"{hw.runtime_ns:8.1f} ns ({hw.speedup_vs_baseline:.2f}x)")
    stats = serving.stats
    print(f"  -> {len(ids)} streams, {stats.decode_rounds} coalesced "
          f"decode rounds over {steps} engine steps; traffic totals "
          f"{stats.hardware.runtime_ns / 1e3:.1f} us "
          f"({stats.hardware.speedup_vs_baseline:.2f}x cycles, "
          f"{stats.hardware.energy_reduction:.2f}x energy vs baseline)")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="batched serving demo over the pruned engine")
    parser.add_argument("--mode", choices=["classify", "generate", "both"],
                        default="both")
    parser.add_argument("--requests", type=int, default=12,
                        help="one-shot requests to submit (classify)")
    parser.add_argument("--streams", type=int, default=6,
                        help="concurrent generation streams")
    parser.add_argument("--new-tokens", type=int, default=8,
                        help="tokens to generate per stream")
    parser.add_argument("--max-batch-size", type=int, default=4)
    parser.add_argument("--max-wait", type=float, default=0.002)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.mode in ("classify", "both"):
        classify_demo(args)
    if args.mode in ("generate", "both"):
        generate_demo(args)


if __name__ == "__main__":
    main()
