"""Batched serving engine: concurrent streams over one pruned model.

``ServingEngine`` fronts a :class:`~repro.core.PrunedInferenceEngine`
with an arrival queue and a dynamic batcher.  Two request kinds share
the submit/step/finish lifecycle:

* one-shot classification requests (``submit``) — coalesced into
  fixed-width padded batches under the ``BatchPolicy``;
* autoregressive generation streams (``open_stream``) — prefilled in
  coalesced batches, then decoded one token per ``step``.

Two stream schedulers share that lifecycle:

* **round-based** (default): every waiting stream prefills
  immediately, and every live stream decodes each step in
  ``max_batch_size`` chunks stacked into fresh shared buffers;
* **continuous** (``continuous=True``): a :class:`StepPlanner` admits
  waiting streams directly into free decode slots of a persistent
  :class:`~repro.serve.streams.KVSlotBuffer` (chunked prefill
  piggybacked alongside the running streams' decode tokens), evicts
  finished streams in place, and under queue pressure preempts the
  longest-running streams to swappable per-stream KV state.

Everything is bit-stable by construction: batches pad to a fixed
width, per-stream histories stay left-aligned, and per-request
hardware estimates are computed from per-request record slices — so a
request's outputs, pruning masks, and cycle/energy estimates do not
depend on which other requests happened to be coalesced with it, nor
on which scheduler (or slot) served it.

The core is synchronous and clock-injectable (tests drive a virtual
clock); :mod:`repro.serve.aio` adds the awaitable front door and
:mod:`repro.serve.router` the multi-model front door.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..hw.backends import PlaneGroupCache
from ..obs.metrics import COUNT_BUCKETS, as_registry
from ..obs.tracing import as_tracer
from .batcher import BatchPolicy, CoalescedBatch, DynamicBatcher, \
    QueuedRequest, coalesce
from .hardware import HardwareTotals, slice_record
from .scheduler import SchedulerConfig, SLOAdmission, StepPlanner
from .streams import KVSlotBuffer, StreamState, stack_caches, \
    unstack_caches

# terminal reason codes: every ServeResult carries exactly one
REASON_OK = "ok"
REASON_DEADLINE = "deadline_exceeded"
REASON_CANCELLED = "cancelled"
REASON_ERROR = "engine_error"
REASON_SHED = "shed_overload"


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed before it finished; it was shed
    from the queue (or stopped mid-generation) and its KV state freed."""


class RequestCancelled(RuntimeError):
    """The client cancelled the request before it finished."""


class ShedOverload(RuntimeError):
    """Admission control fast-rejected the request: the token backlog
    already exceeds ``max_backlog_tokens`` (fail fast beats queueing
    into certain deadline collapse)."""


@dataclass(frozen=True)
class RequestTiming:
    """Engine-clock latency marks for one served request.

    All values come from the engine's injected clock, so a virtual
    clock makes them exactly replayable.  ``first_token`` is the TTFT
    mark (for classify requests it equals ``finished``);
    ``token_times`` holds one stamp per emitted token for generation
    streams, so time-between-tokens is just the consecutive diffs."""

    arrival: float
    finished: float
    first_token: float | None = None
    token_times: tuple[float, ...] = ()

    @property
    def ttft(self) -> float | None:
        if self.first_token is None:
            return None
        return self.first_token - self.arrival

    @property
    def latency(self) -> float:
        return self.finished - self.arrival

    @property
    def tbts(self) -> tuple[float, ...]:
        """Gaps between consecutive emitted tokens."""
        return tuple(b - a for a, b in zip(self.token_times,
                                           self.token_times[1:]))


@dataclass
class ServeResult:
    """What ``finish`` hands back for one request or stream."""

    request_id: int
    kind: str                           # "classify" | "generate"
    logits: np.ndarray                  # final logits (classify) or
                                        # last-step logits (generate)
    prediction: int | None = None       # classify argmax
    tokens: np.ndarray | None = None    # generate: prompt + new tokens
    hardware: object | None = None      # HardwareEstimate, if enabled
    records: list | None = None         # per-request AttentionRecords
    batch_sizes: list[int] = field(default_factory=list)
    error: Exception | None = None      # serve-time failure, if any
    reason: str = REASON_OK             # REASON_* terminal code
    timing: RequestTiming | None = None  # latency marks (engine clock)

    @property
    def ok(self) -> bool:
        return self.reason == REASON_OK


@dataclass
class ServingStats:
    """Aggregate view of the traffic served so far.

    Batch counters tick per model forward; the step counters tick per
    scheduler step — under the continuous scheduler one step may carry
    a prefill forward *and* a decode forward, and the per-step
    admission/preemption tallies are the scheduler's observability
    surface.
    """

    completed: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    decode_rounds: int = 0
    max_batch_size: int = 0
    steps: int = 0
    admitted: int = 0
    preemptions: int = 0
    resumes: int = 0
    # reliability counters: terminal outcomes by reason, plus how many
    # forward attempts failed and how many retries recovered one
    expired: int = 0
    cancelled: int = 0
    shed: int = 0
    errors: int = 0
    retries: int = 0
    # terminal outcomes keyed by REASON_* code — one tick per finished
    # request/stream, so values sum to ``completed``
    reasons: dict = field(default_factory=dict)
    hardware: HardwareTotals = field(default_factory=HardwareTotals)

    def record_terminal(self, reason: str) -> None:
        self.completed += 1
        self.reasons[reason] = self.reasons.get(reason, 0) + 1

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.coalesced_requests += size
        self.max_batch_size = max(self.max_batch_size, size)

    def record_step(self, admitted: int = 0, preempted: int = 0,
                    resumed: int = 0) -> None:
        self.steps += 1
        self.admitted += admitted
        self.preemptions += preempted
        self.resumes += resumed

    @property
    def mean_batch_size(self) -> float:
        return self.coalesced_requests / max(self.batches, 1)


class ServingEngine:
    """Dynamic-batching front end over a ``PrunedInferenceEngine``."""

    def __init__(self, engine, policy: BatchPolicy | None = None,
                 estimate_hardware: bool = False, hw_config=None,
                 clock=time.monotonic, continuous: bool = False,
                 preempt_after: int | None = None, pressure: int = 1,
                 slots: int | None = None, faults=None,
                 retries: int = 0, retry_backoff: float = 0.0,
                 max_backlog_tokens: int | None = None,
                 step_token_budget: int | None = None,
                 slo: SLOAdmission | None = None,
                 sleep=time.sleep, registry=None, tracer=None,
                 profiler=None, name: str | None = None):
        """``continuous=True`` swaps the round-based stream loop for
        the step-planned continuous scheduler: ``slots`` decode slots
        (default ``max_batch_size``), preempting streams that ran
        ``preempt_after`` decode steps once ``pressure`` streams wait
        beyond the free slots (``None`` disables preemption).
        ``step_token_budget`` adds vLLM-style token-budget planning on
        top: each step's admissions are throttled so resident decode
        tokens plus admitted streams' chunked-prefill tokens fit the
        budget (continuous scheduler only).

        Reliability knobs: ``faults`` injects a seeded
        :class:`~repro.serve.faults.FaultPlan` into the forward/step
        paths; ``retries`` re-runs a failed model forward up to that
        many extra times (``retry_backoff`` seconds before the first,
        doubling — forwards are pure functions of their inputs, so a
        retry that succeeds is bit-identical to never having failed);
        ``max_backlog_tokens`` fast-rejects new work with
        ``shed_overload`` once the queued token backlog exceeds it;
        ``slo`` (an :class:`~repro.serve.scheduler.SLOAdmission`) sheds
        new work whose TTFT/TBT target is already unattainable given
        the current backlog, with the same typed ``shed_overload``
        result.

        Observability (all opt-in, no-op by default): ``registry`` (a
        :class:`repro.obs.MetricsRegistry`) receives live
        ``repro_*`` counters/gauges/histograms; ``tracer`` (a
        :class:`repro.obs.TraceRecorder`) records per-request spans
        stamped from the engine clock; ``profiler`` (a
        :class:`repro.obs.KernelProfiler`) times the hardware
        simulator's fused kernel calls; ``name`` labels this engine's
        series and trace track (tier replicas pass ``worker0``...)."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if max_backlog_tokens is not None and max_backlog_tokens < 1:
            raise ValueError("max_backlog_tokens must be >= 1")
        self.engine = engine
        self.policy = policy or BatchPolicy()
        self._estimate_hw = estimate_hardware
        self._hw_config = hw_config
        self.name = name
        self._registry = as_registry(registry)
        self._tracer = as_tracer(tracer)
        self._profiler = profiler
        self._bind_metrics()
        # per-engine pack-once plane cache: decode-step estimates of
        # the same stream reuse packed key bit-planes across steps
        self._pack_cache = (PlaneGroupCache(counters=self._pack_counters)
                            if estimate_hardware else None)
        self._clock = clock
        self._faults = faults
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._max_backlog = max_backlog_tokens
        self._sleep = sleep
        config = getattr(engine.model, "config", None)
        max_seq_len = getattr(config, "max_seq_len", None)
        if self.policy.pad_to is not None:
            self._pad_to = self.policy.pad_to
        elif max_seq_len is not None:
            self._pad_to = max_seq_len
        else:
            raise ValueError("model config has no max_seq_len; "
                             "set BatchPolicy.pad_to explicitly")
        if max_seq_len is not None and self._pad_to > max_seq_len:
            raise ValueError(f"BatchPolicy.pad_to={self._pad_to} exceeds "
                             f"the model's max_seq_len={max_seq_len}")
        self._capacity = max_seq_len or self._pad_to
        # prompts prefill at a fixed width like any padded batch; a
        # pad_to below max_seq_len keeps short-prompt prefill cheap
        # while decode buffers still span the full capacity
        self._prefill_width = min(self._pad_to, self._capacity)
        self._per_position = getattr(config, "head", None) == "span"
        self._batcher = DynamicBatcher(self.policy, self._pad_to)
        self.continuous = continuous
        self._planner = StepPlanner(SchedulerConfig(
            max_slots=slots or self.policy.max_batch_size,
            preempt_after=preempt_after,
            pressure=pressure,
            step_token_budget=step_token_budget),
            registry=registry, labels=self._labels) if continuous else None
        self._step_token_budget = step_token_budget
        self._slo = slo
        if slo is not None:
            slo.bind_metrics(self._registry, self._labels)
        self._now = self._clock()        # engine time of the latest step
        self._slots: KVSlotBuffer | None = None   # built on first admit
        self._streams: dict[int, StreamState] = {}
        self._results: dict[int, ServeResult] = {}
        # ids terminated outside a step (fast-rejects, cancels): the
        # next step()/flush() reports them so pollers see them complete
        self._instant: list[int] = []
        self._next_id = 0
        # contained forward failures during the latest step — the
        # router's circuit breaker reads this after each step
        self.last_step_errors = 0
        self.stats = ServingStats()

    # -- observability --------------------------------------------------
    def _bind_metrics(self) -> None:
        """Bind every metric handle once; with no registry these are
        all the shared no-op metric, so per-event cost is one empty
        method call (the CI overhead benchmark pins the bound)."""
        m = self._registry
        self._labels = {"engine": self.name} if self.name else {}
        labels = self._labels
        self._pid = (self._tracer.track(self.name or "engine")
                     if self._tracer.enabled else 0)
        self._m_steps = m.counter(
            "repro_steps_total", "scheduler steps taken", **labels)
        self._m_step_seconds = m.histogram(
            "repro_step_seconds",
            "engine-clock duration of one scheduler step", **labels)
        self._m_batch_size = m.histogram(
            "repro_batch_size", "requests coalesced per model forward",
            buckets=COUNT_BUCKETS, **labels)
        self._m_queue_depth = m.gauge(
            "repro_queue_depth",
            "queued classify requests + waiting streams", **labels)
        self._m_backlog = m.gauge(
            "repro_backlog_tokens", "token backlog in the queues",
            **labels)
        self._m_kv_in_use = m.gauge(
            "repro_kv_slots_in_use", "occupied KV decode slots", **labels)
        self._m_admitted = m.counter(
            "repro_admitted_total", "streams admitted into decode slots",
            **labels)
        self._m_preempted = m.counter(
            "repro_preemptions_total",
            "streams preempted to swappable KV state", **labels)
        self._m_resumed = m.counter(
            "repro_resumes_total", "swapped-out streams re-admitted",
            **labels)
        self._m_shed = m.counter(
            "repro_shed_total", "requests fast-rejected at admission",
            **labels)
        self._m_errors = m.counter(
            "repro_forward_errors_total", "model forwards that raised",
            **labels)
        self._m_retries = m.counter(
            "repro_retries_total", "forward retries attempted", **labels)
        self._m_reasons = {
            reason: m.counter(
                "repro_requests_terminal_total",
                "finished requests by terminal reason",
                reason=reason, **labels)
            for reason in (REASON_OK, REASON_DEADLINE, REASON_CANCELLED,
                           REASON_ERROR, REASON_SHED)}
        # handles for the subsystems this engine constructs; binding
        # unconditionally keeps the series present (at 0) even when the
        # subsystem never materializes, so dashboards don't gap
        self._pack_counters = {
            event: m.counter(
                "repro_pack_cache_events_total",
                "plane-group cache lookups by outcome",
                event=event, **labels)
            for event in ("hit", "extend", "miss")}
        self._kv_counters = {
            event: m.counter(
                "repro_kv_slot_events_total",
                "KV slot-buffer transitions", event=event, **labels)
            for event in ("admit", "evict", "swap_out")}

    # -- submission -----------------------------------------------------
    @staticmethod
    def _resolve_deadline(now: float, deadline: float | None,
                          ttl: float | None) -> float | None:
        """Absolute deadline from either an absolute ``deadline`` or a
        relative ``ttl`` (seconds from arrival)."""
        if deadline is not None and ttl is not None:
            raise ValueError("pass deadline= or ttl=, not both")
        if ttl is not None:
            if ttl <= 0:
                raise ValueError("ttl must be > 0 seconds")
            return now + ttl
        return deadline

    def _admit(self, tokens: int, request_id: int, kind: str) -> bool:
        """Admission control: False fast-rejects the request with a
        terminal ``shed_overload`` result instead of letting the
        backlog (and everyone's latency) grow without bound — either
        because the token backlog exceeds ``max_backlog_tokens`` or
        because the SLO policy predicts the request's TTFT/TBT target
        is already unattainable behind the current backlog."""
        backlog = self._batcher.backlog_tokens()
        if (self._max_backlog is not None
                and backlog + tokens > self._max_backlog):
            return self._shed(request_id, kind, ShedOverload(
                f"backlog {backlog} + request {tokens} tokens exceeds "
                f"max_backlog_tokens={self._max_backlog}"))
        if self._slo is not None:
            verdict = self._slo.admit(backlog + tokens,
                                      self.tokens_per_step(),
                                      stream=kind == "generate")
            if verdict is not None:
                return self._shed(request_id, kind, ShedOverload(verdict))
        return True

    def _shed(self, request_id: int, kind: str,
              error: ShedOverload) -> bool:
        self._terminal(request_id, kind, REASON_SHED, error)
        self.stats.shed += 1
        self._m_shed.inc()
        self._instant.append(request_id)
        return False

    def tokens_per_step(self) -> int:
        """Rough per-step token throughput for SLO prediction: the
        token budget when planning with one, else the decode-slot
        count.  Public because front doors (the model router's
        admission gate) price backlog drain time with it."""
        if self._step_token_budget is not None:
            return self._step_token_budget
        if self._planner is not None:
            return self._planner.config.max_slots
        return self.policy.max_batch_size

    def submit(self, inputs: np.ndarray, mask: np.ndarray | None = None,
               now: float | None = None, deadline: float | None = None,
               ttl: float | None = None) -> int:
        """Queue one single-sequence classification request; returns
        its id.  ``inputs``: (L,) tokens or (L, D) patch features.
        ``deadline`` (absolute clock time) or ``ttl`` (seconds from
        now) bounds how long the request may wait or run — past it the
        request is shed with ``deadline_exceeded``."""
        inputs = np.asarray(inputs)
        if inputs.ndim not in (1, 2):
            raise ValueError("submit takes one sequence per request: "
                             f"(L,) or (L, D), got shape {inputs.shape}")
        if not 0 < inputs.shape[0] <= self._pad_to:
            # reject here, not at step() time — a bad request must never
            # take down the batch it would have been coalesced into
            raise ValueError(f"request length {inputs.shape[0]} outside "
                             f"[1, {self._pad_to}]")
        mask = (np.ones(inputs.shape[0], dtype=bool) if mask is None
                else np.asarray(mask, dtype=bool))
        now = self._clock() if now is None else now
        request = QueuedRequest(
            request_id=self._allocate_id(), inputs=inputs, mask=mask,
            arrival=now,
            deadline=self._resolve_deadline(now, deadline, ttl))
        if self._tracer.enabled:
            self._tracer.instant("submit", now, self._pid,
                                 request.request_id, kind="classify",
                                 tokens=int(request.length))
        # an admission-time shed terminates *now*: stamp it at arrival
        self._now = now
        if not self._admit(request.length, request.request_id,
                           "classify"):
            return request.request_id
        self._batcher.add(request)
        return request.request_id

    def open_stream(self, prompt: np.ndarray, max_new_tokens: int,
                    now: float | None = None,
                    deadline: float | None = None,
                    ttl: float | None = None) -> int:
        """Open an autoregressive generation stream (causal-LM engines
        only); ``prompt``: (L,) token ids.  ``deadline``/``ttl`` bound
        the stream's total lifetime — an expired stream stops where it
        is and frees its KV slot."""
        if not hasattr(self.engine.model, "decode_step"):
            raise TypeError("model does not support incremental decode; "
                            "open_stream needs a causal LM")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        limit = min(self._prefill_width, self._capacity - 1)
        if prompt.size == 0 or prompt.size > limit:
            raise ValueError(f"prompt length must be in [1, {limit}]")
        now = self._clock() if now is None else now
        stream = StreamState(
            stream_id=self._allocate_id(), tokens=prompt.copy(),
            max_new_tokens=max_new_tokens, arrival=now,
            deadline=self._resolve_deadline(now, deadline, ttl),
            # request-derived KV budget: never a function of the batch
            kv_capacity=min(self._capacity,
                            prompt.size + max_new_tokens))
        if self._tracer.enabled:
            self._tracer.instant("submit", now, self._pid,
                                 stream.stream_id, kind="generate",
                                 prompt=int(prompt.size),
                                 max_new_tokens=max_new_tokens)
        # an admission-time shed terminates *now*: stamp it at arrival
        self._now = now
        if not self._admit(prompt.size + max_new_tokens,
                           stream.stream_id, "generate"):
            return stream.stream_id
        self._batcher.add_stream(stream)
        self._streams[stream.stream_id] = stream
        return stream.stream_id

    # -- queue introspection (used by the asyncio front end) ------------
    def next_deadline(self) -> float | None:
        return self._batcher.next_deadline()

    def queue_ready(self, now: float) -> bool:
        return self._batcher.ready(now)

    def has_pending(self) -> bool:
        return bool(len(self._batcher) or self._instant
                    or any(not s.done for s in self._streams.values()))

    # -- occupancy introspection (leak checks, admission control) -------
    def kv_slots_in_use(self) -> int:
        """Occupied KVSlotBuffer slots (continuous scheduler)."""
        return len(self._slots) if self._slots is not None else 0

    def queue_depth(self) -> int:
        """Waiting work: queued classify requests + waiting streams."""
        return len(self._batcher) + self._batcher.stream_count()

    def backlog_tokens(self) -> int:
        return self._batcher.backlog_tokens()

    def outstanding_tokens(self) -> int:
        """Token work this engine still owes: everything waiting in its
        queues plus the remaining generation budget of streams already
        running — the worker tier's least-loaded routing signal."""
        if self.continuous:
            live = (self._slots.streams if self._slots is not None
                    else [])
        else:                            # round-based: live = has caches
            live = [s for s in self._streams.values()
                    if not s.done and s.caches is not None]
        remaining = sum(max(s.max_new_tokens - s.new_tokens, 0)
                        for s in live)
        return self._batcher.backlog_tokens() + remaining

    # -- lifecycle: terminal errors, cancellation, deadlines ------------
    def _terminal(self, request_id: int, kind: str, reason: str,
                  error: Exception,
                  stream: StreamState | None = None) -> None:
        """Record a typed non-ok terminal result."""
        self.stats.record_terminal(reason)
        self._m_reasons[reason].inc()
        if self._tracer.enabled:
            self._tracer.instant("finish", self._now, self._pid,
                                 request_id, reason=reason)
            if stream is not None:
                self._tracer.complete("request", stream.arrival,
                                      self._now - stream.arrival,
                                      self._pid, request_id,
                                      reason=reason, kind=kind)
        self._results[request_id] = ServeResult(
            request_id=request_id, kind=kind,
            logits=(stream.last_logits
                    if stream is not None
                    and stream.last_logits is not None else np.zeros(0)),
            tokens=(stream.tokens.copy() if stream is not None else None),
            batch_sizes=(list(stream.batch_sizes)
                         if stream is not None else []),
            error=error, reason=reason,
            timing=(self._stream_timing(stream)
                    if stream is not None else None))

    def _stream_timing(self, stream: StreamState) -> RequestTiming:
        return RequestTiming(
            arrival=stream.arrival, finished=self._now,
            first_token=(stream.token_times[0]
                         if stream.token_times else None),
            token_times=tuple(stream.token_times))

    def _terminate_stream(self, stream: StreamState, reason: str,
                          error: Exception) -> None:
        """Stop a live stream wherever it is — waiting, swapped out,
        running in a slot, or live round-based — and free every bit of
        its KV state (slot row or per-stream caches)."""
        self._batcher.discard_stream(stream.stream_id)
        if stream.slot is not None:
            self._slots.evict(stream)
        stream.evict()
        stream.done = True
        self._terminal(stream.stream_id, "generate", reason, error,
                       stream=stream)

    def cancel(self, request_id: int) -> bool:
        """Cancel a pending request or live stream: it terminates with
        reason ``cancelled`` and every queue entry and KV slot it held
        is released.  Returns False if the request already finished
        (its existing result stands); raises KeyError for ids this
        engine never issued."""
        if request_id in self._results:
            return False
        self._now = self._clock()
        stream = self._streams.get(request_id)
        if stream is not None:
            if stream.done:
                return False
            self._terminate_stream(stream, REASON_CANCELLED,
                                   RequestCancelled(
                                       f"request {request_id} cancelled"))
            self.stats.cancelled += 1
            self._instant.append(request_id)
            return True
        request = self._batcher.discard(request_id)
        if request is None:
            raise KeyError(f"unknown request {request_id}")
        self._terminal(request_id, "classify", REASON_CANCELLED,
                       RequestCancelled(
                           f"request {request_id} cancelled"))
        self.stats.cancelled += 1
        self._instant.append(request_id)
        return True

    def _shed_expired(self, now: float) -> list[int]:
        """Terminate everything whose deadline has passed: queued
        classify requests, and streams in any state (waiting, swapped,
        or holding a KV slot)."""
        completed: list[int] = []
        for request in self._batcher.shed_expired(now):
            self._terminal(request.request_id, "classify",
                           REASON_DEADLINE, DeadlineExceeded(
                               f"request {request.request_id} missed "
                               f"deadline {request.deadline:.6f}"))
            self.stats.expired += 1
            completed.append(request.request_id)
        for stream in list(self._streams.values()):
            if stream.done or not stream.expired(now):
                continue
            self._terminate_stream(stream, REASON_DEADLINE,
                                   DeadlineExceeded(
                                       f"stream {stream.stream_id} missed "
                                       f"deadline {stream.deadline:.6f}"))
            self.stats.expired += 1
            completed.append(stream.stream_id)
        return completed

    def _drain_instant(self) -> list[int]:
        drained, self._instant = self._instant, []
        return drained

    # -- quarantine support (driven by the model router) ----------------
    def drain_waiting(self) -> tuple[list[QueuedRequest], list]:
        """Pull every piece of not-yet-started work out of the queues
        for rerouting: (queued classify requests, waiting *fresh*
        streams).  Swapped-out streams carry KV state and partial
        generations bound to this engine's model, so they stay behind
        (``abort_all`` fails them fast)."""
        requests: list[QueuedRequest] = []
        while len(self._batcher):
            requests += self._batcher.pop()[1]
        fresh, kept = [], []
        for stream in self._batcher.pop_streams():
            (fresh if stream.new_tokens == 0 and stream.caches is None
             else kept).append(stream)
        for stream in kept:
            self._batcher.add_stream(stream)
        for stream in fresh:
            self._streams.pop(stream.stream_id, None)
        return requests, fresh

    def abort_all(self, error: Exception) -> list[int]:
        """Fail-fast everything still live — queued requests, waiting/
        swapped/running streams — with ``engine_error``, releasing all
        queue entries, caches and KV slots.  Returns the ids that
        terminated (plus any unreported instant terminations), so a
        quarantining router can fan the failures out instead of letting
        the work stall silently."""
        completed = self._drain_instant()
        while len(self._batcher):
            for request in self._batcher.pop()[1]:
                self._terminal(request.request_id, "classify",
                               REASON_ERROR, error)
                completed.append(request.request_id)
        for stream in list(self._streams.values()):
            if stream.done:
                continue
            self._terminate_stream(stream, REASON_ERROR, error)
            completed.append(stream.stream_id)
        return completed

    # -- advancing ------------------------------------------------------
    def step(self, now: float | None = None,
             budget: int | None = None) -> list[int]:
        """One scheduler step: flush every due classification batch,
        then advance the streams — round-based (prefill everything,
        decode every live stream) or continuous (plan admissions /
        preemptions, decode the slot batch).  ``budget`` caps the
        continuous scheduler's decode slots this step (the model
        router's shared step budget).  Returns ids completed during
        this step."""
        if self._faults is not None:
            # injected step latency: burn it before reading the clock
            # so this step (and its deadline checks) observe the delay
            self._faults.latency_check()
        now = self._clock() if now is None else now
        self._now = now
        self.last_step_errors = 0
        completed = self._drain_instant()
        completed += self._shed_expired(now)
        while self._batcher.ready(now):
            completed += self._serve_classify(*self._batcher.pop(now))
        completed += self._stream_step(budget)
        if self._slo is not None:
            # refine the SLO model's step-time estimate from the wall
            # duration this step actually took (no-op on virtual clocks)
            self._slo.observe_step(self._clock() - now)
        self._m_steps.inc()
        if self._registry.enabled:
            # gauges need derived queue walks — skip them entirely on
            # the null registry to keep the uninstrumented path flat
            self._m_step_seconds.observe(self._clock() - now)
            self._m_queue_depth.set(self.queue_depth())
            self._m_backlog.set(self._batcher.backlog_tokens())
            self._m_kv_in_use.set(self.kv_slots_in_use())
        return completed

    def flush(self) -> list[int]:
        """Serve the waiting classification queue immediately,
        ignoring ``max_wait``."""
        self._now = self._clock()
        completed = self._drain_instant()
        completed += self._shed_expired(self._now)
        while len(self._batcher):
            completed += self._serve_classify(*self._batcher.pop())
        return completed

    def drain(self) -> list[int]:
        """Run everything pending to completion (demo / test helper)."""
        completed = self.flush()
        while any(not s.done for s in self._streams.values()):
            self._now = self._clock()
            completed += self._stream_step(None)
        return completed

    # -- completion -----------------------------------------------------
    def result(self, request_id: int) -> ServeResult | None:
        """Peek at a finished request's result (None while pending)."""
        return self._results.get(request_id)

    def collect(self, request_id: int) -> ServeResult:
        """Collect a result and release all of its state *without*
        raising its typed terminal error — the IPC worker surface:
        process workers ship every result (ok or failed) back over the
        socket and let the parent tier decide whether to raise.
        Collecting a live generation stream stops it early and evicts
        its caches, exactly like :meth:`finish`."""
        if request_id in self._results:
            self._streams.pop(request_id, None)
            return self._results.pop(request_id)
        stream = self._streams.get(request_id)
        if stream is None:
            raise KeyError(f"unknown or still-queued request "
                           f"{request_id}")
        self._batcher.discard_stream(request_id)
        if stream.slot is not None:         # running in the slot buffer
            self._slots.evict(stream)
        self._finalize_stream(stream)
        self._streams.pop(request_id, None)
        return self._results.pop(request_id)

    def finish(self, request_id: int) -> ServeResult:
        """Collect a result and release all of its state (raising the
        serve-time error, if the request failed).  Finishing a live
        generation stream stops it early and evicts its caches."""
        result = self.collect(request_id)
        if result.error is not None:
            raise result.error
        return result

    # -- internals ------------------------------------------------------
    def _allocate_id(self) -> int:
        self._next_id += 1
        return self._next_id - 1

    def _with_retries(self, call):
        """Run one model forward under the fault plan and retry
        policy.  Transient failures (injected or real) are retried up
        to ``retries`` times with exponential backoff; a forward is a
        pure function of its inputs, so a successful retry yields
        bit-identical results.  Exhausted retries re-raise for the
        caller's containment (fail the batch, not the engine)."""
        attempt = 0
        while True:
            try:
                if self._faults is not None:
                    self._faults.kernel_check()
                return call()
            except Exception:            # noqa: BLE001 — retried/reraised
                self.stats.errors += 1
                self._m_errors.inc()
                if attempt >= self._retries:
                    raise
                if self._retry_backoff > 0:
                    self._sleep(self._retry_backoff * (2 ** attempt))
                attempt += 1
                self.stats.retries += 1
                self._m_retries.inc()

    def _serve_classify(self, bucket: int,
                        requests: list[QueuedRequest]) -> list[int]:
        try:
            batch: CoalescedBatch = coalesce(requests, bucket)
            predictions, logits, records = self._with_retries(
                lambda: self.engine.predict_many(
                    batch.inputs, batch.mask,
                    collect_records=self._estimate_hw))
        except Exception as error:       # noqa: BLE001
            # fail exactly this batch's requests; traffic queued in
            # other buckets/batches must keep flowing
            self.last_step_errors += 1
            completed = []
            for request in requests:
                self._terminal(request.request_id, "classify",
                               REASON_ERROR, error)
                completed.append(request.request_id)
            return completed
        self.stats.record_batch(len(requests))
        self._m_batch_size.observe(len(requests))
        slices = estimates = None
        if records is not None:
            # per-step accounting: slice this batch's records into one
            # group per request and charge them in a single shared-
            # simulator pass (each group's estimate is bit-identical
            # to a solo estimate of that request)
            slices = [[slice_record(r, i, int(batch.lengths[i]),
                                    int(batch.lengths[i]))
                       for r in records]
                      for i in range(len(requests))]
            estimates = self.engine.estimate_many(
                slices, self._hw_config, pack_cache=self._pack_cache,
                pack_groups=[r.request_id for r in requests],
                profiler=self._profiler)
        completed = []
        for i, request in enumerate(requests):
            length = int(batch.lengths[i])
            estimate = sliced = None
            if estimates is not None:
                sliced = slices[i]
                estimate = estimates[i]
                self.stats.hardware.add(estimate)
            if self._per_position:
                row = logits[i, :length].copy()
                prediction = int(row.argmax())
            else:
                row = logits[i].copy()
                prediction = int(predictions[i])
            self._results[request.request_id] = ServeResult(
                request_id=request.request_id, kind="classify",
                logits=row, prediction=prediction, hardware=estimate,
                records=sliced, batch_sizes=[len(requests)],
                timing=RequestTiming(arrival=request.arrival,
                                     finished=self._now,
                                     first_token=self._now))
            self.stats.record_terminal(REASON_OK)
            self._m_reasons[REASON_OK].inc()
            if self._tracer.enabled:
                rid = request.request_id
                self._tracer.complete("queue", request.arrival,
                                      self._now - request.arrival,
                                      self._pid, rid)
                self._tracer.complete("request", request.arrival,
                                      self._now - request.arrival,
                                      self._pid, rid, reason=REASON_OK,
                                      kind="classify",
                                      batch=len(requests))
                self._tracer.instant("finish", self._now, self._pid,
                                     rid, reason=REASON_OK)
            completed.append(request.request_id)
        return completed

    def _forward(self, forward):
        """Run a model call (with retries under the fault plan),
        capturing attention records when hardware accounting is on."""
        def run():
            if self._estimate_hw:
                return self.engine.run_recorded(forward)
            from ..tensor import no_grad
            with no_grad():
                return forward(), None
        return self._with_retries(run)

    def _stream_step(self, budget: int | None) -> list[int]:
        if self.continuous:
            return self._continuous_step(budget)
        completed = self._prefill_pending()
        completed += self._decode_round()
        return completed

    # -- round-based scheduler ------------------------------------------
    def _prefill_pending(self) -> list[int]:
        completed: list[int] = []
        while self._batcher.stream_count():
            chunk = self._batcher.pop_streams(self.policy.max_batch_size)
            completed += self._prefill(chunk)
        return completed

    def _decode_round(self) -> list[int]:
        live = [s for s in self._streams.values()
                if not s.done and s.caches is not None]
        live.sort(key=lambda s: s.stream_id)
        completed: list[int] = []
        model = self.engine.model
        size = self.policy.max_batch_size
        for start in range(0, len(live), size):
            chunk = live[start:start + size]
            caches = stack_caches(chunk, self._capacity,
                                  len(model.blocks))
            completed += self._decode(chunk, caches)
            unstack_caches(chunk, caches)
            for stream in chunk:
                if stream.done:
                    stream.evict()
        return completed

    # -- continuous scheduler -------------------------------------------
    def _slot_buffer(self) -> KVSlotBuffer:
        if self._slots is None:
            model = self.engine.model
            attention = model.blocks[0].attention
            self._slots = KVSlotBuffer(
                slots=self._planner.config.max_slots,
                num_blocks=len(model.blocks),
                heads=attention.num_heads,
                head_dim=attention.head_dim,
                capacity=self._capacity,
                counters=(self._kv_counters if self._registry.enabled
                          else None))
        return self._slots

    def _continuous_step(self, budget: int | None) -> list[int]:
        """One planned step: preempt under pressure, admit waiting
        streams into free slots (fresh ones prefill this step — the
        chunked-prefill piggyback), decode the slot batch once."""
        if (not self._batcher.stream_count()
                and (self._slots is None or not len(self._slots))):
            return []                   # idle: don't even allocate KV
        slots = self._slot_buffer()
        # price the waiting-queue head for the token-budget planner: a
        # fresh stream charges its whole prompt (chunked prefill) plus
        # its decode token; a swapped-out resumer just decodes
        waiting_tokens = [1 if s.swapped else s.length + 1
                          for s in self._batcher.peek_streams(
                              self._planner.config.max_slots)]
        plan = self._planner.plan(slots.streams,
                                  self._batcher.stream_count(), budget,
                                  waiting_tokens=waiting_tokens)
        for stream in plan.preempt:
            slots.swap_out(stream)
            self._batcher.add_stream(stream)
        admitted = self._batcher.pop_streams(plan.admit_slots)
        resumed = [s for s in admitted if s.swapped]
        fresh = [s for s in admitted if not s.swapped]
        if self._tracer.enabled:
            for stream in plan.preempt:
                self._tracer.instant("preempt", self._now, self._pid,
                                     stream.stream_id)
            for stream in admitted:
                self._tracer.instant("admit", self._now, self._pid,
                                     stream.stream_id,
                                     resumed=stream.swapped)
        for stream in resumed:
            caches, stream.caches = stream.caches, None
            slots.admit(stream, caches)
        completed: list[int] = []
        if fresh:
            completed += self._prefill(fresh, slots=slots)
        self.stats.record_step(admitted=len(admitted),
                               preempted=len(plan.preempt),
                               resumed=len(resumed))
        self._m_admitted.inc(len(admitted))
        self._m_preempted.inc(len(plan.preempt))
        self._m_resumed.inc(len(resumed))
        if len(slots):
            caches = slots.batch()
            chunk = list(slots.streams)
            completed += self._decode(chunk, caches)
            slots.advance(caches)
            for stream in chunk:
                if stream.done:
                    slots.evict(stream)
        return completed

    # -- shared model-facing sub-steps ----------------------------------
    def _prefill(self, streams: list[StreamState],
                 slots: KVSlotBuffer | None = None) -> list[int]:
        """Coalesced prompt prefill; survivors keep their caches
        per-stream (round-based) or move straight into the slot buffer
        (continuous)."""
        model = self.engine.model
        lengths = np.array([s.length for s in streams], dtype=np.int64)
        tokens = np.zeros((len(streams), self._prefill_width),
                          dtype=np.int64)
        for i, stream in enumerate(streams):
            tokens[i, :stream.length] = stream.tokens
        try:
            (logits, caches), records = self._forward(
                lambda: model.prefill(tokens, lengths))
        except Exception as error:       # noqa: BLE001 — contained
            # fail exactly this prefill chunk (no slots or caches were
            # allocated yet); other streams keep flowing
            return self._fail_chunk(streams, error)
        self.stats.record_batch(len(streams))
        self._m_batch_size.observe(len(streams))
        completed = []
        for i, stream in enumerate(streams):
            size = int(lengths[i])
            if self._tracer.enabled:
                self._tracer.complete("queue", stream.arrival,
                                      self._now - stream.arrival,
                                      self._pid, stream.stream_id)
                self._tracer.complete("prefill-chunk", self._now, 0.0,
                                      self._pid, stream.stream_id,
                                      tokens=size, batch=len(streams))
            trimmed = [
                {"k": cache["k"].data[i, :, :size],
                 "v": cache["v"].data[i, :, :size]}
                for cache in caches]
            if records is not None:
                stream.add_records(
                    [slice_record(r, i, size, size) for r in records])
            stream.batch_sizes.append(len(streams))
            stream.append(int(logits[i].argmax()))
            stream.token_times.append(self._now)
            stream.last_logits = logits[i].copy()
            if self._stream_exhausted(stream):
                self._finalize_stream(stream)
                completed.append(stream.stream_id)
            elif slots is not None:
                slots.admit(stream, trimmed)
            else:
                stream.caches = [{"k": c["k"].copy(), "v": c["v"].copy()}
                                 for c in trimmed]
        return completed

    def _decode(self, chunk: list[StreamState],
                caches: list[dict]) -> list[int]:
        """One coalesced decode forward over ``chunk`` (whose rows are
        already stacked in ``caches``); appends tokens, slices records,
        and finalizes exhausted streams (cache release is the
        scheduler's job — rows were sliced against this forward's
        composition)."""
        model = self.engine.model
        last = np.array([s.tokens[-1] for s in chunk], dtype=np.int64)
        histories = [int(n) for n in caches[0]["lengths"]]
        try:
            logits, records = self._forward(
                lambda: model.decode_step(last, caches))
        except Exception as error:       # noqa: BLE001 — contained
            # fail exactly this decode chunk; the scheduler's done-
            # stream sweep releases the KV state (slot rows or caches)
            # after the shared buffers are settled
            return self._fail_chunk(chunk, error)
        self.stats.decode_rounds += 1
        self.stats.record_batch(len(chunk))
        self._m_batch_size.observe(len(chunk))
        completed = []
        for i, stream in enumerate(chunk):
            if self._tracer.enabled:
                self._tracer.complete("decode-step", self._now, 0.0,
                                      self._pid, stream.stream_id,
                                      batch=len(chunk))
            if records is not None:
                stream.add_records(
                    [slice_record(r, i, 1, histories[i] + 1)
                     for r in records])
            stream.batch_sizes.append(len(chunk))
            stream.steps_since_admit += 1
            stream.append(int(logits[i].argmax()))
            stream.token_times.append(self._now)
            stream.last_logits = logits[i].copy()
            if self._stream_exhausted(stream):
                self._finalize_stream(stream)
                completed.append(stream.stream_id)
        return completed

    def _fail_chunk(self, streams: list[StreamState],
                    error: Exception) -> list[int]:
        """Terminate the streams of one failed coalesced forward with
        ``engine_error``.  Slot/cache release is deliberately left to
        the calling scheduler's done-stream sweep, which already evicts
        finished streams once the shared buffers are consistent."""
        self.last_step_errors += 1
        for stream in streams:
            stream.done = True
            self._terminal(stream.stream_id, "generate", REASON_ERROR,
                           error, stream=stream)
        return [s.stream_id for s in streams]

    def _stream_exhausted(self, stream: StreamState) -> bool:
        return (stream.new_tokens >= stream.max_new_tokens
                or stream.length >= self._capacity)

    def _finalize_stream(self, stream: StreamState) -> None:
        stream.done = True
        estimate = None
        if self._estimate_hw and stream.records_by_layer:
            estimate = self.engine.estimate_from_records(
                stream.flat_records(), self._hw_config,
                pack_cache=self._pack_cache,
                pack_group=stream.stream_id,
                profiler=self._profiler)
            self.stats.hardware.add(estimate)
        stream.evict()
        self.stats.record_terminal(REASON_OK)
        self._m_reasons[REASON_OK].inc()
        if self._tracer.enabled:
            self._tracer.complete("request", stream.arrival,
                                  self._now - stream.arrival,
                                  self._pid, stream.stream_id,
                                  reason=REASON_OK, kind="generate",
                                  new_tokens=int(stream.new_tokens))
            self._tracer.instant("finish", self._now, self._pid,
                                 stream.stream_id, reason=REASON_OK)
        self._results[stream.stream_id] = ServeResult(
            request_id=stream.stream_id, kind="generate",
            logits=(stream.last_logits if stream.last_logits is not None
                    else np.zeros(0)),
            tokens=stream.tokens.copy(), hardware=estimate,
            records=(stream.flat_records()
                     if stream.records_by_layer else None),
            batch_sizes=list(stream.batch_sizes),
            timing=self._stream_timing(stream))
