"""Deterministic fault injection: seeded chaos plans that replay
bit-identically.

A :class:`FaultPlan` is a list of :class:`Fault` records, each armed
for the *N*-th occurrence of a named event stream — ``"forward"``
(model forwards inside a serving engine), ``"latency"`` (scheduler
steps), ``"worker"`` (sweep training attempts) and ``"save"`` (store
publishes).  Consumers call :meth:`FaultPlan.draw` once per event;
when an armed fault matches the event's index it is returned exactly
once (and recorded in ``fired``), so a fixed plan driven by the same
traffic injects the same faults at the same places every run — the
chaos soak in ``tests/test_faults.py`` leans on this to pin recovery
behavior.

Plans are picklable (sweep workers receive them across the process
boundary); the only mutable runtime state is the per-kind counters,
which each process advances independently — a worker that handles one
training attempt sees event index 0 for it, which is why worker-scoped
faults match on ``(target, attempt)`` instead of a global index.

``FaultPlan.seeded`` derives a reproducible random plan from a seed so
soak tests can sweep many chaos scenarios without hand-writing each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

KINDS = ("forward", "latency", "worker", "save")


class InjectedKernelError(RuntimeError):
    """The failure a ``forward`` fault raises inside the engine —
    stands in for a real kernel/backend exception."""


@dataclass(frozen=True)
class Fault:
    """One armed fault.

    ``kind``: which event stream it fires on (see :data:`KINDS`).
    ``at``: 0-based index into that event stream (for ``worker`` and
    ``save`` faults, the *attempt* number for ``target``).
    ``target``: workload name (worker/save faults) — ``None`` matches
    any target.
    ``seconds``: injected delay for ``latency`` faults.
    """

    kind: str
    at: int
    target: str | None = None
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.at < 0:
            raise ValueError("fault index must be >= 0")


@dataclass
class FaultPlan:
    """A replayable chaos scenario.

    ``sleeper`` is how latency faults pass time — ``time.sleep`` by
    default, swapped for a virtual-clock advance in tests so injected
    latency is deterministic *and* instant.
    """

    faults: list[Fault] = field(default_factory=list)
    sleeper: object = time.sleep
    fired: list[Fault] = field(default_factory=list)
    _counters: dict[str, int] = field(default_factory=dict)

    @classmethod
    def seeded(cls, seed: int, forwards: int = 0, horizon: int = 64,
               latencies: int = 0, max_seconds: float = 0.05,
               **kwargs) -> "FaultPlan":
        """Derive a random-but-replayable engine chaos plan: the same
        seed always arms the same fault indices."""
        rng = np.random.default_rng(seed)
        faults = []
        if forwards:
            for at in sorted(rng.choice(horizon, size=forwards,
                                        replace=False).tolist()):
                faults.append(Fault(kind="forward", at=int(at)))
        if latencies:
            for at in sorted(rng.choice(horizon, size=latencies,
                                        replace=False).tolist()):
                faults.append(Fault(
                    kind="latency", at=int(at),
                    seconds=float(rng.uniform(0, max_seconds))))
        return cls(faults=faults, **kwargs)

    # -- event-stream protocol ------------------------------------------
    def _index(self, kind: str) -> int:
        index = self._counters.get(kind, 0)
        self._counters[kind] = index + 1
        return index

    def draw(self, kind: str, target: str | None = None,
             at: int | None = None) -> Fault | None:
        """Consume one event of ``kind``; returns the armed fault for
        it, at most once.  ``at`` overrides the automatic event counter
        (worker/save faults match on the caller-supplied attempt
        number)."""
        index = self._index(kind) if at is None else at
        for fault in self.faults:
            if fault in self.fired or fault.kind != kind:
                continue
            if fault.at != index:
                continue
            if fault.target is not None and fault.target != target:
                continue
            self.fired.append(fault)
            return fault
        return None

    # -- consumer helpers -----------------------------------------------
    def kernel_check(self) -> None:
        """One model forward is about to run; raise if a fault is
        armed for it (the engine's retry loop re-draws, so a transient
        single-shot fault is survivable)."""
        fault = self.draw("forward")
        if fault is not None:
            raise InjectedKernelError(
                f"injected kernel fault (forward #{fault.at})")

    def latency_check(self) -> None:
        """One scheduler step is starting; burn the injected delay
        through ``sleeper`` if a latency fault is armed."""
        fault = self.draw("latency")
        if fault is not None:
            self.sleeper(fault.seconds)

    def worker_dies(self, target: str, attempt: int) -> bool:
        """Should the sweep worker training ``target`` on this attempt
        die abruptly (simulating a crashed process)?"""
        return self.draw("worker", target=target, at=attempt) is not None

    def corrupt_save(self, target: str, attempt: int) -> bool:
        """Should the entry just published for ``target`` be corrupted
        (simulating a torn write / bad disk)?"""
        return self.draw("save", target=target, at=attempt) is not None

    def reset(self) -> "FaultPlan":
        """A fresh copy of this plan with nothing fired yet (replay)."""
        return FaultPlan(faults=[replace(f) for f in self.faults],
                         sleeper=self.sleeper)
