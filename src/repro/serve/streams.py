"""Per-stream decode state: token history, KV caches, eviction.

A stream's KV cache is stored unpadded — one (H, length, Dh) array per
transformer block — and only exists while the stream is live.  Each
coalesced decode step stacks the participating streams into shared
fixed-capacity buffers (left-aligned, zero-padded) for the model's
scatter-protocol ``decode_step``, then slices the updated histories
back out.  Zero padding beyond each stream's length is exact under the
masked attention math, so a stream's rows carry the same bit patterns
regardless of which other streams were coalesced with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class StreamState:
    """One live generation stream."""

    stream_id: int
    tokens: np.ndarray                  # prompt + generated so far
    max_new_tokens: int
    arrival: float
    new_tokens: int = 0
    caches: list[dict] | None = None    # per block {"k","v": (H, len, Dh)}
    last_logits: np.ndarray | None = None
    # layer-major record accumulation mirrors the solo collection order
    # (all of layer 0's steps, then layer 1's, ...), so per-stream
    # hardware estimates see jobs in the same order as a solo run
    records_by_layer: dict[int, list] = field(default_factory=dict)
    batch_sizes: list[int] = field(default_factory=list)
    done: bool = False

    @property
    def length(self) -> int:
        return int(self.tokens.shape[0])

    def append(self, token: int) -> None:
        self.tokens = np.append(self.tokens, np.int64(token))
        self.new_tokens += 1

    def add_records(self, records) -> None:
        for record in records:
            self.records_by_layer.setdefault(record.layer_index,
                                             []).append(record)

    def flat_records(self) -> list:
        return [record
                for layer in sorted(self.records_by_layer)
                for record in self.records_by_layer[layer]]

    def evict(self) -> None:
        """Drop the KV caches; the stream keeps only its tokens."""
        self.caches = None


def stack_caches(streams: list[StreamState], capacity: int,
                 num_blocks: int) -> list[dict]:
    """Stack per-stream caches into shared scatter-protocol buffers.

    Returns one dict per block: "k"/"v" float buffers of shape
    (B, H, capacity, Dh) with each stream's history left-aligned at
    row ``b``, plus "lengths" (B,).
    """
    lengths = np.array([s.caches[0]["k"].shape[1] for s in streams],
                       dtype=np.int64)
    heads, _, head_dim = streams[0].caches[0]["k"].shape
    batched: list[dict] = []
    for block in range(num_blocks):
        buf_k = np.zeros((len(streams), heads, capacity, head_dim))
        buf_v = np.zeros_like(buf_k)
        for b, stream in enumerate(streams):
            cache = stream.caches[block]
            size = cache["k"].shape[1]
            buf_k[b, :, :size] = cache["k"]
            buf_v[b, :, :size] = cache["v"]
        batched.append({"k": buf_k, "v": buf_v, "lengths": lengths.copy()})
    return batched


def unstack_caches(streams: list[StreamState],
                   batched: list[dict]) -> None:
    """Slice each stream's grown history back out of the shared
    buffers after a decode step (lengths were advanced in place)."""
    lengths = batched[0]["lengths"]
    for b, stream in enumerate(streams):
        size = int(lengths[b])
        stream.caches = [{"k": cache["k"][b, :, :size].copy(),
                          "v": cache["v"][b, :, :size].copy()}
                         for cache in batched]
