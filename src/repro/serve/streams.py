"""Per-stream decode state: token history, KV caches, slots, swap.

A stream's KV cache is stored unpadded — one (H, length, Dh) array per
transformer block — and only exists while the stream is live.  The
round-based scheduler stacks the participating streams into shared
fixed-capacity buffers per decode round (``stack_caches`` /
``unstack_caches``); the continuous scheduler instead admits each
stream into a persistent :class:`KVSlotBuffer` slot once, decodes in
place step after step, and only copies K/V rows again on eviction or
preemption (swap-out).  Zero padding beyond each stream's length is
exact under the masked attention math, so a stream's rows carry the
same bit patterns regardless of which other streams share the buffer,
which slot it occupies, or how often it was swapped out and back in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


# eq=False: streams compare by identity — the planner's membership
# tests must never try to == numpy token arrays
@dataclass(eq=False)
class StreamState:
    """One live generation stream."""

    stream_id: int
    tokens: np.ndarray                  # prompt + generated so far
    max_new_tokens: int
    arrival: float
    deadline: float | None = None       # absolute; shed once passed
    # request-derived KV capacity (rows this stream may ever occupy);
    # set by the serving engine from prompt length + max_new_tokens so
    # kernel shapes never depend on batch composition
    kv_capacity: int | None = None
    new_tokens: int = 0
    caches: list[dict] | None = None    # per block {"k","v": (H, len, Dh)}
    # continuous-scheduler state: which KVSlotBuffer slot the stream
    # occupies while running (None while waiting/swapped/finished), and
    # decode steps taken since it was last (re)admitted — the planner's
    # preemption clock
    slot: int | None = None
    steps_since_admit: int = 0
    preemptions: int = 0
    last_logits: np.ndarray | None = None
    # engine-clock timestamp of every emitted token (first entry is the
    # prefill's token — the TTFT mark); the load generator reads these
    # off the terminal result to compute TTFT/TBT percentiles
    token_times: list[float] = field(default_factory=list)
    # layer-major record accumulation mirrors the solo collection order
    # (all of layer 0's steps, then layer 1's, ...), so per-stream
    # hardware estimates see jobs in the same order as a solo run
    records_by_layer: dict[int, list] = field(default_factory=dict)
    batch_sizes: list[int] = field(default_factory=list)
    done: bool = False

    @property
    def length(self) -> int:
        return int(self.tokens.shape[0])

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def append(self, token: int) -> None:
        self.tokens = np.append(self.tokens, np.int64(token))
        self.new_tokens += 1

    def add_records(self, records) -> None:
        for record in records:
            self.records_by_layer.setdefault(record.layer_index,
                                             []).append(record)

    def flat_records(self) -> list:
        return [record
                for layer in sorted(self.records_by_layer)
                for record in self.records_by_layer[layer]]

    def evict(self) -> None:
        """Drop the KV caches; the stream keeps only its tokens."""
        self.caches = None

    @property
    def swapped(self) -> bool:
        """True for a preempted stream holding swapped-out KV state
        (resumable without a prefill)."""
        return self.slot is None and self.caches is not None


def stack_caches(streams: list[StreamState], capacity: int,
                 num_blocks: int) -> list[dict]:
    """Stack per-stream caches into shared scatter-protocol buffers.

    Returns one dict per block: "k"/"v" float buffers of shape
    (B, H, capacity, Dh) with each stream's history left-aligned at
    row ``b``, plus "lengths" (B,).
    """
    lengths = np.array([s.caches[0]["k"].shape[1] for s in streams],
                       dtype=np.int64)
    heads, _, head_dim = streams[0].caches[0]["k"].shape
    batched: list[dict] = []
    for block in range(num_blocks):
        buf_k = np.zeros((len(streams), heads, capacity, head_dim))
        buf_v = np.zeros_like(buf_k)
        for b, stream in enumerate(streams):
            cache = stream.caches[block]
            size = cache["k"].shape[1]
            buf_k[b, :, :size] = cache["k"]
            buf_v[b, :, :size] = cache["v"]
        batched.append({"k": buf_k, "v": buf_v, "lengths": lengths.copy()})
    return batched


def unstack_caches(streams: list[StreamState],
                   batched: list[dict]) -> None:
    """Slice each stream's grown history back out of the shared
    buffers after a decode step (lengths were advanced in place)."""
    lengths = batched[0]["lengths"]
    for b, stream in enumerate(streams):
        size = int(lengths[b])
        stream.caches = [{"k": cache["k"][b, :, :size].copy(),
                          "v": cache["v"][b, :, :size].copy()}
                         for cache in batched]


class KVSlotBuffer:
    """Persistent decode buffer with in-place admit / evict / swap.

    The continuous scheduler's KV home: one pair of fixed-capacity
    ``(slots, H, capacity, Dh)`` buffers per transformer block, with a
    stream pinned to one slot row for as long as it runs.  Occupied
    slots are kept prefix-compact (``streams[i]`` lives in slot ``i``),
    so the per-step model batch is a zero-copy view ``buffer[:active]``
    — K/V bytes move only when a stream is admitted, evicted, or
    swapped out, never per decode step.

    Compaction moves at most one stream per eviction (the last slot
    fills the hole).  Row position never changes a stream's math — each
    row attends only over its own left-aligned history — so slot moves
    and batch-row order are invisible to outputs, masks, and hardware
    records.

    ``counters`` optionally mirrors slot churn into live metrics: a
    mapping with ``"admit"``/``"evict"``/``"swap_out"`` values
    exposing ``inc()`` (the serving engine binds
    ``repro_kv_slot_events_total`` series and hands them in).
    """

    def __init__(self, slots: int, num_blocks: int, heads: int,
                 head_dim: int, capacity: int, counters=None):
        self.capacity = capacity
        self._k = [np.zeros((slots, heads, capacity, head_dim))
                   for _ in range(num_blocks)]
        self._v = [np.zeros((slots, heads, capacity, head_dim))
                   for _ in range(num_blocks)]
        self._lengths = np.zeros(slots, dtype=np.int64)
        self._capacities = np.zeros(slots, dtype=np.int64)
        self.streams: list[StreamState] = []
        self.counters = counters

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def slots(self) -> int:
        return self._lengths.shape[0]

    @property
    def free(self) -> int:
        return self.slots - len(self.streams)

    def admit(self, stream: StreamState, caches: list[dict]) -> int:
        """Copy a stream's unpadded per-block K/V history (prefill
        output or swapped-out state) into the next free slot."""
        if not self.free:
            raise RuntimeError("no free KV slots")
        slot = len(self.streams)
        size = caches[0]["k"].shape[1]
        for block, cache in enumerate(caches):
            self._k[block][slot, :, :size] = cache["k"]
            self._v[block][slot, :, :size] = cache["v"]
        self._lengths[slot] = size
        self._capacities[slot] = (stream.kv_capacity
                                  if stream.kv_capacity is not None
                                  else self.capacity)
        stream.slot = slot
        stream.steps_since_admit = 0
        stream.caches = None             # the slot is the KV home now
        self.streams.append(stream)
        if self.counters is not None:
            self.counters["admit"].inc()
        return slot

    def evict(self, stream: StreamState) -> None:
        """Release a stream's slot in place, compacting the prefix by
        moving the last occupied slot into the hole."""
        slot = stream.slot
        if slot is None or self.streams[slot] is not stream:
            raise ValueError(f"stream {stream.stream_id} holds no slot")
        last = len(self.streams) - 1
        if slot != last:
            moved = self.streams[last]
            size = int(self._lengths[last])
            for block in range(len(self._k)):
                self._k[block][slot] = 0.0
                self._k[block][slot, :, :size] = \
                    self._k[block][last, :, :size]
                self._v[block][slot] = 0.0
                self._v[block][slot, :, :size] = \
                    self._v[block][last, :, :size]
            self._lengths[slot] = self._lengths[last]
            self._capacities[slot] = self._capacities[last]
            moved.slot = slot
            self.streams[slot] = moved
        # zero the vacated tail slot so a future admit starts from the
        # exact zero padding solo runs see
        for block in range(len(self._k)):
            self._k[block][last] = 0.0
            self._v[block][last] = 0.0
        self._lengths[last] = 0
        self._capacities[last] = 0
        self.streams.pop()
        stream.slot = None
        if self.counters is not None:
            self.counters["evict"].inc()

    def swap_out(self, stream: StreamState) -> None:
        """Preempt: copy the stream's rows (trimmed to its length) back
        into per-stream state and free the slot.  ``admit`` restores
        the identical bytes, so a swap round-trip is bit-invisible."""
        slot = stream.slot
        size = int(self._lengths[slot])
        stream.caches = [
            {"k": self._k[block][slot, :, :size].copy(),
             "v": self._v[block][slot, :, :size].copy()}
            for block in range(len(self._k))]
        stream.preemptions += 1
        self.evict(stream)
        if self.counters is not None:
            self.counters["swap_out"].inc()

    def batch(self) -> list[dict]:
        """Scatter-protocol views over the occupied prefix for
        ``decode_step``: K/V writes land in the persistent buffers;
        each block gets its own lengths copy (the model advances them
        per block) plus the per-stream capacity guard."""
        active = len(self.streams)
        return [{"k": self._k[block][:active],
                 "v": self._v[block][:active],
                 "lengths": self._lengths[:active].copy(),
                 "capacities": self._capacities[:active].copy()}
                for block in range(len(self._k))]

    def advance(self, batched: list[dict]) -> None:
        """Commit a decode step's grown histories (the model advanced
        the per-block lengths copies; block 0's is authoritative)."""
        active = len(self.streams)
        self._lengths[:active] = batched[0]["lengths"]
