"""Pruning-aware training, measurement and deployment."""

from .engine import HardwareEstimate, PrunedInferenceEngine
from .finetune import (EpochStats, FineTuneConfig, FinetuneHistory,
                       evaluate_accuracy, finetune_with_pruning)
from .pruning import PruningMode
from .soft_threshold import (SoftThresholdConfig, SurrogateL0Config,
                             log_soft_threshold, soft_threshold)
from .stats import PruningReport, measure_pruning, per_head_rates

__all__ = ["FineTuneConfig", "FinetuneHistory", "EpochStats",
           "finetune_with_pruning", "evaluate_accuracy", "PruningMode",
           "SoftThresholdConfig", "SurrogateL0Config", "soft_threshold",
           "log_soft_threshold", "measure_pruning", "PruningReport",
           "per_head_rates", "PrunedInferenceEngine", "HardwareEstimate"]
