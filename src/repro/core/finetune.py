"""Pruning-aware fine-tuning (paper §3.1): joint optimization of model
weights and per-layer thresholds under the soft gate + surrogate L0."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..optim import Adam, clip_grad_norm
from .pruning import PruningMode


@dataclass(frozen=True)
class FineTuneConfig:
    epochs: int = 4
    weight_lr: float = 5e-4
    threshold_lr: float = 1e-2
    grad_clip: float = 1.0


@dataclass
class EpochStats:
    epoch: int
    loss: float
    sparsity: float
    mean_threshold: float


@dataclass
class FinetuneHistory:
    epochs: list[EpochStats] = field(default_factory=list)

    def sparsities(self) -> np.ndarray:
        return np.array([e.sparsity for e in self.epochs])

    def mean_thresholds(self) -> np.ndarray:
        return np.array([e.mean_threshold for e in self.epochs])

    def losses(self) -> np.ndarray:
        return np.array([e.loss for e in self.epochs])

    def normalized_losses(self) -> np.ndarray:
        losses = self.losses()
        if losses.size == 0:
            return losses
        first = losses[0] if losses[0] != 0 else 1.0
        return losses / first


def finetune_with_pruning(model, controller, make_batches,
                          config: FineTuneConfig | None = None
                          ) -> FinetuneHistory:
    """Fine-tune ``model`` with soft-threshold pruning active.

    ``make_batches`` is a zero-argument callable returning a fresh batch
    iterator per epoch.  Weights and thresholds get separate learning
    rates (the threshold moves on a coarser scale than the weights).
    Leaves the controller in HARD mode — the deployed configuration.
    """
    config = config or FineTuneConfig()
    controller.soft()
    model.train()
    optimizer = Adam([
        {"params": model.parameters(), "lr": config.weight_lr},
        {"params": controller.parameters(), "lr": config.threshold_lr},
    ])
    weight = controller.l0_config.weight
    history = FinetuneHistory()
    for epoch in range(config.epochs):
        total_loss = 0.0
        steps = 0
        controller.pop_soft_sparsity()   # reset epoch counters
        for batch in make_batches():
            loss = model.loss(batch)
            l0 = controller.pop_l0()
            objective = loss if l0 is None else loss + l0 * weight
            optimizer.zero_grad()
            objective.backward()
            clip_grad_norm(optimizer.all_params(), config.grad_clip)
            optimizer.step()
            total_loss += float(loss.data)
            steps += 1
        history.epochs.append(EpochStats(
            epoch=epoch,
            loss=total_loss / max(steps, 1),
            sparsity=controller.pop_soft_sparsity(),
            mean_threshold=float(controller.threshold_values().mean()),
        ))
    controller.hard()
    model.eval()
    return history


def evaluate_accuracy(model, controller, batch_iter,
                      mode: PruningMode | None = None) -> float:
    """Accuracy (or the model's metric) under the given pruning mode."""
    if controller is not None and mode is not None:
        controller.set_mode(mode)
    model.eval()
    total = 0.0
    count = 0
    for batch in batch_iter:
        value, n = model.metrics(batch)
        total += value
        count += n
    if count == 0:
        return 0.0
    finish = getattr(model, "finish_metric", None)
    if finish is not None:
        return finish(total, count)
    return total / count
