"""Pruning modes for the threshold controller."""

from __future__ import annotations

import enum


class PruningMode(enum.Enum):
    """How learned thresholds are applied during a forward pass.

    OFF   — thresholds ignored (baseline model).
    SOFT  — differentiable gating (Eq. 6) for pruning-aware fine-tuning.
    HARD  — deployment behavior: scores below Th are dropped exactly as
            the accelerator's early-termination front end would drop
            them.
    """

    OFF = "off"
    SOFT = "soft"
    HARD = "hard"
