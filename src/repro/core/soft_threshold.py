"""Differentiable threshold gating (paper Eq. 6) and the surrogate L0
sparsity objective (paper Eq. 7a)."""

from __future__ import annotations

from dataclasses import dataclass

from ..tensor import Tensor
from ..tensor import functional as F


@dataclass(frozen=True)
class SoftThresholdConfig:
    """Eq. 6: gate(x) = sigmoid(s * (x - Th)).

    ``sharpness`` (s) sets the width of the transition band around Th —
    the only region where the threshold receives task gradient.
    """

    sharpness: float = 10.0


@dataclass(frozen=True)
class SurrogateL0Config:
    """Eq. 7a: the balance factor (lambda) on the expected survivor
    count, the knob that trades accuracy against pruning rate."""

    weight: float = 0.05


def soft_threshold(scores: Tensor, threshold: Tensor,
                   config: SoftThresholdConfig | None = None) -> Tensor:
    """Per-score soft keep-probability in [0, 1]."""
    config = config or SoftThresholdConfig()
    return ((scores - threshold) * config.sharpness).sigmoid()


def log_soft_threshold(scores: Tensor, threshold: Tensor,
                       config: SoftThresholdConfig | None = None) -> Tensor:
    """log(gate) computed stably (additive logit mask for softmax)."""
    config = config or SoftThresholdConfig()
    return -F.softplus((threshold - scores) * config.sharpness)
