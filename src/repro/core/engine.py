"""Deployment packaging: weights + learned thresholds + HW estimate."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..tensor import no_grad


@dataclass(frozen=True)
class HardwareEstimate:
    config_name: str
    runtime_ns: float
    baseline_runtime_ns: float
    speedup_vs_baseline: float
    energy_reduction: float
    pruning_rate: float


class PrunedInferenceEngine:
    """A trained model plus its controller, ready to serve.

    ``save``/``load`` round-trip the weights and thresholds;
    ``estimate_hardware`` simulates one batch on the accelerator model.
    """

    def __init__(self, model, controller):
        self.model = model
        self.controller = controller
        controller.hard()
        model.eval()

    def predict(self, batch):
        with no_grad():
            if isinstance(batch.inputs, tuple):
                logits = self.model.logits(*batch.inputs, batch.mask)
            elif batch.mask is not None:
                logits = self.model.logits(batch.inputs, batch.mask)
            else:
                # mask-free models (e.g. the causal LM) take tokens only
                logits = self.model.logits(batch.inputs)
        return logits.data.argmax(axis=-1)

    def save(self, directory: str) -> str:
        os.makedirs(directory, exist_ok=True)
        state = self.model.state_dict()
        np.savez_compressed(os.path.join(directory, "weights.npz"), **state)
        meta = {
            "model_class": type(self.model).__name__,
            "thresholds": self.controller.threshold_values().tolist(),
            "soft_sharpness": self.controller.soft_config.sharpness,
        }
        with open(os.path.join(directory, "engine.json"), "w") as fh:
            json.dump(meta, fh, indent=2)
        return directory

    def load(self, directory: str) -> None:
        """Restore a saved engine in place: model weights, learned
        thresholds and the soft-gate sharpness."""
        from .soft_threshold import SoftThresholdConfig

        with open(os.path.join(directory, "engine.json")) as fh:
            meta = json.load(fh)
        state = np.load(os.path.join(directory, "weights.npz"))
        self.model.load_state_dict({k: state[k] for k in state.files})
        self.controller.set_threshold_values(np.array(meta["thresholds"]))
        self.controller.soft_config = SoftThresholdConfig(
            sharpness=meta["soft_sharpness"])

    def estimate_hardware(self, batch, config=None) -> HardwareEstimate:
        from ..hw import (AE_LEOPARD, EnergyModel, TileSimulator,
                          baseline_like)
        from ..hw.workload import jobs_from_records

        config = config or AE_LEOPARD
        modules = self.model.attention_modules()
        for module in modules:
            module.record_scores = True
            module.record_qk = True
            module.clear_records()
        with no_grad():
            self.model.metrics(batch)
        records = [r for m in modules for r in m.records]
        for module in modules:
            module.record_scores = False
            module.record_qk = False
            module.clear_records()

        jobs = jobs_from_records(records)
        ours = TileSimulator(config).run(jobs)
        base_config = baseline_like(config)
        base = TileSimulator(base_config).run(jobs)
        energy = EnergyModel()
        ours_energy = energy.total(ours.counters, config)
        base_energy = energy.total(base.counters, base_config)
        to_ns = 1.0 / config.frequency_ghz
        return HardwareEstimate(
            config_name=config.name,
            runtime_ns=ours.total_cycles * to_ns,
            baseline_runtime_ns=base.total_cycles * to_ns,
            speedup_vs_baseline=base.total_cycles / max(ours.total_cycles, 1),
            energy_reduction=base_energy / max(ours_energy, 1e-12),
            pruning_rate=ours.pruning_rate,
        )
