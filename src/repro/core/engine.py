"""Deployment packaging: weights + learned thresholds + HW estimate."""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import asdict, dataclass, is_dataclass

import numpy as np

from ..tensor import no_grad

#: (sidecar path, npz stamp) -> {name: read-only memmap array}.  A second
#: mmap-open of the same snapshot in one process reuses the *same* mapped
#: arrays (so N same-process replicas add ~zero RSS); across processes
#: the page cache shares the file pages instead.
_MMAP_CACHE: dict = {}


def _npz_stamp(npz_path: str) -> list:
    """Freshness stamp of the weights archive: (mtime_ns, size).  The
    sidecar manifest records it so a re-saved snapshot invalidates any
    previously expanded ``weights_mmap/`` directory."""
    stat = os.stat(npz_path)
    return [stat.st_mtime_ns, stat.st_size]


def ensure_mmap_weights(directory: str) -> str:
    """Expand ``weights.npz`` into a ``weights_mmap/`` sidecar of raw
    per-array ``.npy`` files and return its path.

    ``np.load(..., mmap_mode="r")`` silently ignores the mmap request
    for ``.npz`` archives (zip members are not page-alignable), so real
    zero-copy loading needs each array as its own ``.npy`` file.  The
    expansion is done once per snapshot: a ``manifest.json`` records
    the npz stamp, and a stale or missing sidecar is rebuilt in a temp
    directory and published with an atomic rename, so concurrent
    openers (N worker processes booting at once) never observe a
    half-written file — the loser of the race just keeps the winner's
    sidecar."""
    npz = os.path.join(directory, "weights.npz")
    sidecar = os.path.join(directory, "weights_mmap")
    manifest_path = os.path.join(sidecar, "manifest.json")
    stamp = _npz_stamp(npz)
    try:
        with open(manifest_path) as fh:
            if json.load(fh).get("stamp") == stamp:
                return sidecar
    except (OSError, ValueError):
        pass
    tmp = f"{sidecar}.tmp.{os.getpid()}"
    os.makedirs(tmp, exist_ok=True)
    arrays = {}
    with np.load(npz) as state:
        for index, name in enumerate(state.files):
            filename = f"arr{index}.npy"
            np.save(os.path.join(tmp, filename), state[name])
            arrays[name] = filename
    with open(os.path.join(tmp, "manifest.json"), "w") as fh:
        json.dump({"stamp": stamp, "arrays": arrays}, fh)
    if os.path.isdir(sidecar):              # stale: replace wholesale
        shutil.rmtree(sidecar, ignore_errors=True)
    try:
        os.rename(tmp, sidecar)
    except OSError:
        # a concurrent expander published first; trust its sidecar
        shutil.rmtree(tmp, ignore_errors=True)
    return sidecar


def load_mmap_state(directory: str) -> dict:
    """Read-only memory-mapped ``{name: array}`` view of a snapshot's
    weights (expanding the sidecar on first use).  Arrays are cached
    per (sidecar, stamp), so repeat opens in one process return the
    very same mappings instead of new page-table entries."""
    sidecar = ensure_mmap_weights(directory)
    with open(os.path.join(sidecar, "manifest.json")) as fh:
        manifest = json.load(fh)
    key = (os.path.abspath(sidecar), tuple(manifest["stamp"]))
    state = _MMAP_CACHE.get(key)
    if state is None:
        state = {name: np.load(os.path.join(sidecar, filename),
                               mmap_mode="r")
                 for name, filename in manifest["arrays"].items()}
        _MMAP_CACHE[key] = state
    return state


def _model_registry() -> dict:
    """Model-class name -> (model class, config class), imported lazily
    (models depend on core, so core cannot import them at module load)."""
    from ..models import (ClassifierConfig, LMConfig, MemN2N, MemN2NConfig,
                          TransformerClassifier, TransformerLM)
    return {
        "TransformerClassifier": (TransformerClassifier, ClassifierConfig),
        "TransformerLM": (TransformerLM, LMConfig),
        "MemN2N": (MemN2N, MemN2NConfig),
    }


@dataclass(frozen=True)
class HardwareEstimate:
    config_name: str
    runtime_ns: float
    baseline_runtime_ns: float
    speedup_vs_baseline: float
    energy_reduction: float
    pruning_rate: float
    # absolute energies (pJ) so served traffic can aggregate totals
    # across coalesced batches, not just per-batch ratios
    energy_pj: float = 0.0
    baseline_energy_pj: float = 0.0
    # which kernel backend (repro.hw.backends) produced the estimate —
    # serving metadata keeps hardware numbers attributable/reproducible
    kernel_backend: str = "numpy-ref"


class PrunedInferenceEngine:
    """A trained model plus its controller, ready to serve.

    ``save``/``load`` round-trip the weights and thresholds;
    ``estimate_hardware`` simulates one batch on the accelerator model.
    """

    def __init__(self, model, controller):
        self.model = model
        self.controller = controller
        controller.hard()
        model.eval()

    def logits_for(self, inputs, mask=None) -> np.ndarray:
        """Raw logits for inputs that may or may not carry a mask (no
        labels needed — this is the serving-side entry point)."""
        with no_grad():
            if isinstance(inputs, tuple):
                logits = self.model.logits(*inputs, mask)
            elif mask is not None:
                logits = self.model.logits(inputs, mask)
            else:
                # mask-free models (e.g. the causal LM) take tokens only
                logits = self.model.logits(inputs)
        return logits.data

    def predict(self, batch):
        return self.logits_for(batch.inputs, batch.mask).argmax(axis=-1)

    def predict_many(self, inputs, mask=None, collect_records: bool = False
                     ) -> tuple[np.ndarray, np.ndarray, list | None]:
        """Batched inference for the serving layer: returns
        (predictions, logits, attention records or None).  With
        ``collect_records`` the forward runs with score/QK capture on,
        so callers can split per-item records out of a coalesced batch
        and charge hardware cycles/energy to individual requests."""
        if collect_records:
            logits, records = self.run_recorded(
                lambda: self.logits_for(inputs, mask))
        else:
            logits, records = self.logits_for(inputs, mask), None
        return logits.argmax(axis=-1), logits, records

    def save(self, directory: str, extra: dict | None = None) -> str:
        """Persist weights + thresholds + enough architecture metadata
        that :meth:`from_directory` can rebuild the engine from scratch.
        ``extra`` entries are merged into ``engine.json``."""
        os.makedirs(directory, exist_ok=True)
        state = self.model.state_dict()
        np.savez_compressed(os.path.join(directory, "weights.npz"), **state)
        config = getattr(self.model, "config", None)
        meta = {
            "model_class": type(self.model).__name__,
            "model_config": (asdict(config) if is_dataclass(config)
                             else None),
            "thresholds": self.controller.threshold_values().tolist(),
            "soft_sharpness": self.controller.soft_config.sharpness,
            "l0_weight": self.controller.l0_config.weight,
        }
        if extra:
            meta.update(extra)
        with open(os.path.join(directory, "engine.json"), "w") as fh:
            json.dump(meta, fh, indent=2)
        return directory

    @staticmethod
    def read_metadata(directory: str) -> dict:
        """Parse ``engine.json`` for a saved engine directory (the one
        place ``load`` and ``from_directory`` read metadata from)."""
        with open(os.path.join(directory, "engine.json")) as fh:
            return json.load(fh)

    @classmethod
    def from_directory(cls, directory: str,
                       mmap: bool = False) -> "PrunedInferenceEngine":
        """Rebuild a saved engine with no pre-built model: reconstruct
        the architecture from ``engine.json``'s recorded model config,
        attach a fresh controller, then restore weights + thresholds.
        ``mmap=True`` memory-maps the weights read-only instead of
        copying them into the heap — N replicas (threads or forked
        worker processes) of one snapshot then share a single set of
        page-cache pages instead of N weight copies."""
        from .soft_threshold import SurrogateL0Config

        meta = cls.read_metadata(directory)
        name = meta.get("model_class")
        config_dict = meta.get("model_config")
        if config_dict is None:
            raise ValueError(
                f"{directory!r} predates model-config metadata; re-save "
                "the engine (or build the model yourself and call load)")
        registry = _model_registry()
        if name not in registry:
            raise ValueError(f"unknown model class {name!r}; have "
                             f"{sorted(registry)}")
        model_class, config_class = registry[name]
        model = model_class(config_class(**config_dict))
        controller = model.make_controller(l0_config=SurrogateL0Config(
            weight=meta.get("l0_weight", SurrogateL0Config().weight)))
        engine = cls(model, controller)
        engine.load(directory, mmap=mmap)
        return engine

    def load(self, directory: str, mmap: bool = False) -> None:
        """Restore a saved engine in place: model weights, learned
        thresholds and the soft-gate sharpness.  With ``mmap=True`` the
        weights stay read-only views over the ``weights_mmap/`` sidecar
        (see :func:`ensure_mmap_weights`) — zero-copy, shared across
        every open of the same snapshot."""
        from .soft_threshold import SoftThresholdConfig

        meta = self.read_metadata(directory)
        if mmap:
            self.model.load_state_dict(load_mmap_state(directory))
        else:
            state = np.load(os.path.join(directory, "weights.npz"))
            self.model.load_state_dict({k: state[k] for k in state.files})
        self.controller.set_threshold_values(np.array(meta["thresholds"]))
        self.controller.soft_config = SoftThresholdConfig(
            sharpness=meta["soft_sharpness"])

    def run_recorded(self, forward) -> tuple[object, list]:
        """Run ``forward`` under no-grad with attention score/QK capture
        enabled on every layer; returns (forward's value, records)."""
        modules = self.model.attention_modules()
        for module in modules:
            module.record_scores = True
            module.record_qk = True
            module.clear_records()
        try:
            with no_grad():
                value = forward()
        finally:
            records = [r for m in modules for r in m.records]
            for module in modules:
                module.record_scores = False
                module.record_qk = False
                module.clear_records()
        return value, records

    def estimate_hardware(self, batch, config=None) -> HardwareEstimate:
        _, records = self.run_recorded(lambda: self.model.metrics(batch))
        return self.estimate_from_records(records, config)

    def estimate_from_records(self, records, config=None,
                              pack_cache=None, pack_group=None,
                              profiler=None) -> HardwareEstimate:
        """Simulate captured attention records on the accelerator model
        vs the non-pruning baseline.  Serving uses this directly: the
        batcher slices a coalesced batch's records per request, and each
        request's estimate is identical to a solo run of that request."""
        groups = None if pack_group is None else [pack_group]
        return self.estimate_many([records], config,
                                  pack_cache=pack_cache,
                                  pack_groups=groups,
                                  profiler=profiler)[0]

    def estimate_many(self, record_groups, config=None,
                      pack_cache=None, pack_groups=None,
                      profiler=None) -> list[HardwareEstimate]:
        """Estimate several record groups against one pair of
        simulators.

        The serving layer slices each scheduler step's coalesced
        records into per-request groups (one per stream or classify
        request that participated in the step) and charges them in a
        single call here, so hardware accounting is cut per step rather
        than per whole round — without rebuilding the tile/baseline
        simulators and energy model for every slice.  Each group's
        estimate is bit-identical to calling
        :meth:`estimate_from_records` on it alone (the simulators are
        stateless across ``run`` calls; the pack-once plane cache only
        reuses exact-validated packed keys, so it never changes
        results).

        ``pack_cache`` threads a persistent
        :class:`~repro.hw.backends.PlaneGroupCache` through the tile
        simulator (the serving engines pass their per-engine cache so
        decode-step estimates reuse packed planes across calls);
        ``pack_groups`` gives each record group a stable cache
        identity (e.g. a stream/request id), defaulting to the group's
        position in this call; ``profiler`` (a
        :class:`repro.obs.KernelProfiler`) times the pruning
        simulator's fused kernel dispatches."""
        from ..hw import (AE_LEOPARD, EnergyModel, TileSimulator,
                          baseline_like)
        from ..hw.workload import jobs_from_records

        config = config or AE_LEOPARD
        simulator = TileSimulator(config, pack_cache=pack_cache,
                                  profiler=profiler)
        base_config = baseline_like(config)
        baseline = TileSimulator(base_config)
        energy = EnergyModel()
        to_ns = 1.0 / config.frequency_ghz
        estimates = []
        for position, records in enumerate(record_groups):
            group_key = (pack_groups[position]
                         if pack_groups is not None else position)
            jobs = jobs_from_records(records, pack_group=group_key)
            ours = simulator.run(jobs)
            base = baseline.run(jobs)
            ours_energy = energy.total(ours.counters, config)
            base_energy = energy.total(base.counters, base_config)
            estimates.append(HardwareEstimate(
                config_name=config.name,
                runtime_ns=ours.total_cycles * to_ns,
                baseline_runtime_ns=base.total_cycles * to_ns,
                speedup_vs_baseline=(base.total_cycles
                                     / max(ours.total_cycles, 1)),
                energy_reduction=base_energy / max(ours_energy, 1e-12),
                pruning_rate=ours.pruning_rate,
                energy_pj=ours_energy,
                baseline_energy_pj=base_energy,
                kernel_backend=simulator.backend.name,
            ))
        return estimates
