"""Deployment packaging: weights + learned thresholds + HW estimate."""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, is_dataclass

import numpy as np

from ..tensor import no_grad


def _model_registry() -> dict:
    """Model-class name -> (model class, config class), imported lazily
    (models depend on core, so core cannot import them at module load)."""
    from ..models import (ClassifierConfig, LMConfig, MemN2N, MemN2NConfig,
                          TransformerClassifier, TransformerLM)
    return {
        "TransformerClassifier": (TransformerClassifier, ClassifierConfig),
        "TransformerLM": (TransformerLM, LMConfig),
        "MemN2N": (MemN2N, MemN2NConfig),
    }


@dataclass(frozen=True)
class HardwareEstimate:
    config_name: str
    runtime_ns: float
    baseline_runtime_ns: float
    speedup_vs_baseline: float
    energy_reduction: float
    pruning_rate: float


class PrunedInferenceEngine:
    """A trained model plus its controller, ready to serve.

    ``save``/``load`` round-trip the weights and thresholds;
    ``estimate_hardware`` simulates one batch on the accelerator model.
    """

    def __init__(self, model, controller):
        self.model = model
        self.controller = controller
        controller.hard()
        model.eval()

    def predict(self, batch):
        with no_grad():
            if isinstance(batch.inputs, tuple):
                logits = self.model.logits(*batch.inputs, batch.mask)
            elif batch.mask is not None:
                logits = self.model.logits(batch.inputs, batch.mask)
            else:
                # mask-free models (e.g. the causal LM) take tokens only
                logits = self.model.logits(batch.inputs)
        return logits.data.argmax(axis=-1)

    def save(self, directory: str, extra: dict | None = None) -> str:
        """Persist weights + thresholds + enough architecture metadata
        that :meth:`from_directory` can rebuild the engine from scratch.
        ``extra`` entries are merged into ``engine.json``."""
        os.makedirs(directory, exist_ok=True)
        state = self.model.state_dict()
        np.savez_compressed(os.path.join(directory, "weights.npz"), **state)
        config = getattr(self.model, "config", None)
        meta = {
            "model_class": type(self.model).__name__,
            "model_config": (asdict(config) if is_dataclass(config)
                             else None),
            "thresholds": self.controller.threshold_values().tolist(),
            "soft_sharpness": self.controller.soft_config.sharpness,
            "l0_weight": self.controller.l0_config.weight,
        }
        if extra:
            meta.update(extra)
        with open(os.path.join(directory, "engine.json"), "w") as fh:
            json.dump(meta, fh, indent=2)
        return directory

    @classmethod
    def from_directory(cls, directory: str) -> "PrunedInferenceEngine":
        """Rebuild a saved engine with no pre-built model: reconstruct
        the architecture from ``engine.json``'s recorded model config,
        attach a fresh controller, then restore weights + thresholds."""
        from .soft_threshold import SurrogateL0Config

        with open(os.path.join(directory, "engine.json")) as fh:
            meta = json.load(fh)
        name = meta.get("model_class")
        config_dict = meta.get("model_config")
        if config_dict is None:
            raise ValueError(
                f"{directory!r} predates model-config metadata; re-save "
                "the engine (or build the model yourself and call load)")
        registry = _model_registry()
        if name not in registry:
            raise ValueError(f"unknown model class {name!r}; have "
                             f"{sorted(registry)}")
        model_class, config_class = registry[name]
        model = model_class(config_class(**config_dict))
        controller = model.make_controller(l0_config=SurrogateL0Config(
            weight=meta.get("l0_weight", SurrogateL0Config().weight)))
        engine = cls(model, controller)
        engine.load(directory)
        return engine

    def load(self, directory: str) -> None:
        """Restore a saved engine in place: model weights, learned
        thresholds and the soft-gate sharpness."""
        from .soft_threshold import SoftThresholdConfig

        with open(os.path.join(directory, "engine.json")) as fh:
            meta = json.load(fh)
        state = np.load(os.path.join(directory, "weights.npz"))
        self.model.load_state_dict({k: state[k] for k in state.files})
        self.controller.set_threshold_values(np.array(meta["thresholds"]))
        self.controller.soft_config = SoftThresholdConfig(
            sharpness=meta["soft_sharpness"])

    def estimate_hardware(self, batch, config=None) -> HardwareEstimate:
        from ..hw import (AE_LEOPARD, EnergyModel, TileSimulator,
                          baseline_like)
        from ..hw.workload import jobs_from_records

        config = config or AE_LEOPARD
        modules = self.model.attention_modules()
        for module in modules:
            module.record_scores = True
            module.record_qk = True
            module.clear_records()
        with no_grad():
            self.model.metrics(batch)
        records = [r for m in modules for r in m.records]
        for module in modules:
            module.record_scores = False
            module.record_qk = False
            module.clear_records()

        jobs = jobs_from_records(records)
        ours = TileSimulator(config).run(jobs)
        base_config = baseline_like(config)
        base = TileSimulator(base_config).run(jobs)
        energy = EnergyModel()
        ours_energy = energy.total(ours.counters, config)
        base_energy = energy.total(base.counters, base_config)
        to_ns = 1.0 / config.frequency_ghz
        return HardwareEstimate(
            config_name=config.name,
            runtime_ns=ours.total_cycles * to_ns,
            baseline_runtime_ns=base.total_cycles * to_ns,
            speedup_vs_baseline=base.total_cycles / max(ours.total_cycles, 1),
            energy_reduction=base_energy / max(ours_energy, 1e-12),
            pruning_rate=ours.pruning_rate,
        )
