"""Deployment-mode pruning measurement."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tensor import no_grad


@dataclass
class PruningReport:
    pruned_per_layer: np.ndarray
    valid_per_layer: np.ndarray
    records: list = field(default_factory=list)

    @property
    def overall_rate(self) -> float:
        total = self.valid_per_layer.sum()
        return float(self.pruned_per_layer.sum() / max(total, 1))

    def per_layer_rates(self) -> np.ndarray:
        return self.pruned_per_layer / np.maximum(self.valid_per_layer, 1)


def measure_pruning(model, controller, batch_iter, keep_records: bool = False,
                    record_qk: bool = False,
                    max_records: int | None = None) -> PruningReport:
    """Run the model in HARD mode over ``batch_iter`` and report what
    fraction of (valid) attention scores the learned thresholds drop.

    With ``keep_records`` the per-layer attention score matrices (and
    optionally the Q/K activations) are captured for hardware
    simulation; ``max_records`` caps the total captured count.
    """
    controller.hard()
    model.eval()
    modules = model.attention_modules()
    for module in modules:
        module.clear_stats()
        if keep_records:
            module.record_scores = True
            module.record_qk = record_qk
            module.clear_records()
    with no_grad():
        for batch in batch_iter:
            model.metrics(batch)
            if (max_records is not None
                    and sum(len(m.records) for m in modules) >= max_records):
                break
    records = []
    if keep_records:
        # interleave layers so a truncated list still spans all layers
        per_module = [list(m.records) for m in modules]
        depth = max((len(r) for r in per_module), default=0)
        for i in range(depth):
            for module_records in per_module:
                if i < len(module_records):
                    records.append(module_records[i])
        if max_records is not None:
            records = records[:max_records]
    report = PruningReport(
        pruned_per_layer=np.array([m.stat_pruned for m in modules],
                                  dtype=np.float64),
        valid_per_layer=np.array([m.stat_valid for m in modules],
                                 dtype=np.float64),
        records=records,
    )
    for module in modules:
        module.record_scores = False
        module.record_qk = False
        module.clear_records()
    return report


def per_head_rates(records) -> np.ndarray:
    """(num_layers, num_heads) pruning rates from captured records."""
    layers = sorted({r.layer_index for r in records})
    heads = max(r.pruned_mask.shape[1] for r in records)
    pruned = np.zeros((len(layers), heads))
    valid = np.zeros((len(layers), heads))
    index = {layer: i for i, layer in enumerate(layers)}
    for record in records:
        if record.pruned_mask is None:
            continue
        i = index[record.layer_index]
        if record.valid is None:
            mask = np.ones(record.pruned_mask.shape, dtype=bool)
        else:
            mask = np.broadcast_to(record.valid[:, None],
                                   record.pruned_mask.shape)
        h = record.pruned_mask.shape[1]
        pruned[i, :h] += (record.pruned_mask & mask).sum(axis=(0, 2, 3))
        valid[i, :h] += mask.sum(axis=(0, 2, 3))
    return pruned / np.maximum(valid, 1)
