"""Gradient utilities shared by nn and optim."""

from __future__ import annotations

import numpy as np


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm.
    """
    with_grads = [p for p in parameters if p.grad is not None]
    if not with_grads:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad * p.grad).sum())
                              for p in with_grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        # fresh arrays (not in-place): parameters may share a gradient
        # buffer when one backward fans out to several tensors
        for p in with_grads:
            p.grad = p.grad * scale
    return total
