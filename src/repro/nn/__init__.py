"""Modules, layers and gradient utilities."""

from .functional_utils import clip_grad_norm
from .layers import Embedding, LayerNorm, Linear
from .module import Module, Parameter

__all__ = ["Module", "Parameter", "Linear", "Embedding", "LayerNorm",
           "clip_grad_norm"]
