"""Module / Parameter machinery (torch-like, numpy-backed)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A Tensor that is always on the tape and owned by a Module."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float64),
                         requires_grad=True)


class Module:
    """Minimal module tree: parameter discovery + train/eval mode."""

    def __init__(self):
        self.training = True

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def parameters(self) -> list[Parameter]:
        seen: set[int] = set()
        unique = []
        for _, parameter in self.named_parameters():
            if id(parameter) not in seen:   # tied weights appear once
                seen.add(id(parameter))
                unique.append(parameter)
        return unique

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{path}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{path}.{i}", item

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: parameter.data.copy()
                for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        for name, value in state.items():
            own[name].data = np.asarray(value, dtype=np.float64)
