"""Standard layers used by the model zoo."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor import functional as F
from .module import Module, Parameter


class Linear(Module):
    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = Parameter(
            rng.standard_normal((in_features, out_features)) * scale)
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class Embedding(Module):
    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None,
                 init_scale: float = 0.1):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.weight = Parameter(
            rng.standard_normal((num_embeddings, dim)) * init_scale)

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gain, self.bias, self.eps)
