"""repro — reproduction engine for conf_isca_LiGYEK22 (LeOPArd).

Gradient-based learned runtime pruning of attention with bit-serial
early termination, organized for performance from day one:

* ``repro.tensor`` — numpy reverse-mode autograd tensor + functional ops
* ``repro.nn`` / ``repro.optim`` — modules, Parameter, Adam
* ``repro.models`` — pruning-aware transformer family + threshold controller
* ``repro.core`` — soft-threshold fine-tuning, pruning measurement, engine
* ``repro.data`` — synthetic GLUE/SQuAD/bAbI/WikiText/CIFAR task generators
* ``repro.hw`` — bit-plane vectorized bit-serial kernels, tile simulator,
  energy/area models
* ``repro.eval`` — workload registry, cached runner, paper experiments
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
