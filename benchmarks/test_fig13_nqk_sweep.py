"""Bench: paper Fig. 13 — V-PU utilization vs QK-PU parallelism.

Paper shape: back-end demand grows with N_QK; N_QK = 12 frequently
over-subscribes the V-PU (>100%), N_QK = 3 leaves it under-used; 6 and
8 are the balanced design points (AE and HP).
"""

from benchmarks.conftest import run_once
from repro.eval import experiments as E

SWEEP = (3, 4, 5, 6, 8, 12)
SUBSET = ["memn2n/Task-1", "bert_base_glue/G-SST",
          "bert_base_glue/G-QNLI", "vit_cifar/CIFAR-10"]


def test_fig13_nqk_sweep(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig13(scale, workloads=SUBSET, sweep=SWEEP,
                            cache=trained))
    print("\n" + result.table)
    means = result.data["mean_utilization"]

    # Monotone: more front-end parallelism -> more back-end demand.
    ordered = [means[n] for n in SWEEP]
    assert all(a < b for a, b in zip(ordered, ordered[1:]))
    # N_QK=3 under-uses the V-PU; N_QK=12 over-subscribes on average.
    assert means[3] < 0.8
    assert means[12] > 0.95
    # The chosen AE/HP points sit in the balanced band.
    assert 0.5 < means[6] < 1.1
    assert 0.6 < means[8] < 1.2
