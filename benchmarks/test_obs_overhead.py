"""Micro-benchmark: the observability layer's hot-path tax.

The design contract of :mod:`repro.obs` is that *not* opting in costs
nothing: uninstrumented engines bind :data:`~repro.obs.metrics
.NULL_METRIC` handles once and every per-event call is an empty method
behind an ``enabled`` gate that skips all derived work.  This bench
pins that claim on the serving throughput example:

* count exactly how many null-handle operations one trace replay
  performs (a shape-compatible counting registry that keeps
  ``enabled=False`` so the replay takes the identical null code path),
* measure what one null operation costs,
* and gate their product below 2% of the replay's wall time.

A second (recorded, ungated) measurement replays with a live
``MetricsRegistry`` + ``TraceRecorder`` for the enabled-path cost,
so CI artifacts track both sides of the opt-in.
"""

import time

import numpy as np

from repro.eval import record_bench
from repro.obs import MetricsRegistry, TraceRecorder
from repro.obs.metrics import NULL_METRIC
from repro.serve import BatchPolicy, WorkerTier
from repro.serve.loadgen import TraceSpec, VirtualClock, replay_trace

MAX_NULL_OVERHEAD = 0.02                 # 2% of serving wall time
REQUESTS = 48


class _CountingMetric:
    """No-op metric that tallies how often the hot path touches it."""

    __slots__ = ("ops",)

    def __init__(self):
        self.ops = [0]

    def inc(self, amount=1.0):
        self.ops[0] += 1

    def dec(self, amount=1.0):
        self.ops[0] += 1

    def set(self, value):
        self.ops[0] += 1

    def observe(self, value):
        self.ops[0] += 1

    def sample(self):
        return None


class _CountingRegistry:
    """``enabled=False`` like the null registry — the replay takes the
    exact null code path (no derived queue walks, no trace args) — but
    the handles it hands out count every call they would have eaten."""

    enabled = False

    def __init__(self):
        self.metric = _CountingMetric()

    def counter(self, name, help="", **labels):
        return self.metric

    def gauge(self, name, help="", **labels):
        return self.metric

    def histogram(self, name, help="", buckets=(), **labels):
        return self.metric

    @property
    def ops(self) -> int:
        return self.metric.ops[0]


def _make_snapshot(directory):
    from repro.core import PrunedInferenceEngine
    from repro.models import LMConfig, TransformerLM

    model = TransformerLM(LMConfig(
        vocab_size=64, max_seq_len=32, dim=32, num_heads=2,
        num_layers=2, seed=0))
    controller = model.make_controller()
    controller.set_threshold_values(np.zeros(2))
    PrunedInferenceEngine(model, controller).save(directory)
    return directory


def _replay(snapshot, registry=None, tracer=None):
    clock = VirtualClock()
    tier = WorkerTier.from_snapshot(
        snapshot, replicas=2,
        policy=BatchPolicy(max_batch_size=4, max_wait=0.0),
        clock=clock, continuous=True, step_token_budget=32,
        registry=registry, tracer=tracer)
    trace = TraceSpec(seed=7, requests=REQUESTS, process="bursty")
    return replay_trace(tier, trace, clock=clock)


def _best_of(fn, rounds: int = 3) -> float:
    fn()                                 # warm up out of the timing
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _null_op_seconds(ops: int = 200_000) -> float:
    inc, observe = NULL_METRIC.inc, NULL_METRIC.observe

    def burst():
        for _ in range(ops // 2):
            inc()
            observe(1.0)

    return _best_of(burst) / ops


def test_null_registry_overhead_under_two_percent(tmp_path):
    """CI gate: the opt-out observability tax on a serving replay —
    (null ops per replay) x (cost of one null op) — stays < 2% of the
    replay's wall time."""
    snapshot = _make_snapshot(str(tmp_path / "snap"))

    counting = _CountingRegistry()
    report = _replay(snapshot, registry=counting)
    assert report.reasons == {"ok": REQUESTS}
    ops = counting.ops
    assert ops > 0, "the replay must exercise instrumented paths"

    null_seconds = _best_of(lambda: _replay(snapshot))
    per_op = _null_op_seconds()
    overhead = ops * per_op / null_seconds

    enabled_seconds = _best_of(lambda: _replay(
        snapshot, registry=MetricsRegistry(), tracer=TraceRecorder()))

    print(f"\n{ops} null metric ops x {per_op * 1e9:.1f} ns = "
          f"{ops * per_op * 1e6:.1f} us over a {null_seconds * 1e3:.1f}"
          f" ms replay -> {overhead:.4%} (enabled replay "
          f"{enabled_seconds * 1e3:.1f} ms, "
          f"{enabled_seconds / null_seconds:.3f}x)")
    record_bench("obs_overhead", {
        "null_ops": ops, "null_op_seconds": per_op,
        "replay_seconds": null_seconds,
        "enabled_replay_seconds": enabled_seconds,
        "null_overhead_fraction": overhead,
        "enabled_slowdown": enabled_seconds / null_seconds,
    }, context={"requests": REQUESTS, "replicas": 2})
    assert overhead < MAX_NULL_OVERHEAD
