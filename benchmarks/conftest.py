"""Shared fixtures for the per-figure/table benchmark harness.

Training the workload suite is the expensive step, so a session-scoped
cache trains each benchmark task exactly once (at QUICK scale) and the
individual benchmarks measure the analysis/simulation on top of it.

``BENCH_WORKLOADS`` is a representative cross-suite subset — one run of
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes.  Use
``examples/paper_experiments.py --full all`` for the full 43-task sweep.
"""

import pytest

from repro.eval.experiments import REPRESENTATIVE_WORKLOADS
from repro.eval.runner import WorkloadCache
from repro.eval.workloads import QUICK, get_workload

# the single source of truth lives next to the experiments so the
# cache fixture and `workloads=None` defaults always train the same set
BENCH_WORKLOADS = list(REPRESENTATIVE_WORKLOADS)


@pytest.fixture(scope="session")
def scale():
    return QUICK


@pytest.fixture(scope="session")
def trained(scale):
    """Cache with every benchmark workload trained once."""
    cache = WorkloadCache()
    for name in BENCH_WORKLOADS:
        cache.get(get_workload(name), scale)
    return cache


def run_once(benchmark, fn):
    """Benchmark a (possibly heavy) experiment with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
