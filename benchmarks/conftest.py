"""Shared fixtures for the per-figure/table benchmark harness.

Training the workload suite is the expensive step, so a session-scoped
cache trains each benchmark task exactly once (at QUICK scale) and the
individual benchmarks measure the analysis/simulation on top of it.

Opt into persistence and sharding via the environment:

``REPRO_CACHE_DIR=path``
    back the cache with an on-disk WorkloadStore — a warm rerun of the
    benchmark session rehydrates every trained model and trains nothing.
``REPRO_JOBS=N``
    shard the cold training sweep across N worker processes (needs
    ``REPRO_CACHE_DIR``; ignored without it).

``REPRO_KERNEL_BACKEND=name``
    run every hardware simulation in the session through one kernel
    backend (``repro.hw.backends``); the whole figure suite is a
    cross-layer conformance run for that backend, since every figure's
    assertions must still hold.  Unknown names fail at collection.

``BENCH_WORKLOADS`` is a representative cross-suite subset — one run of
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes.  Use
``examples/paper_experiments.py --full all`` for the full 43-task sweep.
"""

import os

import pytest

from repro.eval.experiments import REPRESENTATIVE_WORKLOADS
from repro.eval.runner import WorkloadCache
from repro.eval.workloads import QUICK
from repro.hw.backends import get_backend

# the single source of truth lives next to the experiments so the
# cache fixture and `workloads=None` defaults always train the same set
BENCH_WORKLOADS = list(REPRESENTATIVE_WORKLOADS)


def pytest_report_header(config):
    return (f"repro kernel backend: {get_backend().name} "
            f"(REPRO_KERNEL_BACKEND="
            f"{os.environ.get('REPRO_KERNEL_BACKEND', '<unset>')})")


@pytest.fixture(scope="session")
def kernel_backend():
    """The session's selected kernel backend (resolves the
    ``REPRO_KERNEL_BACKEND`` env var; a typo fails here, before any
    workload trains)."""
    return get_backend()


@pytest.fixture(scope="session")
def scale():
    return QUICK


@pytest.fixture(scope="session")
def trained(scale):
    """Cache with every benchmark workload trained (or rehydrated) once."""
    store = None
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        from repro.eval.store import WorkloadStore
        store = WorkloadStore(cache_dir)
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if store is None:
        jobs = 1        # parallel workers hand results back via the store
    cache = WorkloadCache(store)
    report = cache.prefetch(BENCH_WORKLOADS, scale, jobs=jobs)
    if report.failed:
        failures = "; ".join(f"{o.workload}: {o.error}"
                             for o in report.failed)
        raise RuntimeError(f"benchmark workload training failed — "
                           f"{failures}")
    return cache


def run_once(benchmark, fn):
    """Benchmark a (possibly heavy) experiment with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
