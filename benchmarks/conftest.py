"""Shared fixtures for the per-figure/table benchmark harness.

Training the workload suite is the expensive step, so a session-scoped
cache trains each benchmark task exactly once (at QUICK scale) and the
individual benchmarks measure the analysis/simulation on top of it.

``BENCH_WORKLOADS`` is a representative cross-suite subset — one run of
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes.  Use
``examples/paper_experiments.py --full all`` for the full 43-task sweep.
"""

import pytest

from repro.eval.runner import WorkloadCache
from repro.eval.workloads import QUICK, get_workload

BENCH_WORKLOADS = [
    "memn2n/Task-1",
    "memn2n/Task-7",
    "bert_base_glue/G-SST",
    "bert_base_glue/G-QNLI",
    "bert_large_glue/G-SST",
    "bert_base_squad/SQUAD",
    "albert_squad/SQUAD",
    "gpt2_wikitext/WikiText-2",
    "vit_cifar/CIFAR-10",
]


@pytest.fixture(scope="session")
def scale():
    return QUICK


@pytest.fixture(scope="session")
def trained(scale):
    """Cache with every benchmark workload trained once."""
    cache = WorkloadCache()
    for name in BENCH_WORKLOADS:
        cache.get(get_workload(name), scale)
    return cache


def run_once(benchmark, fn):
    """Benchmark a (possibly heavy) experiment with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
