"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but quantitative support for its claims:

* **Margin policy** — the conservative margin is exact; scaling it down
  terminates earlier but wrongly prunes surviving scores, which is why
  the paper insists on exactness ("does not cause any accuracy
  degradation").
* **L0 weight (lambda)** — sweeping the Eq. 7a balance factor traces
  the accuracy/sparsity trade-off the joint optimization navigates.
* **Per-layer vs global threshold** — the paper learns one threshold
  per layer "because each attention layer identifies a distinct
  context"; collapsing to the mean threshold changes (usually hurts)
  the pruning/accuracy balance.
* **Soft-threshold sharpness (s)** — Eq. 6's transition width controls
  gradient flow around Th.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.finetune import evaluate_accuracy
from repro.core.pruning import PruningMode
from repro.core.stats import measure_pruning
from repro.data import batches
from repro.eval.workloads import get_workload
from repro.hw.bitserial import bitserial_cycles_matrix, serial_cycle_count


def test_margin_policy_ablation(benchmark, trained, scale):
    """Exact margin: zero wrong prunes.  Scaled margins: cheaper but
    wrong — quantifies the exactness-vs-aggressiveness trade-off."""
    result = trained.get(get_workload("bert_base_glue/G-QNLI"), scale)
    jobs = result.hw_jobs()[:32]

    def sweep():
        rows = []
        for margin_scale in (1.0, 0.5, 0.25, 0.0):
            cycles_total = 0
            wrong = 0
            total = 0
            for job in jobs:
                cycles, pruned, scores = bitserial_cycles_matrix(
                    job.queries, job.keys, job.threshold, 11, 2,
                    valid=job.valid, margin_scale=margin_scale)
                exact = scores < job.threshold
                wrong += int((pruned & ~exact & job.valid).sum())
                total += int(job.valid.sum())
                cycles_total += int(cycles.sum())
            rows.append((margin_scale, cycles_total, wrong / total))
        return rows

    rows = run_once(benchmark, sweep)
    by_scale = {scale_: (cycles, wrong) for scale_, cycles, wrong in rows}
    # Paper's conservative margin: exactly zero wrongful terminations.
    assert by_scale[1.0][1] == 0.0
    # Shrinking the margin only saves cycles by making wrong decisions.
    assert by_scale[0.0][0] <= by_scale[0.5][0] <= by_scale[1.0][0]
    assert by_scale[0.0][1] > 0.0
    print("\nmargin ablation (scale, cycles, wrongful-prune rate):")
    for row in rows:
        print(f"  {row[0]:.2f}  {row[1]:>9d}  {row[2]:.4f}")


def test_l0_weight_tradeoff(benchmark):
    """Sweeping lambda traces the sparsity knob of Eq. 7a."""
    from dataclasses import replace

    from repro.eval.runner import run_workload
    from repro.eval.workloads import TINY

    spec = get_workload("bert_base_glue/G-SST")

    def sweep():
        points = []
        for weight in (0.005, 0.05, 0.5):
            variant = replace(spec, l0_weight=weight)
            result = run_workload(variant, TINY)
            points.append((weight, result.pruning_rate,
                           result.pruned_metric))
        return points

    points = run_once(benchmark, sweep)
    print("\nlambda sweep (weight, pruning rate, accuracy):")
    for weight, rate, accuracy in points:
        print(f"  {weight:<6} {rate:.3f}  {accuracy:.3f}")
    rates = [rate for _, rate, _ in points]
    # Stronger L0 pressure -> at least as much pruning.
    assert rates[-1] >= rates[0]


def test_per_layer_vs_global_threshold(benchmark, trained, scale):
    """Collapse learned per-layer thresholds to their mean and compare."""
    result = trained.get(get_workload("bert_base_glue/G-QNLI"), scale)
    model, controller = result.model, result.controller
    spec = result.spec
    data = spec.make_data(scale, spec.seed)
    learned = controller.threshold_values()

    def compare():
        outcomes = {}
        for label, values in (("per-layer", learned),
                              ("global", np.full_like(learned,
                                                      learned.mean()))):
            controller.set_threshold_values(values)
            report = measure_pruning(model, controller,
                                     batches(data.test, scale.batch_size))
            accuracy = evaluate_accuracy(model, controller,
                                         batches(data.test,
                                                 scale.batch_size),
                                         PruningMode.HARD)
            outcomes[label] = (report.overall_rate, accuracy)
        controller.set_threshold_values(learned)   # restore
        return outcomes

    outcomes = run_once(benchmark, compare)
    print("\nthreshold granularity (pruning rate, accuracy):")
    for label, (rate, accuracy) in outcomes.items():
        print(f"  {label:<10} {rate:.3f}  {accuracy:.3f}")
    # The learned per-layer setting is on the efficient frontier: the
    # global variant cannot be both sparser and more accurate.
    per_rate, per_acc = outcomes["per-layer"]
    glob_rate, glob_acc = outcomes["global"]
    assert not (glob_rate > per_rate + 0.01 and glob_acc > per_acc + 0.01)


def test_soft_threshold_sharpness(benchmark):
    """Eq. 6's s controls the gradient band width around Th."""
    from repro.core.soft_threshold import SoftThresholdConfig, soft_threshold
    from repro.nn import Parameter
    from repro.tensor import Tensor

    rng = np.random.default_rng(0)
    scores = Tensor(rng.standard_normal(512))

    def band_widths():
        widths = {}
        for sharpness in (1.0, 10.0, 100.0):
            th = Parameter(np.array(0.0))
            out = soft_threshold(scores, th,
                                 SoftThresholdConfig(sharpness=sharpness))
            out.sum().backward()
            # fraction of scores contributing nontrivial Th gradient
            th.zero_grad()
            contributing = 0
            for x in (-0.5, -0.1, -0.01, 0.01, 0.1, 0.5):
                probe = Tensor(np.array([x]))
                th2 = Parameter(np.array(0.0))
                soft_threshold(probe, th2, SoftThresholdConfig(
                    sharpness=sharpness)).sum().backward()
                if abs(float(th2.grad)) > 1e-3:
                    contributing += 1
            widths[sharpness] = contributing
        return widths

    widths = run_once(benchmark, band_widths)
    print(f"\ngradient band (probes with grad) per sharpness: {widths}")
    # Sharper s -> narrower band of scores that move the threshold.
    assert widths[1.0] >= widths[10.0] >= widths[100.0]
