"""Bench: paper Table 1 — tile microarchitecture configurations."""

from repro.eval import experiments as E


def test_table1_config(benchmark):
    result = benchmark(E.run_table1)
    print("\n" + result.table)
    rows = {row["design"]: row for row in result.data["rows"]}

    assert rows["AE-LeOPArd"]["N_QK"] == 6
    assert rows["HP-LeOPArd"]["N_QK"] == 8
    assert rows["Baseline"]["N_QK"] == 1
    assert rows["AE-LeOPArd"]["QK bits"] == "12x2"
    assert rows["Baseline"]["QK bits"] == "12x12"
    for design in rows.values():
        assert design["D"] == 64
        assert design["Key buffer (KB)"] == 48
        assert design["Value buffer (KB)"] == 64
        assert design["Freq (GHz)"] == 0.8
