"""Micro-benchmark: vectorized bit-plane kernel vs the scalar trace.

The hot path of every hardware experiment is
``bitserial_cycles_matrix``; this bench pins the perf baseline by
asserting the vectorized kernel beats the per-element scalar trace by
>= 10x on a realistic tile, while producing identical results.
"""

import time

import numpy as np

from repro.hw.bitserial import bitserial_cycles_matrix, bitserial_dot_product

TILE = 48
DIM = 64
MAGNITUDE_BITS = 11
GROUP = 2
THRESHOLD = 100_000.0


def _make_tile():
    rng = np.random.default_rng(0)
    q = rng.integers(-2047, 2048, (TILE, DIM))
    k = rng.integers(-2047, 2048, (TILE, DIM))
    return q, k


def _scalar_reference(q, k):
    cycles = np.empty((q.shape[0], k.shape[0]), dtype=np.int64)
    pruned = np.empty((q.shape[0], k.shape[0]), dtype=bool)
    for i in range(q.shape[0]):
        for j in range(k.shape[0]):
            trace = bitserial_dot_product(q[i], k[j], THRESHOLD,
                                          MAGNITUDE_BITS, GROUP)
            cycles[i, j] = trace.cycles
            pruned[i, j] = trace.pruned
    return cycles, pruned


def test_kernel_micro_speedup(benchmark):
    q, k = _make_tile()
    cycles_vec, pruned_vec, _ = benchmark(
        lambda: bitserial_cycles_matrix(q, k, THRESHOLD, MAGNITUDE_BITS,
                                        GROUP))

    start = time.perf_counter()
    cycles_ref, pruned_ref = _scalar_reference(q, k)
    scalar_seconds = time.perf_counter() - start

    # identical semantics ...
    np.testing.assert_array_equal(cycles_vec, cycles_ref)
    np.testing.assert_array_equal(pruned_vec, pruned_ref)

    # ... at >= 10x the throughput (typically far more)
    vector_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / vector_seconds
    print(f"\nvectorized {vector_seconds * 1e3:.2f} ms vs scalar "
          f"{scalar_seconds * 1e3:.1f} ms -> {speedup:.0f}x")
    assert speedup >= 10.0
