"""Micro-benchmark: the kernel perf ladder.

The hot path of every hardware experiment is
``bitserial_cycles_matrix``; this bench pins two perf baselines while
requiring identical results at each rung:

* the vectorized kernel beats the per-element scalar trace by >= 10x
  on a realistic tile;
* the ``numpy-packed`` backend beats ``numpy-ref`` by >= 2x at a
  paper-scale S=512 tile (the CI gate for the packed fast path);
* the fused ``matrix_many`` path beats the per-job ``matrix`` loop on
  a serving-shaped decode mix: >= 1.5x with a warm pack cache (the
  headline cross-job fusion gate) and >= 1.1x cacheless (the
  regression floor for banding/batch-packing alone).

When ``REPRO_BENCH_DIR`` is set (CI does), each gate also appends its
measured numbers to a versioned ``BENCH_kernel_micro.json`` artifact.
"""

import time

import numpy as np

from repro.eval import record_bench
from repro.hw.backends import (KernelJob, PlaneGroupCache, get_backend,
                               matrix_many_loop, run_many)
from repro.hw.bitserial import bitserial_cycles_matrix, bitserial_dot_product

TILE = 48
DIM = 64
MAGNITUDE_BITS = 11
GROUP = 2
THRESHOLD = 100_000.0

PAPER_TILE = 512                 # the paper's long-sequence regime
PACKED_MIN_SPEEDUP = 2.0
FUSED_CACHED_MIN_SPEEDUP = 1.5   # warm pack cache, decode-shaped mix
FUSED_COLD_MIN_SPEEDUP = 1.1     # cacheless fusion regression floor


def _make_tile():
    rng = np.random.default_rng(0)
    q = rng.integers(-2047, 2048, (TILE, DIM))
    k = rng.integers(-2047, 2048, (TILE, DIM))
    return q, k


def _scalar_reference(q, k):
    cycles = np.empty((q.shape[0], k.shape[0]), dtype=np.int64)
    pruned = np.empty((q.shape[0], k.shape[0]), dtype=bool)
    for i in range(q.shape[0]):
        for j in range(k.shape[0]):
            trace = bitserial_dot_product(q[i], k[j], THRESHOLD,
                                          MAGNITUDE_BITS, GROUP)
            cycles[i, j] = trace.cycles
            pruned[i, j] = trace.pruned
    return cycles, pruned


def test_kernel_micro_speedup(benchmark):
    q, k = _make_tile()
    cycles_vec, pruned_vec, _ = benchmark(
        lambda: bitserial_cycles_matrix(q, k, THRESHOLD, MAGNITUDE_BITS,
                                        GROUP))

    start = time.perf_counter()
    cycles_ref, pruned_ref = _scalar_reference(q, k)
    scalar_seconds = time.perf_counter() - start

    # identical semantics ...
    np.testing.assert_array_equal(cycles_vec, cycles_ref)
    np.testing.assert_array_equal(pruned_vec, pruned_ref)

    # ... at >= 10x the throughput (typically far more)
    vector_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / vector_seconds
    print(f"\nvectorized {vector_seconds * 1e3:.2f} ms vs scalar "
          f"{scalar_seconds * 1e3:.1f} ms -> {speedup:.0f}x")
    assert speedup >= 10.0


def _best_of(fn, rounds: int = 5) -> float:
    fn()                                     # warm up out of the timing
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_packed_backend_speedup_at_paper_scale():
    """CI gate: ``numpy-packed`` must hold >= 2x over ``numpy-ref`` at
    S_q = S_k = 512 while staying bit-identical."""
    rng = np.random.default_rng(1)
    q = rng.integers(-2047, 2048, (PAPER_TILE, DIM))
    k = rng.integers(-2047, 2048, (PAPER_TILE, DIM))
    threshold = 120_000.0
    ref = get_backend("numpy-ref")
    packed = get_backend("numpy-packed")

    ref_result = ref.matrix(q, k, threshold, MAGNITUDE_BITS, GROUP)
    packed_result = packed.matrix(q, k, threshold, MAGNITUDE_BITS, GROUP)
    for ours, theirs, name in zip(packed_result, ref_result,
                                  ("cycles", "pruned", "scores")):
        np.testing.assert_array_equal(ours, theirs, err_msg=name)

    ref_seconds = _best_of(
        lambda: ref.matrix(q, k, threshold, MAGNITUDE_BITS, GROUP))
    packed_seconds = _best_of(
        lambda: packed.matrix(q, k, threshold, MAGNITUDE_BITS, GROUP))
    speedup = ref_seconds / packed_seconds
    print(f"\nnumpy-packed {packed_seconds * 1e3:.1f} ms vs numpy-ref "
          f"{ref_seconds * 1e3:.1f} ms at S={PAPER_TILE} "
          f"-> {speedup:.2f}x")
    record_bench("kernel_micro", {
        "gate": "packed_vs_ref_paper_scale",
        "ref_seconds": ref_seconds, "packed_seconds": packed_seconds,
        "speedup": speedup,
    }, context={"tile": PAPER_TILE, "dim": DIM,
                "magnitude_bits": MAGNITUDE_BITS, "group": GROUP})
    assert speedup >= PACKED_MIN_SPEEDUP


def _serving_step_jobs(streams: int = 96):
    """A decode-regime serving step: one short-q job per live stream
    against that stream's grown key cache (mixed context lengths,
    shared head dim) — the shape ``run_many`` fuses in production."""
    rng = np.random.default_rng(2)
    jobs = []
    for stream in range(streams):
        s_q = int(rng.integers(1, 5))
        s_k = int(rng.integers(48, 129))
        q = rng.integers(-2047, 2048, (s_q, DIM))
        k = rng.integers(-2047, 2048, (s_k, DIM))
        jobs.append(KernelJob(
            q=q, k=k, threshold=float(rng.integers(50_000, 150_000)),
            magnitude_bits=MAGNITUDE_BITS, group=GROUP,
            pack_key=("stream", stream)))
    return jobs


def test_fused_many_speedup_at_serving_shapes():
    """CI gate: on a decode-shaped job mix, fused ``matrix_many`` must
    hold >= 1.1x over the per-job loop cold and >= 1.5x with a warm
    pack-once cache, while staying bit-identical to the loop."""
    packed = get_backend("numpy-packed")
    jobs = _serving_step_jobs()

    loop_results = matrix_many_loop(packed, jobs)
    fused_results = run_many(packed, jobs)
    for fused_job, loop_job in zip(fused_results, loop_results):
        for ours, theirs, name in zip(fused_job, loop_job,
                                      ("cycles", "pruned", "scores")):
            np.testing.assert_array_equal(ours, theirs, err_msg=name)

    loop_seconds = _best_of(lambda: matrix_many_loop(packed, jobs))
    cold_seconds = _best_of(lambda: run_many(packed, jobs))
    cache = PlaneGroupCache()
    run_many(packed, jobs, cache=cache)      # warm the pack cache
    warm_seconds = _best_of(lambda: run_many(packed, jobs, cache=cache))
    cold_speedup = loop_seconds / cold_seconds
    warm_speedup = loop_seconds / warm_seconds
    print(f"\nfused matrix_many over {len(jobs)} decode jobs: loop "
          f"{loop_seconds * 1e3:.1f} ms, fused cold "
          f"{cold_seconds * 1e3:.1f} ms ({cold_speedup:.2f}x), fused + "
          f"warm cache {warm_seconds * 1e3:.1f} ms "
          f"({warm_speedup:.2f}x)")
    record_bench("kernel_micro", {
        "gate": "fused_many_serving_shapes",
        "loop_seconds": loop_seconds, "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds, "cold_speedup": cold_speedup,
        "warm_speedup": warm_speedup,
    }, context={"jobs": len(jobs), "dim": DIM,
                "magnitude_bits": MAGNITUDE_BITS, "group": GROUP})
    assert cold_speedup >= FUSED_COLD_MIN_SPEEDUP
    assert warm_speedup >= FUSED_CACHED_MIN_SPEEDUP
