"""Bench: paper Fig. 9 — speedup of AE/HP-LeOPArd over the baseline.

Paper shape: AE ~1.9x and HP ~2.4x geomean; HP >= AE on every task;
MemN2N the biggest winner, ViT the smallest.
"""

from benchmarks.conftest import BENCH_WORKLOADS, run_once
from repro.eval import experiments as E


def test_fig9_speedup(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig9(scale, workloads=BENCH_WORKLOADS, cache=trained))
    print("\n" + result.table)

    assert result.data["gmean_ae"] > 1.3
    assert result.data["gmean_hp"] > result.data["gmean_ae"]

    rows = {row["task"]: row for row in result.data["rows"]
            if row["task"] != "GMean"}
    # HP never loses to AE (more DPUs, same back-end).
    for task, row in rows.items():
        assert row["HP-LeOPArd"] >= row["AE-LeOPArd"] * 0.99, task
    # ViT gains the least of the model families (paper: 1.1x).
    vit = rows["vit_cifar/CIFAR-10"]["AE-LeOPArd"]
    memn2n = rows["memn2n/Task-1"]["AE-LeOPArd"]
    assert memn2n > vit
