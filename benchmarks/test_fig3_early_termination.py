"""Bench: paper Fig. 3 — bit-serial early termination kernel.

Benchmarks the vectorized early-termination kernel on a realistic
Q x K^T tile and checks the exactness invariant plus the worked
example of the paper's figure.
"""

import numpy as np

from repro.hw.bitserial import (
    bitserial_cycles_matrix,
    bitserial_dot_product,
    serial_cycle_count,
)


def test_fig3_worked_example(benchmark):
    q = np.array([9, -5, 7, -2])
    k = np.array([1, -7, -4, 2])

    trace = benchmark(
        lambda: bitserial_dot_product(q, k, 40, magnitude_bits=3, group=1))
    # Exactly the paper's table: terminate at cycle 2 with P=-1, M=5.25.
    assert trace.cycles == 2
    assert trace.early_terminated
    assert trace.history[1].partial_sum == -8.0   # -1 in units of 2^-3
    assert trace.history[1].margin == 42.0        # 5.25 in units of 2^-3


def test_fig3_matrix_kernel_throughput(benchmark):
    rng = np.random.default_rng(0)
    q = rng.integers(-2047, 2048, (64, 64))
    k = rng.integers(-2047, 2048, (64, 64))
    threshold = 100_000.0

    cycles, pruned, scores = benchmark(
        lambda: bitserial_cycles_matrix(q, k, threshold, 11, 2))
    # Exactness: prune decision identical to the full computation.
    np.testing.assert_array_equal(pruned, (q @ k.T) < threshold)
    # Early termination saves cycles on pruned scores.
    full = serial_cycle_count(12, 2)
    assert cycles[pruned].mean() < full
    assert (cycles[~pruned] == full).all()
