"""Bench: paper Fig. 8 — cumulative pruning rate vs processed K bits.

Paper shape: curves rise steeply in the first few bits, then plateau
at the suite's pruning rate; MemN2N needs the fewest bits to decide a
prune (paper: 4.5 avg), vision/BERT need more (7.6-9.0).
"""

import numpy as np

from benchmarks.conftest import BENCH_WORKLOADS, run_once
from repro.eval import experiments as E


def test_fig8_bit_cumulative(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig8(scale, workloads=BENCH_WORKLOADS, cache=trained))
    print("\n" + result.table)
    series = result.data["series"]

    for suite, curve in series.items():
        curve = np.asarray(curve)
        # monotone non-decreasing, bounded by 1
        assert (np.diff(curve) >= -1e-12).all()
        assert curve[-1] <= 1.0
        # saturation: the last quarter of bits adds little
        assert curve[-1] - curve[9] < 0.1, suite

    mean_bits = result.data["mean_bits_to_prune"]
    # MemN2N decides prunes with fewer bits than the vision workload.
    assert mean_bits["memn2n"] < mean_bits["vit_cifar"]
