"""Bench: paper Fig. 12 — tile area breakdown.

Paper shape: QxK logic is the largest component (38%), softmax 13%,
value buffer 18%, key buffer 16%, xV logic 15%; K+V SRAM together 34%.
"""

import pytest

from repro.eval import experiments as E
from repro.hw import AE_LEOPARD, HP_LEOPARD, AreaModel, baseline_like


def test_fig12_area(benchmark):
    result = benchmark(E.run_fig12)
    print("\n" + result.table)
    shares = {row["component"]: row["share"]
              for row in result.data["rows"]}
    assert shares["qk_logic"] == pytest.approx(0.38, abs=0.02)
    assert shares["softmax"] == pytest.approx(0.13, abs=0.02)
    assert shares["value_buffer"] == pytest.approx(0.18, abs=0.02)
    assert shares["key_buffer"] == pytest.approx(0.16, abs=0.02)
    assert shares["v_logic"] == pytest.approx(0.15, abs=0.02)
    # memory is ~34% of the layout, as the paper reports
    assert shares["key_buffer"] + shares["value_buffer"] == pytest.approx(
        0.34, abs=0.03)


def test_fig12_design_point_areas(benchmark):
    """AE matches the baseline area (iso-area claim); HP is ~15% larger."""
    model = AreaModel()
    areas = benchmark(lambda: {
        "ae": model.tile_area(AE_LEOPARD).total_mm2,
        "hp": model.tile_area(HP_LEOPARD).total_mm2,
        "base": model.tile_area(baseline_like(AE_LEOPARD)).total_mm2,
    })
    assert abs(areas["ae"] - areas["base"]) / areas["base"] < 0.002
    assert 1.05 < areas["hp"] / areas["ae"] < 1.25
