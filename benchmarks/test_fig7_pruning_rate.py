"""Bench: paper Fig. 7 — runtime pruning rate per task.

Paper shape: MemN2N prunes the most (~92% avg), BERT-family
intermediate (~74-79%), ViT the least among accuracy-preserved tasks
(~60%), GPT-2 ~74%.  We assert the ordering the paper emphasizes:
MemN2N > BERT-GLUE > ViT, and substantial pruning everywhere.
"""

import numpy as np

from benchmarks.conftest import BENCH_WORKLOADS, run_once
from repro.eval import experiments as E


def test_fig7_pruning_rate(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig7(scale, workloads=BENCH_WORKLOADS, cache=trained))
    print("\n" + result.table)
    means = result.data["suite_means"]

    # Every suite prunes a substantial fraction of scores.
    assert all(rate > 0.3 for rate in means.values()), means
    # Paper ordering: MemN2N highest, ViT below the BERT-GLUE suites.
    assert means["memn2n"] > means["bert_base_glue"]
    assert means["vit_cifar"] < means["memn2n"]
    assert means["vit_cifar"] < max(means["bert_base_glue"],
                                    means["bert_large_glue"])
