"""Bench: paper Fig. 2 — fine-tuning dynamics on a QNLI-like task.

Paper shape: sparsity and threshold rise over fine-tuning epochs while
normalized training loss falls.
"""

from benchmarks.conftest import run_once
from repro.eval import experiments as E


def test_fig2_finetune_dynamics(benchmark, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig2(scale, workload="bert_base_glue/G-QNLI"))
    print("\n" + result.table)
    history = result.data["history"]

    sparsity = history.sparsities()
    thresholds = history.mean_thresholds()
    # Shape: sparsity grows from the first to the last epoch ...
    assert sparsity[-1] > sparsity[0]
    # ... the learned threshold moves up from its zero initialization ...
    assert thresholds[-1] > 0.0
    # ... and fine-tuning ends in a trained state (loss finite, sane).
    assert history.normalized_losses()[-1] > 0.0
