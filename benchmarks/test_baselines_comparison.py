"""Bench: learned thresholds vs heuristic pruning (paper §1 claim).

"The literature has relied on heuristics, statistical sampling, or
human input that do not provide reliable expected accuracy."  This
bench sweeps the A3-style relative-threshold and SpAtten-style top-k
knobs on the same trained model and places LeOPArd's learned operating
point on the same accuracy/pruning plane.

Expected shape: the learned point is on (or above) the heuristics'
accuracy-pruning frontier — no heuristic setting is simultaneously
sparser and more accurate — and it needs no per-task knob.
"""

from benchmarks.conftest import run_once
from repro.eval import experiments as E

WORKLOAD = "bert_base_glue/G-QNLI"


def test_baselines_comparison(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_baseline_comparison(scale, workload=WORKLOAD,
                                          cache=trained))
    print("\n" + result.table)
    rows = {row["method"]: row for row in result.data["rows"]}
    learned = rows["learned (LeOPArd)"]

    assert learned["pruning_rate"] > 0.4
    # Frontier claim: no heuristic point strictly dominates the
    # learned one (sparser AND more accurate).
    for method, row in rows.items():
        if method == "learned (LeOPArd)":
            continue
        dominates = (row["pruning_rate"] > learned["pruning_rate"] + 0.01
                     and row["accuracy"] > learned["accuracy"] + 0.01)
        assert not dominates, method
