"""Bench: paper Fig. 6 — accuracy before/after runtime pruning.

Paper shape: average accuracy degradation near zero (< 0.2% absolute
in the paper; we allow a few percent at reproduction scale, where a
single test example weighs ~2%).
"""

from benchmarks.conftest import BENCH_WORKLOADS, run_once
from repro.eval import experiments as E


def test_fig6_accuracy(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig6(scale, workloads=BENCH_WORKLOADS, cache=trained))
    print("\n" + result.table)
    # Mean degradation across accuracy tasks stays near zero.
    assert abs(result.data["mean_delta"]) < 0.05
    # Perplexity stays essentially unchanged on the LM task.
    for row in result.data["rows"]:
        if row["metric"] == "perplexity":
            assert abs(row["delta"]) < 0.5
