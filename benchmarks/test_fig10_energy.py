"""Bench: paper Fig. 10 — total energy reduction over the baseline.

Paper shape: ~3.9x geomean for AE and ~4.0x for HP (nearly equal:
extra DPUs raise power and performance together); energy gains exceed
speedups because pruning also removes memory accesses; MemN2N saves
the most, ViT the least.
"""

from benchmarks.conftest import BENCH_WORKLOADS, run_once
from repro.eval import experiments as E


def test_fig10_energy(benchmark, trained, scale):
    fig10 = run_once(
        benchmark,
        lambda: E.run_fig10(scale, workloads=BENCH_WORKLOADS, cache=trained))
    print("\n" + fig10.table)

    gmean_ae = fig10.data["gmean_ae"]
    gmean_hp = fig10.data["gmean_hp"]
    assert gmean_ae > 1.5
    # AE and HP energy reductions are nearly identical (paper: 3.9 vs 4.0).
    assert abs(gmean_ae - gmean_hp) / gmean_ae < 0.1

    # Energy reduction exceeds the speedup (paper: "The impact of
    # LeOPArd on energy exceeds that on speedup").
    fig9 = E.run_fig9(scale, workloads=BENCH_WORKLOADS, cache=trained)
    assert gmean_ae > fig9.data["gmean_ae"]

    rows = {row["task"]: row for row in fig10.data["rows"]
            if row["task"] != "GMean"}
    assert rows["memn2n/Task-1"]["AE-LeOPArd"] \
        > rows["vit_cifar/CIFAR-10"]["AE-LeOPArd"]
