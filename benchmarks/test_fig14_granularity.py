"""Bench: paper Fig. 14 — bit-serial granularity (B) sweep.

Paper shape: on MemN2N workloads, B = 2 minimizes front-end energy per
score; B = 1 pays extra per-cycle latching, B = 4 and especially the
single-cycle 12-bit point lose early-termination resolution.
"""

from benchmarks.conftest import run_once
from repro.eval import experiments as E

MEMN2N_TASKS = ["memn2n/Task-1", "memn2n/Task-7"]


def test_fig14_granularity(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig14(scale, workloads=MEMN2N_TASKS, cache=trained))
    print("\n" + result.table)
    normalized = result.data["normalized"]

    # B=2 is the sweet spot of the sweep.
    assert normalized[2] <= normalized[1]
    assert normalized[2] <= normalized[4] + 0.05
    assert normalized[2] < normalized[12]
    # The non-serial 12-bit point is the most expensive.
    assert normalized[12] == max(normalized.values())
