"""Bench: paper Fig. 11 — energy breakdown and savings attribution.

Paper shape: the back-end (softmax + xV + value memory) dominates the
baseline (>65% of energy); runtime pruning alone removes back-end work
(1.7-2.5x); bit-serial early termination then cuts QxK compute and key
memory on top (1.3-2.3x more).
"""

from benchmarks.conftest import run_once
from repro.eval import experiments as E

SUITE_SUBSET = ["memn2n/Task-1", "memn2n/Task-7",
                "bert_base_glue/G-SST", "bert_base_glue/G-QNLI",
                "vit_cifar/CIFAR-10"]


def test_fig11_breakdown(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_fig11(scale, workloads=SUITE_SUBSET, cache=trained))
    print("\n" + result.table)

    for suite, gains in result.data["attribution"].items():
        # Both optimizations contribute energy savings.
        assert gains["pruning_gain"] > 1.2, suite
        assert gains["bitserial_gain"] > 1.0, suite

    rows = result.data["rows"]
    by_design = {}
    for row in rows:
        by_design.setdefault(row["suite"], {})[row["design"]] = row
    for suite, designs in by_design.items():
        base = designs["Baseline"]
        pruned = designs["LeOPArd-P"]
        full = designs["LeOPArd"]
        # Pruning-only leaves the front-end untouched ...
        assert abs(pruned["qk_compute"] - base["qk_compute"]) < 0.05
        assert abs(pruned["key_memory"] - base["key_memory"]) < 0.02
        # ... and shrinks the back-end components.
        assert pruned["softmax"] < base["softmax"]
        assert pruned["v_compute"] < base["v_compute"]
        # Bit-serial early termination then shrinks the front-end.
        assert full["key_memory"] < pruned["key_memory"]
        assert full["normalized_total"] < pruned["normalized_total"]

    # MemN2N saves more than the vision workload end to end.
    memn2n_total = by_design["memn2n"]["LeOPArd"]["normalized_total"]
    vit_total = by_design["vit_cifar"]["LeOPArd"]["normalized_total"]
    assert memn2n_total < vit_total
