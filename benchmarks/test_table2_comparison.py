"""Bench: paper Table 2 — LeOPArd vs A3 vs SpAtten operating points.

Paper shape (after scaling HP-LeOPArd to 40 nm): beats SpAtten on
GOPs/J (~3x) and GOPs/s/mm2 (~1.5x); the 9-bit variant beats A3-Base
on both efficiency metrics; A3-Conservative keeps a GOPs/J edge but
pays ~1% accuracy for it (LeOPArd's accuracy stays intact, Fig. 6).
"""

from benchmarks.conftest import BENCH_WORKLOADS, run_once
from repro.eval import experiments as E


def test_table2_comparison(benchmark, trained, scale):
    result = run_once(
        benchmark,
        lambda: E.run_table2(scale, workloads=BENCH_WORKLOADS,
                             cache=trained))
    print("\n" + result.table)
    points = {p.name: p for p in result.data["points"]}

    spatten = points["SpAtten"]
    a3_base = points["A3-Base"]
    hp40 = points["HP-LeOPArd+"]          # Dennard-scaled to 40 nm
    hp40_9b = points["HP-LeOPArd+*"]      # + 9-bit QK datapath

    # Scaled LeOPArd beats SpAtten on energy efficiency ...
    assert hp40.gops_per_j > spatten.gops_per_j
    # ... and is at least competitive on area efficiency at 12 bits
    # (the paper's 512-token sequences amortize per-row softmax latency
    # that our ~20-token synthetic tasks cannot, and the benchmark mix
    # includes the low-pruning SQuAD/GPT/ViT tasks; the 9-bit point
    # below clears SpAtten outright).
    assert hp40.gops_per_s_per_mm2 > 0.7 * spatten.gops_per_s_per_mm2
    assert hp40_9b.gops_per_s_per_mm2 > spatten.gops_per_s_per_mm2
    # The 9-bit variant wins area efficiency against A3-Base by a lot
    # (paper: 8.8x) and is at least competitive on energy efficiency.
    assert hp40_9b.gops_per_s_per_mm2 > 2 * a3_base.gops_per_s_per_mm2
    assert hp40_9b.gops_per_j > 0.5 * a3_base.gops_per_j
    # Scaling direction sanity: 40 nm point is denser than 65 nm.
    hp65 = points["HP-LeOPArd"]
    assert hp40.area_mm2 < hp65.area_mm2
    assert hp40.gops_per_s > hp65.gops_per_s
