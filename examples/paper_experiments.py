"""Regenerate the paper's tables and figures from the command line.

Runs any subset of the 12 reproduced artifacts (fig2, fig6-fig14,
table1, table2) and prints their data tables.  Trained workloads flow
through the read-through WorkloadCache: with ``--cache-dir`` they
persist on disk (warm reruns train nothing), and with ``--jobs N``
training shards across N worker processes before the experiments
consume the shared cache.

Run:
    python examples/paper_experiments.py table1 fig12        # instant
    python examples/paper_experiments.py fig7 fig9 fig10     # trains subset
    python examples/paper_experiments.py fig7 --jobs 4 --cache-dir store
    python examples/paper_experiments.py fig7 --suite 'bert*'  # by suite glob
    python examples/paper_experiments.py --full all          # 43 tasks
"""

import argparse
import os
import sys
import tempfile
import time

from repro.eval.experiments import (ALL_EXPERIMENTS,
                                    REPRESENTATIVE_WORKLOADS,
                                    STATIC_EXPERIMENTS, required_workloads)
from repro.eval.runner import WorkloadCache
from repro.eval.store import WorkloadStore
from repro.eval.workloads import (QUICK, WORKLOADS, list_suites,
                                  list_workloads)


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Regenerate LeOPArd paper artifacts")
    parser.add_argument("experiments", nargs="+",
                        help=f"any of {sorted(ALL_EXPERIMENTS)} or 'all'")
    parser.add_argument("--full", action="store_true",
                        help="use all 43 tasks instead of the "
                             "representative subset (slow)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names overriding "
                             "the representative subset")
    parser.add_argument("--suite", default=None,
                        help="run every workload whose suite matches "
                             "this glob (e.g. memn2n, 'bert*') — same "
                             "selection as python -m repro.eval.sweep")
    parser.add_argument("--kernel-backend", default=None,
                        help="bit-serial kernel backend for all "
                             "hardware simulation (repro.hw.backends)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel training worker processes for the "
                             "workload sweep")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk trained-model store; warm reruns "
                             "skip training entirely")
    parser.add_argument("--no-cache", action="store_true",
                        help="never touch a disk store; train in-process")
    parser.add_argument("--save-dir", default=None,
                        help="directory to write <artifact>.json/.txt")
    args = parser.parse_args(argv)

    # validate everything up front: a typo must exit with the valid
    # names, not raise a KeyError after minutes of training
    names = sorted(ALL_EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}. "
                     f"Valid names: {', '.join(sorted(ALL_EXPERIMENTS))} "
                     "(or 'all').")

    if args.workloads and args.suite:
        parser.error("--workloads and --suite are mutually exclusive")
    if args.full and args.suite:
        parser.error("--full and --suite are mutually exclusive "
                     "(--suite already picks the workload set)")
    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",")
                     if w.strip()]
        bad = [w for w in workloads if w not in WORKLOADS]
        if bad:
            parser.error(
                f"unknown workloads: {', '.join(bad)}. Valid names: "
                f"{', '.join(list_workloads())}")
    elif args.suite:
        workloads = list_workloads(args.suite)
        if not workloads:
            parser.error(f"suite glob {args.suite!r} matches nothing; "
                         "valid suites: " + ", ".join(list_suites()))
    elif args.full:
        workloads = list_workloads()          # the full 43-task registry
    else:
        workloads = list(REPRESENTATIVE_WORKLOADS)

    if args.kernel_backend:
        from repro.hw import get_backend
        try:
            get_backend(args.kernel_backend)  # fail fast on a typo
        except KeyError as error:
            parser.error(str(error))
        # the env var reaches every TileSimulator in this process and
        # in --jobs worker processes alike
        os.environ["REPRO_KERNEL_BACKEND"] = args.kernel_backend

    if args.no_cache and args.cache_dir:
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    if args.no_cache and args.jobs > 1:
        parser.error("--jobs > 1 needs a store (drop --no-cache): "
                     "workers hand results back through the shared store")
    return parser, args, names, workloads


def main(argv=None):
    parser, args, names, workloads = _parse_args(argv)

    store = None
    ephemeral_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir
        if cache_dir is None and args.jobs > 1:
            cache_dir = ephemeral_dir = tempfile.mkdtemp(
                prefix="leopard-store-")
            print(f"[store] no --cache-dir given; using ephemeral "
                  f"{cache_dir}")
        if cache_dir is not None:
            store = WorkloadStore(cache_dir)
    try:
        return _run(args, names, workloads, store)
    finally:
        if ephemeral_dir is not None:
            import shutil
            shutil.rmtree(ephemeral_dir, ignore_errors=True)


def _run(args, names, workloads, store):
    cache = WorkloadCache(store)
    explicit = args.workloads is not None or args.suite is not None
    if explicit and ({"fig2", "baselines"} & set(names)):
        print("[note] fig2/baselines always use the default workload "
              "(bert_base_glue/G-QNLI); --workloads does not apply\n")

    # train (or rehydrate) everything the experiments will ask for, so
    # the figure/table code itself never trains
    needed = required_workloads(names, workloads, explicit=explicit)
    if needed and store is not None:
        report = cache.prefetch(needed, QUICK, jobs=args.jobs, echo=print)
        print(report.summary() + "\n")
        if report.failed:
            failed = ", ".join(o.workload for o in report.failed)
            print(f"error: sweep failed for {failed}", file=sys.stderr)
            return 1

    for name in names:
        runner = ALL_EXPERIMENTS[name]
        start = time.time()
        if name in STATIC_EXPERIMENTS:
            result = runner()
        elif name in ("fig2", "baselines"):
            result = runner(QUICK, cache=cache)    # single default workload
        elif name == "fig14":
            result = runner(QUICK, cache=cache,
                            workloads=workloads if explicit else None)
        else:
            result = runner(QUICK, workloads=workloads, cache=cache)
        elapsed = time.time() - start
        print(result.table)
        print(f"[{name} done in {elapsed:.1f}s]\n")
        if args.save_dir:
            from repro.eval.artifacts import save_experiment
            path = save_experiment(result, args.save_dir)
            print(f"[saved {path}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
