"""Regenerate the paper's tables and figures from the command line.

Runs any subset of the 12 reproduced artifacts (fig2, fig6-fig14,
table1, table2) and prints their data tables.  Trained workloads are
cached within the process, so running several experiments only trains
each task once.

Run:
    python examples/paper_experiments.py table1 fig12        # instant
    python examples/paper_experiments.py fig7 fig9 fig10     # trains subset
    python examples/paper_experiments.py --full all          # 43 tasks
"""

import argparse
import sys
import time

from repro.eval import experiments as E
from repro.eval.experiments import ALL_EXPERIMENTS, REPRESENTATIVE_WORKLOADS
from repro.eval.runner import WorkloadCache
from repro.eval.workloads import QUICK

# Experiments that never train a model.
STATIC = {"table1", "fig12"}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Regenerate LeOPArd paper artifacts")
    parser.add_argument("experiments", nargs="+",
                        help=f"any of {sorted(ALL_EXPERIMENTS)} or 'all'")
    parser.add_argument("--full", action="store_true",
                        help="use all 43 tasks instead of the "
                             "representative subset (slow)")
    parser.add_argument("--save-dir", default=None,
                        help="directory to write <artifact>.json/.txt")
    args = parser.parse_args(argv)

    names = sorted(ALL_EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    workloads = None if args.full else list(REPRESENTATIVE_WORKLOADS)
    cache = WorkloadCache()

    for name in names:
        runner = ALL_EXPERIMENTS[name]
        start = time.time()
        if name in STATIC:
            result = runner()
        elif name == "fig2":
            result = runner(QUICK)
        elif name == "fig14":
            result = runner(QUICK, cache=cache)   # MemN2N subset built in
        elif name == "baselines":
            result = runner(QUICK, cache=cache)   # single-workload sweep
        else:
            result = runner(QUICK, workloads=workloads, cache=cache)
        elapsed = time.time() - start
        print(result.table)
        print(f"[{name} done in {elapsed:.1f}s]\n")
        if args.save_dir:
            from repro.eval.artifacts import save_experiment
            path = save_experiment(result, args.save_dir)
            print(f"[saved {path}]\n")


if __name__ == "__main__":
    main(sys.argv[1:])
