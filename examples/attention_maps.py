"""Visualize what runtime pruning removes from an attention map.

Trains a small classifier, then renders one head's attention as text
heatmaps: raw scores, the learned-threshold pruning mask, and the
post-pruning softmax probabilities — showing that the pruned scores are
exactly the mass softmax would have (numerically) ignored anyway.

Run:  python examples/attention_maps.py
"""

import numpy as np

from repro.core.pruning import PruningMode
from repro.core.stats import measure_pruning, per_head_rates
from repro.data import batches
from repro.eval.reporting import ascii_heatmap
from repro.eval.runner import run_workload
from repro.eval.workloads import QUICK, get_workload
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def main():
    spec = get_workload("bert_base_glue/G-QNLI")
    print(f"training {spec.name} ...")
    result = run_workload(spec, QUICK)
    print(f"pruning rate {result.pruning_rate:.1%}, "
          f"accuracy {result.pruned_metric:.3f} "
          f"(baseline {result.baseline_metric:.3f})\n")

    record = result.records[0]
    batch_index, head = 0, 0
    scores = record.scores[batch_index, head]
    pruned = record.pruned_mask[batch_index, head]
    threshold = record.threshold

    print(f"layer {record.layer_index}, head {head}, "
          f"learned threshold {threshold:.3f}")
    print("\nraw attention scores (dark = high):")
    print(ascii_heatmap(scores))
    print("\npruned positions ('#' = dropped by the learned threshold):")
    print(ascii_heatmap(pruned))

    masked = np.where(pruned, -1e9, scores)
    probs = F.softmax(Tensor(masked)).data
    print("\npost-pruning softmax probabilities:")
    print(ascii_heatmap(probs))

    surviving_mass = np.where(pruned, 0.0,
                              F.softmax(Tensor(scores)).data).sum(axis=-1)
    print(f"\nsoftmax mass retained per query row "
          f"(min {surviving_mass.min():.4f}, "
          f"mean {surviving_mass.mean():.4f}) — the pruned scores held "
          f"almost no probability, which is why accuracy is preserved.")

    rates = per_head_rates(result.records)
    print(f"\nper-(layer, head) pruning rates:\n{rates.round(2)}")


if __name__ == "__main__":
    main()
