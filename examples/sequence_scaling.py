"""Sequence-length scaling: the quadratic-cost motivation (paper §2.3).

Attention cost grows as O(s^2 d); runtime pruning attacks exactly the
part that scales quadratically (Score, softmax, xV).  This example
sweeps the sequence length on synthetic attention workloads with a
fixed score concentration and shows:

* baseline cycles growing ~quadratically,
* LeOPArd cycles growing much more slowly (the survivor count per row
  stays roughly constant when attention is concentrated),
* the speedup therefore widening with sequence length — the paper's
  core scalability argument.

Run:  python examples/sequence_scaling.py
"""

import numpy as np

from repro.eval.reporting import format_dict_table
from repro.hw import AE_LEOPARD, TileSimulator, baseline_like
from repro.hw.workload import job_from_arrays


def concentrated_attention_job(seq_len: int, dim: int = 64,
                               relevant: int = 8, seed: int = 0):
    """Synthetic head where each query correlates with ~``relevant``
    keys — the concentration the paper observes in trained models."""
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((seq_len, dim)) * 0.3
    k = rng.standard_normal((seq_len, dim)) * 0.3
    # plant strong query-key matches for a few keys per query
    for row in range(seq_len):
        partners = rng.choice(seq_len, size=min(relevant, seq_len),
                              replace=False)
        for partner in partners:
            shared = rng.standard_normal(dim)
            q[row] += 0.4 * shared
            k[partner] += 0.4 * shared / len(partners)
    # threshold chosen so that roughly the planted partners survive;
    # queries carry the 1/sqrt(d) scale, as in recorded attention jobs
    q = q / np.sqrt(dim)
    scores = q @ k.T
    threshold = np.quantile(scores,
                            max(0.0, 1.0 - 1.5 * relevant / seq_len))
    return job_from_arrays(q, k, float(threshold))


def main():
    baseline_sim = TileSimulator(baseline_like(AE_LEOPARD))
    leopard_sim = TileSimulator(AE_LEOPARD)

    rows = []
    previous = None
    for seq_len in (16, 32, 64, 128, 256):
        job = concentrated_attention_job(seq_len)
        base = baseline_sim.run_job(job)
        leo = leopard_sim.run_job(job)
        row = {
            "seq_len": seq_len,
            "baseline cycles": base.total_cycles,
            "LeOPArd cycles": leo.total_cycles,
            "pruning rate": leo.pruning_rate,
            "speedup": base.total_cycles / leo.total_cycles,
        }
        if previous is not None:
            row["baseline growth"] = (base.total_cycles
                                      / previous["baseline cycles"])
            row["LeOPArd growth"] = (leo.total_cycles
                                     / previous["LeOPArd cycles"])
        rows.append(row)
        previous = row

    print(format_dict_table(
        rows, title="Attention cost vs sequence length "
                    "(concentrated scores, paper §2.3 motivation)"))
    print("\nBaseline time per doubling approaches 4x (quadratic);"
          "\nLeOPArd grows more slowly because the survivor count per"
          "\nrow is bounded by the content, so the speedup widens"
          "\nwith sequence length.")


if __name__ == "__main__":
    main()
