"""Autoregressive decode phase on the accelerator.

The paper evaluates GPT-2 on WikiText-2 with sequence length 1280;
at deployment an LM spends its time in the *decode* phase: one query
row per step attending over a growing K/V history through the KV
cache.  This example trains the WikiText-like causal LM, generates
text with the learned thresholds active (HARD mode), harvests the
decode-phase attention records (S_q = 1, growing keys), and simulates
them on LeOPArd vs the baseline.

Run:  python examples/gpt_decode.py
"""

import numpy as np

from repro.eval.runner import run_workload
from repro.eval.workloads import QUICK, get_workload
from repro.hw import AE_LEOPARD, EnergyModel, TileSimulator, baseline_like
from repro.hw.workload import jobs_from_records


def main():
    spec = get_workload("gpt2_wikitext/WikiText-2")
    print(f"training {spec.name} ...")
    result = run_workload(spec, QUICK)
    model, controller = result.model, result.controller
    print(f"perplexity {result.pruned_metric:.3f} "
          f"(baseline {result.baseline_metric:.3f}), "
          f"prefill pruning rate {result.pruning_rate:.1%}\n")

    # Generate with pruning active and decode-phase recording on.
    controller.hard()
    for attention in model.attention_modules():
        attention.record_scores = True
        attention.record_qk = True
        attention.clear_records()

    from repro.data.wikitext import BOS
    prompt = np.full((4, 1), BOS, dtype=np.int64)
    tokens = model.generate(prompt, max_new_tokens=20)
    print(f"generated token streams (first rows): {tokens[:2].tolist()}")

    records = []
    for attention in model.attention_modules():
        records.extend(attention.records)
        attention.record_scores = False
        attention.record_qk = False
        attention.clear_records()

    decode_rate = float(np.mean([record.pruning_rate()
                                 for record in records
                                 if record.pruned_mask is not None]))
    print(f"decode-phase pruning rate: {decode_rate:.1%} "
          f"over {len(records)} step records\n")

    jobs = jobs_from_records(records)
    leopard = TileSimulator(AE_LEOPARD).run(jobs)
    baseline = TileSimulator(baseline_like(AE_LEOPARD)).run(jobs)
    energy = EnergyModel()
    print(f"decode-phase jobs: {len(jobs)} "
          f"(S_q = 1 rows against growing K history)")
    print(f"AE-LeOPArd vs baseline on the decode stream: "
          f"{baseline.total_cycles / leopard.total_cycles:.2f}x speedup, "
          f"{energy.total(baseline.counters, baseline_like(AE_LEOPARD)) / energy.total(leopard.counters, AE_LEOPARD):.2f}x "
          f"energy reduction")


if __name__ == "__main__":
    main()
