"""Serving throughput: dynamic batching vs the serial baseline.

Two traffic shapes, both driven by N concurrent synthetic clients:

* ``--mode generate`` (default): each client opens an autoregressive
  generation stream; the serving engine coalesces every decode step
  across streams with per-stream KV caches.  The serial baseline runs
  ``model.generate`` one stream at a time — the decode phase is one
  query row per step, so it is call-overhead bound and batching pays
  off heavily.
* ``--mode classify``: each client awaits one-shot classification
  requests through the asyncio front end; the dynamic batcher
  coalesces across clients into fixed-width padded batches.  The
  serial baseline is one engine call per request.

Run:  python examples/serving_throughput.py --streams 8 --quick
"""

import argparse
import asyncio
import sys
import time

import numpy as np

from repro.serve import AsyncServingEngine, BatchPolicy, ServingEngine
from repro.serve.__main__ import build_classifier_engine, build_lm_engine

MAX_SEQ = 24   # build_classifier_engine's max_seq_len
VOCAB = 64


# -- generation streams --------------------------------------------------
def run_generate(args) -> float:
    rng = np.random.default_rng(args.seed)
    new_tokens = 8 if args.quick else 24
    prompt_max = 8
    engine = build_lm_engine(args.seed,
                             max_seq_len=prompt_max + new_tokens)
    prompts = [rng.integers(1, VOCAB, size=int(n))
               for n in rng.integers(2, prompt_max + 1, size=args.streams)]
    engine.model.generate(prompts[0][None, :], 2)        # warm-up

    start = time.perf_counter()
    for prompt in prompts:
        engine.model.generate(prompt[None, :], new_tokens)
    serial_elapsed = time.perf_counter() - start

    serving = ServingEngine(engine, BatchPolicy(
        max_batch_size=args.max_batch_size or min(args.streams, 16),
        max_wait=args.max_wait, pad_to=prompt_max))
    ids = [serving.open_stream(p, new_tokens) for p in prompts]
    start = time.perf_counter()
    serving.drain()
    batched_elapsed = time.perf_counter() - start
    for stream_id in ids:
        serving.finish(stream_id)

    tokens = args.streams * new_tokens
    serial_tps = tokens / serial_elapsed
    batched_tps = tokens / batched_elapsed
    print(f"generation: {args.streams} concurrent streams x "
          f"{new_tokens} new tokens (per-stream KV caches)")
    print(f"serial baseline : {args.streams / serial_elapsed:8.1f} req/s "
          f"({serial_tps:8.1f} tok/s, one stream at a time)")
    print(f"batched serving : {args.streams / batched_elapsed:8.1f} req/s "
          f"({batched_tps:8.1f} tok/s, {serving.stats.decode_rounds} "
          f"coalesced decode rounds, mean batch "
          f"{serving.stats.mean_batch_size:.1f})")
    speedup = batched_tps / serial_tps
    print(f"speedup         : {speedup:8.2f}x")
    return speedup


# -- one-shot classification traffic -------------------------------------
def make_traffic(streams: int, per_stream: int, seed: int):
    rng = np.random.default_rng(seed)
    return [[rng.integers(0, VOCAB, size=int(n))
             for n in rng.integers(4, MAX_SEQ + 1, size=per_stream)]
            for _ in range(streams)]


def run_classify(args) -> float:
    engine = build_classifier_engine(args.seed)
    per_stream = 6 if args.quick else args.requests_per_stream
    traffic = make_traffic(args.streams, per_stream, args.seed)
    buckets = (None if args.buckets.lower() == "none" else
               tuple(int(b) for b in args.buckets.split(",")))
    max_batch = args.max_batch_size or max(2, min(args.streams, 16) // 2)

    warm = traffic[0][0]
    engine.predict_many(warm[None, :], np.ones((1, len(warm)), dtype=bool))
    requests = [r for stream in traffic for r in stream]
    start = time.perf_counter()
    for request in requests:
        engine.predict_many(request[None, :],
                            np.ones((1, len(request)), dtype=bool))
    serial_rps = len(requests) / (time.perf_counter() - start)

    serving = ServingEngine(engine, BatchPolicy(
        max_batch_size=max_batch, max_wait=args.max_wait,
        buckets=buckets))

    async def main():
        async with AsyncServingEngine(serving) as front:
            async def client(stream):
                return [await front.submit(r) for r in stream]
            await asyncio.gather(*[client(s) for s in traffic])

    start = time.perf_counter()
    asyncio.run(main())
    batched_rps = len(requests) / (time.perf_counter() - start)
    speedup = batched_rps / serial_rps

    print(f"classify: {args.streams} streams x {per_stream} requests "
          f"= {len(requests)} requests (seq 4..{MAX_SEQ})")
    print(f"serial baseline : {serial_rps:8.1f} req/s "
          f"(one engine call per request)")
    print(f"batched serving : {batched_rps:8.1f} req/s "
          f"({serving.stats.batches} batches, mean size "
          f"{serving.stats.mean_batch_size:.1f}, max "
          f"{serving.stats.max_batch_size})")
    print(f"speedup         : {speedup:8.2f}x")
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=["generate", "classify"],
                        default="generate")
    parser.add_argument("--streams", type=int, default=8,
                        help="concurrent synthetic clients")
    parser.add_argument("--requests-per-stream", type=int, default=16,
                        help="classify mode: requests per client")
    parser.add_argument("--quick", action="store_true",
                        help="small request count for CI smoke runs")
    parser.add_argument("--max-batch-size", type=int, default=None)
    parser.add_argument("--max-wait", type=float, default=0.0005)
    parser.add_argument("--buckets", default="none",
                        help="classify mode: comma-separated pad-width "
                             "ladder; 'none' pads to the model maximum")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless batched >= "
                             "--min-speedup x serial")
    parser.add_argument("--min-speedup", type=float, default=1.0)
    args = parser.parse_args(argv)

    speedup = (run_generate(args) if args.mode == "generate"
               else run_classify(args))

    if args.check and speedup < args.min_speedup:
        print(f"FAIL: batched speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
