"""Serving throughput: both schedulers vs the serial baseline.

Two traffic shapes, both driven by N concurrent synthetic clients:

* ``--mode generate`` (default): each client opens an autoregressive
  generation stream; the serving engine coalesces every decode step
  across streams with per-stream KV caches, under **both** stream
  schedulers — round-based (prefill everything, decode all live
  streams in chunks) and continuous (admit into free decode slots,
  one full slot batch per step).  ``--stagger K`` spreads arrivals
  one stream every K engine steps — the mixed-arrival regime where
  round-based chunking leaves decode batches partially filled and
  continuous batching pays off.  The serial baseline runs
  ``model.generate`` one stream at a time.
* ``--mode classify``: each client awaits one-shot classification
  requests through the asyncio front end; the dynamic batcher
  coalesces across clients into fixed-width padded batches.  The
  serial baseline is one engine call per request.

Run:  python examples/serving_throughput.py --streams 16 --stagger 2 --quick
"""

import argparse
import asyncio
import sys
import time
from collections import deque

import numpy as np

from repro.serve import AsyncServingEngine, BatchPolicy, ServingEngine
from repro.serve.loadgen import TraceSpec, replay_trace
from repro.serve.__main__ import build_classifier_engine, build_lm_engine

MAX_SEQ = 24   # build_classifier_engine's max_seq_len
VOCAB = 64


# -- generation streams --------------------------------------------------
def drive_streams(serving, requests, stagger) -> float:
    """Push every (prompt, new_tokens) request through ``serving``
    (arrivals staggered one stream per ``stagger`` steps; 0 = all at
    once) and return the elapsed wall time."""
    ids = []
    start = time.perf_counter()
    if stagger <= 0:
        ids = [serving.open_stream(p, n) for p, n in requests]
        serving.drain()
    else:
        waiting = deque(requests)
        tick = 0
        while waiting or serving.has_pending():
            if waiting and tick % stagger == 0:
                prompt, n = waiting.popleft()
                ids.append(serving.open_stream(prompt, n))
            serving.step()
            tick += 1
    elapsed = time.perf_counter() - start
    for stream_id in ids:
        serving.finish(stream_id)
    return elapsed


def run_generate(args) -> dict:
    rng = np.random.default_rng(args.seed)
    new_tokens = 8 if args.quick else 24
    prompt_max = 8
    engine = build_lm_engine(args.seed,
                             max_seq_len=prompt_max + new_tokens)
    trace_requests = None
    if args.trace:
        # seeded trace-driven arrivals (Poisson or bursty MMPP) instead
        # of the step-locked stagger — the same heterogeneous request
        # mix, but arriving on a realistic timeline
        trace = TraceSpec(seed=args.seed, requests=args.streams,
                          process=args.trace, rate=args.trace_rate,
                          burst_rate=args.trace_rate * 10,
                          prompt_tokens=(2, prompt_max),
                          new_tokens=(max(2, new_tokens // 2),
                                      new_tokens), vocab_size=VOCAB)
        trace_requests = trace.generate()
        requests = [(r.tokens, r.max_new_tokens)
                    for r in trace_requests]
    else:
        # heterogeneous requests — mixed prompt lengths *and* generation
        # budgets, like real traffic: streams finish at different times,
        # which is exactly when round-based chunking leaves decode
        # batches partially filled and the continuous slot pool stays
        # full
        requests = [
            (rng.integers(1, VOCAB, size=int(n)),
             int(rng.integers(max(2, new_tokens // 2), new_tokens + 1)))
            for n in rng.integers(2, prompt_max + 1, size=args.streams)]
    engine.model.generate(requests[0][0][None, :], 2)    # warm-up

    start = time.perf_counter()
    for prompt, n in requests:
        engine.model.generate(prompt[None, :], n)
    serial_elapsed = time.perf_counter() - start

    max_batch = args.max_batch_size or min(args.streams, 16)

    def make_serving(continuous: bool) -> ServingEngine:
        return ServingEngine(
            engine,
            BatchPolicy(max_batch_size=max_batch,
                        max_wait=args.max_wait, pad_to=prompt_max),
            continuous=continuous, preempt_after=args.preempt_after)

    def drive(serving) -> float:
        if trace_requests is not None:
            return replay_trace(serving, trace_requests,
                                clock=time.monotonic).duration
        return drive_streams(serving, requests, args.stagger)

    round_serving = make_serving(False)
    round_elapsed = drive(round_serving)
    cont_serving = make_serving(True)
    cont_elapsed = drive(cont_serving)

    tokens = sum(n for _, n in requests)
    serial_tps = tokens / serial_elapsed
    round_tps = tokens / round_elapsed
    cont_tps = tokens / cont_elapsed
    if args.trace:
        arrivals = f"{args.trace} trace @ {args.trace_rate:g} req/s"
    elif args.stagger:
        arrivals = f"staggered 1/{args.stagger} steps"
    else:
        arrivals = "burst arrivals"
    print(f"generation: {args.streams} concurrent streams x "
          f"{new_tokens} new tokens ({arrivals}, "
          f"{max_batch} decode slots)")
    print(f"serial baseline : {args.streams / serial_elapsed:8.1f} req/s "
          f"({serial_tps:8.1f} tok/s, one stream at a time)")
    print(f"round-based     : {args.streams / round_elapsed:8.1f} req/s "
          f"({round_tps:8.1f} tok/s, {round_serving.stats.decode_rounds} "
          f"decode forwards, mean batch "
          f"{round_serving.stats.mean_batch_size:.1f})")
    print(f"continuous      : {args.streams / cont_elapsed:8.1f} req/s "
          f"({cont_tps:8.1f} tok/s, {cont_serving.stats.decode_rounds} "
          f"decode forwards, mean batch "
          f"{cont_serving.stats.mean_batch_size:.1f}, "
          f"{cont_serving.stats.preemptions} preemptions)")
    print(f"speedup         : {round_tps / serial_tps:8.2f}x round-based, "
          f"{cont_tps / serial_tps:8.2f}x continuous "
          f"(continuous/round: {cont_tps / round_tps:.2f}x)")
    return {"batched": round_tps / serial_tps,
            "continuous": cont_tps / serial_tps,
            "continuous_vs_round": cont_tps / round_tps}


# -- one-shot classification traffic -------------------------------------
def make_traffic(streams: int, per_stream: int, seed: int):
    rng = np.random.default_rng(seed)
    return [[rng.integers(0, VOCAB, size=int(n))
             for n in rng.integers(4, MAX_SEQ + 1, size=per_stream)]
            for _ in range(streams)]


def run_classify(args) -> float:
    engine = build_classifier_engine(args.seed)
    per_stream = 6 if args.quick else args.requests_per_stream
    traffic = make_traffic(args.streams, per_stream, args.seed)
    if args.buckets.lower() == "none":
        buckets = None
    elif args.buckets.lower() == "auto":
        # auto-tune the pad ladder from the observed length histogram
        observed = [len(r) for stream in traffic for r in stream]
        buckets = BatchPolicy.from_observed(observed).buckets
        print(f"auto-tuned buckets from {len(observed)} observed "
              f"lengths: {buckets}")
    else:
        buckets = tuple(int(b) for b in args.buckets.split(","))
    max_batch = args.max_batch_size or max(2, min(args.streams, 16) // 2)

    warm = traffic[0][0]
    engine.predict_many(warm[None, :], np.ones((1, len(warm)), dtype=bool))
    requests = [r for stream in traffic for r in stream]
    start = time.perf_counter()
    for request in requests:
        engine.predict_many(request[None, :],
                            np.ones((1, len(request)), dtype=bool))
    serial_rps = len(requests) / (time.perf_counter() - start)

    serving = ServingEngine(engine, BatchPolicy(
        max_batch_size=max_batch, max_wait=args.max_wait,
        buckets=buckets))

    async def main():
        async with AsyncServingEngine(serving) as front:
            async def client(stream):
                return [await front.submit(r) for r in stream]
            await asyncio.gather(*[client(s) for s in traffic])

    start = time.perf_counter()
    asyncio.run(main())
    batched_rps = len(requests) / (time.perf_counter() - start)
    speedup = batched_rps / serial_rps

    print(f"classify: {args.streams} streams x {per_stream} requests "
          f"= {len(requests)} requests (seq 4..{MAX_SEQ})")
    print(f"serial baseline : {serial_rps:8.1f} req/s "
          f"(one engine call per request)")
    print(f"batched serving : {batched_rps:8.1f} req/s "
          f"({serving.stats.batches} batches, mean size "
          f"{serving.stats.mean_batch_size:.1f}, max "
          f"{serving.stats.max_batch_size})")
    print(f"speedup         : {speedup:8.2f}x")
    return {"batched": speedup}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=["generate", "classify"],
                        default="generate")
    parser.add_argument("--streams", type=int, default=8,
                        help="concurrent synthetic clients")
    parser.add_argument("--requests-per-stream", type=int, default=16,
                        help="classify mode: requests per client")
    parser.add_argument("--quick", action="store_true",
                        help="small request count for CI smoke runs")
    parser.add_argument("--max-batch-size", type=int, default=None)
    parser.add_argument("--max-wait", type=float, default=0.0005)
    parser.add_argument("--stagger", type=int, default=0,
                        help="generate mode: one stream arrives every "
                             "K engine steps (0 = burst)")
    parser.add_argument("--trace", choices=["poisson", "bursty"],
                        default=None,
                        help="generate mode: seeded trace-driven "
                             "arrivals instead of --stagger")
    parser.add_argument("--trace-rate", type=float, default=500.0,
                        help="calm-state arrival rate for --trace "
                             "(bursty traces burst at 10x)")
    parser.add_argument("--preempt-after", type=int, default=None,
                        help="generate mode: continuous-scheduler "
                             "preemption time slice")
    parser.add_argument("--buckets", default="none",
                        help="classify mode: comma-separated pad-width "
                             "ladder, 'auto' to tune from the observed "
                             "lengths, 'none' to pad to the model "
                             "maximum")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless batched >= "
                             "--min-speedup x serial")
    parser.add_argument("--min-speedup", type=float, default=1.0)
    parser.add_argument("--check-continuous", action="store_true",
                        help="generate mode: also require continuous "
                             ">= --min-continuous-ratio x round-based")
    parser.add_argument("--min-continuous-ratio", type=float, default=1.0)
    args = parser.parse_args(argv)

    speedups = (run_generate(args) if args.mode == "generate"
                else run_classify(args))
    # versioned CI benchmark artifact (no-op unless REPRO_BENCH_DIR)
    from repro.eval import record_bench
    record_bench("serving_throughput", dict(speedups),
                 context={"mode": args.mode, "streams": args.streams,
                          "stagger": args.stagger, "quick": args.quick,
                          "buckets": args.buckets})

    failed = False
    if args.check and speedups["batched"] < args.min_speedup:
        print(f"FAIL: batched speedup {speedups['batched']:.2f}x below "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    if args.check_continuous:
        ratio = speedups.get("continuous_vs_round", 0.0)
        if ratio < args.min_continuous_ratio:
            print(f"FAIL: continuous/round-based ratio {ratio:.2f}x "
                  f"below required {args.min_continuous_ratio:.2f}x",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
