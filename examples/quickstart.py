"""Quickstart: learned runtime pruning end to end on one task.

Trains a small BERT-style classifier on a synthetic GLUE-like task,
runs the paper's pruning-aware fine-tuning (soft threshold + surrogate
L0), then deploys the learned thresholds in HARD mode and simulates the
LeOPArd accelerator against the non-pruning baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FineTuneConfig, SurrogateL0Config, finetune_with_pruning, measure_pruning
from repro.data import batches, make_glue_task
from repro.data.glue import VOCAB_SIZE
from repro.hw import AE_LEOPARD, EnergyModel, TileSimulator, baseline_like
from repro.hw.workload import jobs_from_records
from repro.models import ClassifierConfig, TransformerClassifier
from repro.optim import Adam, clip_grad_norm


def main():
    rng = np.random.default_rng(0)
    task = make_glue_task("qnli", train_size=256, test_size=64, seed=0)

    # 1. Task training (the paper starts from a pretrained checkpoint).
    model = TransformerClassifier(ClassifierConfig(
        vocab_size=VOCAB_SIZE, max_seq_len=24, dim=32, num_heads=2,
        num_layers=2, num_classes=2, seed=0))
    optimizer = Adam(model.parameters(), lr=3e-3)
    for epoch in range(10):
        for batch in batches(task.train, 32, rng=rng, shuffle=True):
            loss = model.loss(batch)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(optimizer.all_params(), 1.0)
            optimizer.step()

    def accuracy():
        correct = total = 0
        model.eval()
        for batch in batches(task.test, 32):
            c, t = model.metrics(batch)
            correct += c
            total += t
        return correct / total

    baseline_accuracy = accuracy()
    print(f"baseline accuracy (no pruning): {baseline_accuracy:.3f}")

    # 2. Pruning-aware fine-tuning: learn one threshold per layer.
    controller = model.make_controller(
        l0_config=SurrogateL0Config(weight=0.05))
    history = finetune_with_pruning(
        model, controller,
        lambda: batches(task.train, 32, rng=rng, shuffle=True),
        FineTuneConfig(epochs=4, weight_lr=5e-4, threshold_lr=1e-2))
    print(f"learned per-layer thresholds: "
          f"{controller.threshold_values().round(3)}")

    # 3. Deployed metric under HARD pruning + measured pruning rate.
    pruned_accuracy = accuracy()
    report = measure_pruning(model, controller, batches(task.test, 32),
                             keep_records=True, record_qk=True,
                             max_records=8)
    print(f"accuracy with runtime pruning:  {pruned_accuracy:.3f} "
          f"(delta {baseline_accuracy - pruned_accuracy:+.3f})")
    print(f"runtime pruning rate: {report.overall_rate:.1%} "
          f"(per layer: {report.per_layer_rates().round(2)})")

    # 4. Hardware simulation: LeOPArd vs baseline accelerator.
    jobs = jobs_from_records(report.records)
    leopard = TileSimulator(AE_LEOPARD).run(jobs)
    baseline = TileSimulator(baseline_like(AE_LEOPARD)).run(jobs)
    energy = EnergyModel()
    speedup = baseline.total_cycles / leopard.total_cycles
    energy_gain = (energy.total(baseline.counters, baseline_like(AE_LEOPARD))
                   / energy.total(leopard.counters, AE_LEOPARD))
    print(f"AE-LeOPArd vs baseline: {speedup:.2f}x speedup, "
          f"{energy_gain:.2f}x energy reduction")

    # 5. Package for deployment: weights + learned thresholds + HW config.
    from repro.core import PrunedInferenceEngine

    engine = PrunedInferenceEngine(model, controller)
    engine.save("/tmp/leopard_quickstart")
    estimate = engine.estimate_hardware(next(batches(task.test, 32)))
    print(f"deployment engine saved; per-batch estimate: "
          f"{estimate.runtime_ns / 1000:.1f} us on {estimate.config_name}, "
          f"{estimate.speedup_vs_baseline:.2f}x vs baseline")


if __name__ == "__main__":
    main()
