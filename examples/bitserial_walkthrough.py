"""Walkthrough of bit-serial early termination (paper §3.2, Fig. 3).

Recreates the paper's worked example — Q = [9, -5, 7, -2] against a
4-element K with threshold 5 — printing the per-cycle partial sum,
conservative margin and termination decision, then demonstrates the
exactness guarantee on random vectors.

Run:  python examples/bitserial_walkthrough.py
"""

import numpy as np

from repro.hw.bitserial import bitserial_dot_product, serial_cycle_count


def paper_example():
    # K signs [+,-,-,+]; magnitudes 1,7,4,2 in units of 2^-3,
    # i.e. 0.125, -0.875, -0.5, 0.25 — exactly paper Fig. 3.
    q = np.array([9, -5, 7, -2])
    k = np.array([1, -7, -4, 2])
    threshold = 5 * 8                         # Th = 5 in units of 2^-3
    unit = 1 / 8

    print("Paper Fig. 3 worked example (values in units of 2^-3):")
    print(f"  Q  = {q.tolist()}")
    print(f"  K  = {(k * unit).tolist()}  (sign-magnitude, 3 bits)")
    print(f"  Th = {threshold * unit}")
    trace = bitserial_dot_product(q, k, threshold, magnitude_bits=3, group=1)
    print(f"  {'cycle':>5} {'P (partial)':>12} {'M (margin)':>11} "
          f"{'P+M':>8}  early stop?")
    for step in trace.history:
        total = (step.partial_sum + step.margin) * unit
        flag = "YES — terminate" if step.terminated else "no"
        print(f"  {step.cycle:>5} {step.partial_sum * unit:>12.2f} "
              f"{step.margin * unit:>11.2f} {total:>8.2f}  {flag}")
    print(f"  -> pruned={trace.pruned} after {trace.cycles} of "
          f"{serial_cycle_count(4, 1)} cycles; exact value "
          f"{trace.exact_value * unit} < 5, so termination was correct\n")


def exactness_demo(trials: int = 2000):
    """Early termination never disagrees with the full computation."""
    rng = np.random.default_rng(0)
    early_stops = 0
    saved_cycles = 0
    total_cycles = 0
    for _ in range(trials):
        q = rng.integers(-2047, 2048, 16)
        k = rng.integers(-1023, 1024, 16)
        threshold = float(rng.integers(0, 40_000))
        trace = bitserial_dot_product(q, k, threshold, magnitude_bits=10,
                                      group=2)
        full = serial_cycle_count(11, 2)
        total_cycles += full
        saved_cycles += full - trace.cycles
        if trace.early_terminated:
            early_stops += 1
            assert trace.exact_value < threshold, "exactness violated!"
        assert trace.pruned == (trace.exact_value < threshold)
    print(f"exactness check over {trials} random dot products:")
    print(f"  early-terminated: {early_stops} "
          f"({early_stops / trials:.1%})")
    print(f"  cycles saved:     {saved_cycles / total_cycles:.1%}")
    print("  zero wrong terminations — the margin is conservative.")


def pipeline_trace_demo():
    """Per-cycle view of a small tile running one head job."""
    from dataclasses import replace

    from repro.hw import AE_LEOPARD, trace_job
    from repro.hw.workload import job_from_arrays

    rng = np.random.default_rng(0)
    job = job_from_arrays(rng.standard_normal((4, 12)),
                          rng.standard_normal((8, 12)), 0.4)
    config = replace(AE_LEOPARD, num_qk_dpus=2, name="mini-tile")
    trace = trace_job(job, config)
    print("\npipeline trace (2 QK-DPUs, 4 query rows; digits = key index"
          " being bit-serially processed, 's' = stall, 'x' = V-PU busy):")
    print(trace.render())
    print(f"total {trace.total_cycles} cycles")


if __name__ == "__main__":
    paper_example()
    exactness_demo()
    pipeline_trace_demo()
