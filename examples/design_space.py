"""Architecture design-space exploration (paper §5.4, Figs. 13-14).

Sweeps the two microarchitectural knobs the paper studies on a trained
workload:

* ``N_QK`` — the number of bit-serial QK-DPUs per tile, traded against
  back-end (V-PU) utilization (Fig. 13);
* ``B``   — bit-serial granularity, traded between per-cycle latching
  energy and early-termination resolution (Fig. 14).

Run:  python examples/design_space.py [workload]
"""

import sys
from dataclasses import replace

from repro.eval.reporting import format_dict_table
from repro.eval.runner import run_workload
from repro.eval.workloads import QUICK, get_workload
from repro.hw import AE_LEOPARD, EnergyModel, TileSimulator, baseline_like


def main(workload: str = "bert_base_glue/G-QNLI"):
    spec = get_workload(workload)
    print(f"training {spec.name} ...")
    result = run_workload(spec, QUICK)
    jobs = result.hw_jobs()
    print(f"pruning rate {result.pruning_rate:.1%}, "
          f"{len(jobs)} hardware jobs\n")

    base = TileSimulator(baseline_like(AE_LEOPARD)).run(jobs)
    energy = EnergyModel()

    rows = []
    for n_qk in (3, 4, 5, 6, 8, 12):
        config = replace(AE_LEOPARD, name=f"N{n_qk}", num_qk_dpus=n_qk)
        sim = TileSimulator(config).run(jobs)
        rows.append({
            "N_QK": n_qk,
            "speedup": base.total_cycles / sim.total_cycles,
            "V-PU utilization": sim.vpu_utilization,
            "fe stalls": sim.frontend_stall_cycles,
        })
    print(format_dict_table(
        rows, title="QK-PU parallelism sweep (paper Fig. 13)"))
    print("  -> >1.0 utilization = V-PU over-subscribed (throttles tile);"
          "\n     the paper picks N_QK=6 (AE) and 8 (HP) as balanced.\n")

    rows = []
    for b in (1, 2, 4, 12):
        config = replace(AE_LEOPARD, name=f"B{b}", serial_bits=b)
        sim = TileSimulator(config).run(jobs)
        breakdown = energy.breakdown(sim.counters, config)
        per_score = ((breakdown.qk_compute + breakdown.key_memory)
                     / max(sim.counters.scores_total, 1))
        rows.append({
            "B": b,
            "QK energy/score": per_score,
            "speedup": base.total_cycles / sim.total_cycles,
        })
    reference = rows[-1]["QK energy/score"]
    for row in rows:
        row["normalized"] = row["QK energy/score"] / reference
    print(format_dict_table(
        rows, title="Bit-serial granularity sweep (paper Fig. 14)"))
    print("  -> B=2 balances latching overhead (hurts B=1) against"
          "\n     early-termination resolution (hurts B=4/12).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bert_base_glue/G-QNLI")
