"""MemN2N on bAbI-like QA: the paper's highest-pruning workload.

Reproduces the paper Fig. 2 dynamics on a memory network: per-epoch
sparsity, threshold trajectory and normalized training loss during
pruning-aware fine-tuning, followed by the final pruning rates per hop.

Run:  python examples/babi_memn2n.py [task_id]
"""

import sys

from repro.eval.reporting import format_series
from repro.eval.runner import run_workload
from repro.eval.workloads import QUICK, get_workload


def main(task_id: int = 1):
    spec = get_workload(f"memn2n/Task-{task_id}")
    print(f"running {spec.name} at scale '{QUICK.name}' "
          f"(train={QUICK.train_size}, epochs={QUICK.pretrain_epochs}"
          f"x{spec.pretrain_epoch_factor:.0f})")
    result = run_workload(spec, QUICK, track_epochs=True)

    history = result.history
    epochs = [e.epoch for e in history.epochs]
    print()
    print(format_series(
        "epoch", epochs,
        {
            "sparsity": list(history.sparsities()),
            "mean_threshold": list(history.mean_thresholds()),
            "normalized_loss": list(history.normalized_losses()),
        },
        title=f"Fine-tuning dynamics, {spec.name} (paper Fig. 2 analogue)"))

    print()
    print(f"baseline accuracy : {result.baseline_metric:.3f}")
    print(f"pruned accuracy   : {result.pruned_metric:.3f}")
    print(f"pruning rate      : {result.pruning_rate:.1%}")
    per_hop = result.pruning_report.per_layer_rates()
    for hop, rate in enumerate(per_hop):
        print(f"  hop {hop}: {rate:.1%} of memory-slot scores pruned")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
